//! Shared workload builders for the benchmark harness.
//!
//! Each bench target in `benches/` regenerates one figure or theorem-level
//! claim of the paper (see `EXPERIMENTS.md` at the workspace root for the
//! mapping and the measured outcomes). The helpers here construct the
//! parameterized workloads so that the criterion targets stay small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_gadgets::generate::{restrict_schema, SchemaGen};
use shapex_graph::Graph;
use shapex_rbe::Interval;
use shapex_shex::{parse_schema, Schema};

pub mod throughput;

/// A deterministic RNG for workload construction (benchmarks must be
/// reproducible run to run).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A pair `(H, K)` of `DetShEx₀⁻` schemas with `L(H) ⊆ L(K)` by construction
/// (`H` is a restriction of `K`), parameterized by the number of types.
///
/// Restricting a schema does not always stay inside `DetShEx₀⁻` (dropping a
/// `*` reference can orphan a `?`-using type), so restrictions are retried
/// until one is in the class, falling back to `H = K`.
pub fn contained_det_pair(types: usize, seed: u64) -> (Schema, Schema) {
    let mut r = rng(seed);
    let k = SchemaGen::new(types, 3).det_shex0_minus(&mut r);
    for _ in 0..20 {
        let h = restrict_schema(&mut r, &k);
        if h.is_det_shex0_minus() {
            return (h, k);
        }
    }
    (k.clone(), k)
}

/// A pair `(H, K)` of (generally non-deterministic) `ShEx₀` schemas with
/// `L(H) ⊆ L(K)` by construction.
pub fn contained_shex0_pair(types: usize, seed: u64) -> (Schema, Schema) {
    let mut r = rng(seed);
    let k = SchemaGen::new(types, 3).shex0(&mut r, false);
    let h = restrict_schema(&mut r, &k);
    (h, k)
}

/// An evolving family of `n` bug-tracker schema revisions for the batch
/// (N×N matrix) containment workload of the `batch_matrix` bench and the
/// `fig7_summary` binary.
///
/// The variants toggle the user's email (`?` / mandatory / absent) and the
/// multiplicity of `related` (`*` / `?`), and every fourth revision splits
/// `related` into two same-label atoms (non-deterministic). That mix spreads
/// the pairs across all the procedure's paths: embedding fast-path,
/// `DetShEx₀⁻` characterizing shortcut, and — for the non-embedding
/// `DetShEx₀`/`ShEx₀` pairs — the budgeted counter-example search whose
/// unfolding pools the `ContainmentEngine` amortizes across partners.
pub fn evolution_family(n: usize) -> Vec<Schema> {
    (0..n)
        .map(|i| {
            let email = match i % 3 {
                0 => ", email::Literal?",
                1 => ", email::Literal",
                _ => "",
            };
            let related = if i % 2 == 0 {
                "related::Bug*"
            } else {
                "related::Bug?"
            };
            let split = if i % 4 == 3 { ", related::Bug*" } else { "" };
            let text = format!(
                "Bug -> descr::Literal, reportedBy::User, {related}{split}\n\
                 User -> name::Literal{email}\n\
                 Literal -> EMPTY\n"
            );
            parse_schema(&text).expect("family member parses")
        })
        .collect()
}

/// A compressed "hub and spokes" graph: one hub node with a single compressed
/// edge of multiplicity `spokes` to a rim node, plus the schema that accepts
/// hubs with between 1 and `spokes` spokes.
pub fn compressed_hub(spokes: u64) -> (Graph, Schema) {
    let mut g = Graph::new();
    let hub = g.node("hub");
    let rim = g.node("rim");
    g.add_edge_with(hub, "spoke", Interval::exactly(spokes), rim);
    let schema = parse_schema(&format!("Hub -> spoke::Rim[1;{spokes}]\nRim -> EMPTY\n"))
        .expect("hub schema parses");
    (g, schema)
}

/// A compressed hub together with a *disjunctive* schema (full ShEx) that
/// accepts an even number of spokes only — exercises the Presburger-backed
/// validation of Proposition 6.2.
pub fn compressed_hub_disjunctive(spokes: u64) -> (Graph, Schema) {
    let (g, _) = compressed_hub(spokes);
    let schema = parse_schema("Hub -> (spoke::Rim, spoke::Rim)*\nRim -> EMPTY\n")
        .expect("disjunctive hub schema parses");
    (g, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_core::embedding::embeds;
    use shapex_shex::typing::validates;

    #[test]
    fn contained_pairs_really_embed() {
        for types in [3, 6, 16, 32, 64] {
            let (h, k) = contained_det_pair(types, 1);
            assert!(h.is_det_shex0_minus());
            assert!(k.is_det_shex0_minus());
            let hg = h.to_shape_graph().unwrap();
            let kg = k.to_shape_graph().unwrap();
            assert!(embeds(&hg, &kg).is_some());
            let (h2, k2) = contained_shex0_pair(types, 2);
            let hg2 = h2.to_shape_graph().unwrap();
            let kg2 = k2.to_shape_graph().unwrap();
            assert!(embeds(&hg2, &kg2).is_some());
        }
    }

    #[test]
    fn evolution_family_spans_the_fragments() {
        use shapex_shex::SchemaClass;
        let family = evolution_family(8);
        let classes: std::collections::BTreeSet<SchemaClass> =
            family.iter().map(|s| s.classify()).collect();
        assert!(
            classes.contains(&SchemaClass::DetShEx0Minus),
            "need embedding/characterizing fast-path pairs"
        );
        assert!(
            classes.contains(&SchemaClass::ShEx0),
            "need non-deterministic search-path pairs"
        );
        assert!(classes.len() >= 3, "got {classes:?}");
    }

    #[test]
    fn compressed_hub_workloads_validate_as_expected() {
        let (g, schema) = compressed_hub(64);
        assert!(validates(&g, &schema));
        let (even, disjunctive) = compressed_hub_disjunctive(10);
        assert!(validates(&even, &disjunctive));
        let (odd, disjunctive) = compressed_hub_disjunctive(9);
        assert!(!validates(&odd, &disjunctive));
    }
}
