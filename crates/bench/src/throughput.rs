//! The corpus-scale service throughput harness behind the
//! `service_throughput` bench and the `fig7_summary` rows.
//!
//! One drive builds a fresh [`ContainmentService`] (so every run starts with
//! cold caches), registers the seeded gadget corpus plus a pair of heavy
//! anchor schemas, spawns a [`ServicePool`] of workers, and hammers it with
//! closed-loop client threads: each client blocks on one request at a time
//! and immediately issues the next, the standard closed-loop load model.
//!
//! The request mix is *duplicate-heavy by design*: every client walks the
//! same seeded plan, so at any instant the fleet concentrates on a handful
//! of hot `(h, k)` pairs — the traffic shape of a production deployment
//! where many tenants audit the same popular schema revisions, and exactly
//! the shape the engine's single-flight coalescing absorbs. Driving with
//! [`DriveOptions::coalesce`] off measures the uncoalesced path for the
//! on/off ratio the acceptance gate watches.

use std::time::{Duration, Instant};

use shapex::prelude::*;
use shapex::service::{ContainmentService, ServiceRequest, ServiceResponse, TenantId};
use shapex_core::unfold::SearchOptions;
use shapex_gadgets::corpus::{Corpus, CorpusOptions};
use shapex_gadgets::figures;

/// Parameters of one throughput drive.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Worker threads in the [`ServicePool`].
    pub workers: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Whether the engine coalesces duplicate concurrent queries.
    pub coalesce: bool,
    /// Per-worker queue capacity.
    pub queue_capacity: usize,
    /// Corpus seed (same seed ⇒ identical corpus and plan).
    pub seed: u64,
}

impl Default for DriveOptions {
    fn default() -> Self {
        DriveOptions {
            workers: 8,
            clients: 4,
            requests_per_client: 64,
            coalesce: true,
            queue_capacity: 32,
            seed: 0xFEED,
        }
    }
}

/// The outcome of one drive: wall-clock throughput plus the service's own
/// latency histogram.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Requests answered across all clients.
    pub requests: u64,
    /// Wall-clock time from first request to last response.
    pub elapsed: Duration,
    /// The service's latency distribution over those requests.
    pub latency: LatencySnapshot,
    /// Duplicate concurrent queries absorbed by single-flight coalescing.
    pub coalesced_queries: u64,
}

impl ThroughputReport {
    /// Requests per second over the drive's wall clock.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Build the drive's service with the coalescing knob set.
///
/// The search budget is deliberately large: the hot anchor pair
/// budget-exhausts (`Unknown`), and a budget-exhausted search re-walks its
/// candidates on every re-check — memos make each candidate cheaper but the
/// walk itself is not pair-memoised — so the warm cost stays in the
/// milliseconds. That is the regime where duplicate concurrent checks
/// genuinely overlap (even on a single core, where overlap comes from
/// preemption) and single-flight coalescing has work to absorb; with a tiny
/// budget every warm check finishes inside one scheduling quantum and the
/// drive would measure only channel overhead.
fn service(coalesce: bool) -> ContainmentService {
    let search = SearchOptions {
        max_candidates: 80_000,
        random_samples: 8_000,
        ..SearchOptions::default()
    };
    ContainmentService::with_options(
        EngineOptions::quick()
            .with_search(search)
            .with_coalesce(coalesce),
    )
}

/// Register the corpus and the heavy anchor pair, returning the seeded
/// request plan every client walks: three in four requests hit the hot
/// anchor pair (the Figure 1 bug tracker against its non-deterministic
/// split — a budget-bounded search, the expensive end of the mix), the rest
/// walk the corpus's evolution pairs.
fn plan(service: &ContainmentService, options: &DriveOptions) -> Vec<(SchemaId, SchemaId)> {
    let register = |schema: Schema| -> SchemaId {
        match service.handle(
            TenantId::DEFAULT,
            ServiceRequest::Register(Box::new(schema)),
        ) {
            Ok(ServiceResponse::Registered(id)) => id,
            other => panic!("corpus registration failed: {other:?}"),
        }
    };
    let original = register(figures::bug_tracker_schema());
    let split = register(figures::bug_tracker_split_schema());
    // A compact corpus: the evolution pairs are the diverse background
    // traffic, not the hot set, and every distinct pair's cold check is
    // uncoalescible floor time shared by the coalesced and uncoalesced arms.
    let corpus = Corpus::generate(&CorpusOptions {
        families: 2,
        revisions: 4,
        seed: options.seed,
        ..CorpusOptions::default()
    });
    let ids: Vec<SchemaId> = corpus.schemas().cloned().map(register).collect();
    let pairs = corpus.evolution_pairs();
    // Hot requests come in blocks of eight per direction: clients drift a
    // little relative to each other, and blocks keep drifted clients on the
    // *same* hot pair so their checks actually coincide.
    let hot = [(original, split), (split, original)];
    (0..options.requests_per_client)
        .map(|i| {
            if i % 4 != 3 {
                hot[(i / 8) % hot.len()]
            } else {
                let (h, k) = pairs[i % pairs.len()];
                (ids[h], ids[k])
            }
        })
        .collect()
}

/// Run one closed-loop drive against a fresh service and pool.
pub fn drive(options: &DriveOptions) -> ThroughputReport {
    let service = service(options.coalesce);
    let plan = plan(&service, options);
    let pool = service.pool(options.workers, options.queue_capacity);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..options.clients.max(1) {
            let client = pool.client(TenantId::DEFAULT);
            let plan = &plan;
            scope.spawn(move || {
                for &(h, k) in plan {
                    match client.call_blocking(ServiceRequest::Check { h, k }) {
                        Ok(ServiceResponse::Answer(_)) => {}
                        other => panic!("throughput check failed: {other:?}"),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    pool.join();
    let stats = service.stats();
    let check_requests = (options.clients.max(1) * options.requests_per_client) as u64;
    ThroughputReport {
        requests: check_requests,
        elapsed,
        latency: stats.latency,
        coalesced_queries: stats.engine.coalesced_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_drive_answers_every_request() {
        let report = drive(&DriveOptions {
            workers: 2,
            clients: 2,
            requests_per_client: 8,
            ..DriveOptions::default()
        });
        assert_eq!(report.requests, 16);
        // The histogram also saw the registrations, so it is a superset.
        assert!(report.latency.count() >= 16);
        assert!(report.requests_per_sec() > 0.0);
        assert!(report.latency.p99() >= report.latency.p50());
    }

    #[test]
    fn uncoalesced_drives_never_report_coalesced_queries() {
        let report = drive(&DriveOptions {
            workers: 2,
            clients: 2,
            requests_per_client: 8,
            coalesce: false,
            ..DriveOptions::default()
        });
        assert_eq!(report.coalesced_queries, 0);
    }
}
