//! E6 (Figure 7): the complexity summary table of the paper, regenerated as a
//! scaling experiment.
//!
//! The paper's table reads:
//!
//! ```text
//!              DetShEx0-        ShEx0                 ShEx
//!  complexity  P                EXP-hard / coNEXP     coNEXP-hard / co2NEXP^NP
//! ```
//!
//! This binary measures the implemented decision procedures on growing
//! workloads of each class and prints the observed behaviour next to the
//! paper's classification. Run with
//! `cargo run --release -p shapex-bench --bin fig7_summary`.

use std::time::{Duration, Instant};

use shapex_bench::{contained_det_pair, contained_shex0_pair, rng};
use shapex_core::det::det_containment;
use shapex_core::general::{general_containment, GeneralOptions};
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_gadgets::generate::random_dnf;
use shapex_gadgets::reductions::{dnf_tautology_gadget, exponential_family};
use shapex_shex::parse_schema;
use shapex_shex::Schema;

fn time<F: FnMut() -> R, R>(mut f: F) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

fn schema_sizes(h: &Schema, k: &Schema) -> usize {
    h.size() + k.size()
}

fn main() {
    println!("Figure 7 — containment complexity per schema class (paper vs. measured)\n");
    println!(
        "{:<14} {:<26} {:<30}",
        "class", "paper", "this implementation"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "DetShEx0-", "in P (Cor. 4.4)", "embedding check, polynomial"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "ShEx0", "EXP-hard, in coNEXP", "embedding + budgeted search"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "ShEx", "coNEXP-hard, in co2NEXP^NP", "sufficient check + budgeted search"
    );

    // --- DetShEx0-: polynomial scaling -------------------------------------
    println!("\n[DetShEx0-] containment on random contained pairs (Cor. 4.4)");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "types", "|H|+|K|", "answer", "time"
    );
    for &types in &[4usize, 8, 16, 32, 64] {
        let (h, k) = contained_det_pair(types, 70 + types as u64);
        let (result, elapsed) = time(|| det_containment(&h, &k).unwrap());
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            types,
            schema_sizes(&h, &k),
            if result.is_contained() {
                "contained"
            } else {
                "other"
            },
            elapsed
        );
    }

    // --- ShEx0: the DNF gadget grows quickly --------------------------------
    println!("\n[ShEx0 / DetShEx0] DNF-tautology gadget (Thm. 4.5), answer via budgeted search");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "vars", "|H|+|K|", "answer", "time"
    );
    for &vars in &[2usize, 3, 4, 5] {
        let mut r = rng(7_000 + vars as u64);
        let formula = random_dnf(&mut r, vars, vars, 2);
        let (h, k) = dnf_tautology_gadget(&formula);
        let (result, elapsed) = time(|| shex0_containment(&h, &k, &Shex0Options::default()));
        let answer = if result.is_contained() {
            "contained"
        } else if result.is_not_contained() {
            "not contained"
        } else {
            "unknown"
        };
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            vars,
            schema_sizes(&h, &k),
            answer,
            elapsed
        );
    }

    println!("\n[ShEx0] random contained pairs (embedding fast path)");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "types", "|H|+|K|", "answer", "time"
    );
    for &types in &[4usize, 8, 16, 32] {
        let (h, k) = contained_shex0_pair(types, 90 + types as u64);
        let (result, elapsed) = time(|| shex0_containment(&h, &k, &Shex0Options::quick()));
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            types,
            schema_sizes(&h, &k),
            if result.is_contained() {
                "contained"
            } else {
                "other"
            },
            elapsed
        );
    }

    println!("\n[ShEx0] Lemma 5.1 family: counter-example size is exponential in n");
    println!("{:>8} {:>12} {:>18}", "n", "|H|+|K|", "witness nodes");
    for n in 1..=4usize {
        let (h, k) = exponential_family(n);
        let witness = shapex_gadgets::reductions::exponential_family_witness(n);
        println!(
            "{:>8} {:>12} {:>18}",
            n,
            schema_sizes(&h, &k),
            witness.node_count()
        );
    }

    // --- Full ShEx -----------------------------------------------------------
    println!("\n[ShEx] disjunctive schemas through the general procedure");
    let narrow = parse_schema("Root -> p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    let wide = parse_schema("Root -> p::A | p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    let cases = [
        ("narrow ⊆ wide", &narrow, &wide),
        ("wide ⊆ narrow", &wide, &narrow),
    ];
    println!("{:>16} {:>14} {:>12}", "case", "answer", "time");
    for (name, h, k) in cases {
        let (result, elapsed) = time(|| general_containment(h, k, &GeneralOptions::quick()));
        let answer = if result.is_contained() {
            "contained"
        } else if result.is_not_contained() {
            "not contained"
        } else {
            "unknown"
        };
        println!("{:>16} {:>14} {:>12.2?}", name, answer, elapsed);
    }

    println!(
        "\nReading: the DetShEx0- column scales smoothly (polynomial), while the\n\
         gadget-driven ShEx0 and ShEx workloads blow up quickly or require the\n\
         budgeted procedures to give up — matching the paper's separation."
    );
}
