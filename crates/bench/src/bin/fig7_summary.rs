//! E6 (Figure 7): the complexity summary table of the paper, regenerated as a
//! scaling experiment.
//!
//! The paper's table reads:
//!
//! ```text
//!              DetShEx0-        ShEx0                 ShEx
//!  complexity  P                EXP-hard / coNEXP     coNEXP-hard / co2NEXP^NP
//! ```
//!
//! This binary measures the implemented decision procedures on growing
//! workloads of each class and prints the observed behaviour next to the
//! paper's classification. Run with
//! `cargo run --release -p shapex-bench --bin fig7_summary`.
//!
//! Every measurement is repeated a few times and its mean/min/max (the same
//! statistics the vendored criterion shim reports) are written as
//! machine-readable JSON to `BENCH_fig7.json` (override the path with the
//! `BENCH_FIG7_JSON` environment variable) — CI uploads that file as a
//! per-commit artifact, the start of the benchmark trajectory the ROADMAP
//! asks for.

use std::time::{Duration, Instant};

use shapex_bench::throughput::{drive, DriveOptions, ThroughputReport};
use shapex_bench::{contained_det_pair, contained_shex0_pair, evolution_family, rng};
use shapex_core::det::det_containment;
use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::general::{general_containment, GeneralOptions};
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_core::unfold::SearchOptions;
use shapex_gadgets::disjuncts::{disjunct_choice_pair, disjunct_mismatch_pair};
use shapex_gadgets::generate::random_dnf;
use shapex_gadgets::reductions::{dnf_tautology_gadget, exponential_family};
use shapex_graph::{Graph, GraphDelta, NTriplesParser, Triple};
use shapex_presburger::{Bounds, Formula, LinearExpr, SolveResult, Solver, SolverOptions, VarPool};
use shapex_shex::parse_schema;
use shapex_shex::{maximal_typing, IncrementalTyping, Schema};

/// One named measurement: per-run statistics in nanoseconds.
struct BenchRecord {
    id: String,
    runs: usize,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Collects every timed workload of the summary for the JSON artifact.
#[derive(Default)]
struct Recorder {
    records: Vec<BenchRecord>,
}

impl Recorder {
    /// Run `f` `runs` times, record mean/min/max under `id`, and return the
    /// last result together with the mean duration (shown in the tables).
    fn measure<F: FnMut() -> R, R>(&mut self, id: &str, runs: usize, mut f: F) -> (R, Duration) {
        let mut result = None;
        let mut mean = 0.0;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..runs {
            let start = Instant::now();
            result = Some(f());
            let ns = start.elapsed().as_nanos() as f64;
            mean += ns / runs as f64;
            min = min.min(ns);
            max = max.max(ns);
        }
        self.records.push(BenchRecord {
            id: id.to_owned(),
            runs,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
        (
            result.expect("runs >= 1"),
            Duration::from_nanos(mean as u64),
        )
    }

    /// Serialise all records as JSON (no external dependencies: the ids are
    /// plain ASCII, so escaping quotes and backslashes suffices).
    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fig7-summary/v1\",\n  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(
                "    {{\"id\": \"{id}\", \"runs\": {}, \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}}}{}\n",
                r.runs,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn schema_sizes(h: &Schema, k: &Schema) -> usize {
    h.size() + k.size()
}

/// Per-variable bound of the `presburger_disjuncts` scaling family.
const DISJUNCT_BOUND: u64 = 6;

/// Number of branches in the top-level disjunction of the family — wide
/// enough that the parallel search fans it across every worker.
const DISJUNCT_BRANCHES: usize = 16;

/// The `presburger_disjuncts/vars=N` instance: a top-level disjunction of
/// [`DISJUNCT_BRANCHES`] arms, each pinning `2·Σxᵢ` to an odd constant.
/// Every arm is unsatisfiable by parity, which interval propagation cannot
/// see — the solver must enumerate the assignment window of each arm in
/// full, so the whole branch tree is explored and the work splits cleanly
/// across disjunct workers.
fn disjunct_scaling_formula(vars: usize, pool: &mut VarPool) -> Formula {
    let xs: Vec<_> = (0..vars)
        .map(|i| pool.fresh_named(format!("x{i}")))
        .collect();
    let doubled = xs.iter().fold(LinearExpr::constant(0), |acc, v| {
        acc.add(&LinearExpr::term(*v, 2))
    });
    // Odd targets clustered around the middle of the reachable range
    // `0..=2·N·B`, where the number of bounded compositions (and hence the
    // per-arm search effort) peaks.
    let middle = vars as i64 * DISJUNCT_BOUND as i64;
    let arms: Vec<Formula> = (0..DISJUNCT_BRANCHES)
        .map(|k| {
            let offset = k as i64 - DISJUNCT_BRANCHES as i64 / 2;
            Formula::eq(
                doubled.clone(),
                LinearExpr::constant(middle + 2 * offset + 1),
            )
        })
        .collect();
    Formula::or(arms)
}

/// Mean regression factor above which the gate fails the run.
const REGRESSION_GATE: f64 = 2.5;

/// Ceiling on `deadline_overhead/deadline=1h` relative to the undeadlined
/// path: checkpoint polling may cost at most 3% on the disjunct gadget.
const DEADLINE_OVERHEAD_GATE: f64 = 1.03;

/// Parse a previously written summary back into `(id, mean_ns)` pairs. The
/// format is this binary's own line-per-record JSON, so a line-based scan is
/// exact (no external JSON dependency in the workspace).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id_start) = line.find("\"id\": \"") else {
            continue;
        };
        let rest = &line[id_start + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = &rest[..id_end];
        let Some(mean_at) = line.find("\"mean_ns\": ") else {
            continue;
        };
        let mean_text: String = line[mean_at + 11..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(mean) = mean_text.parse::<f64>() {
            out.push((id.to_owned(), mean));
        }
    }
    out
}

/// Compare the fresh records against the committed baseline and fail on any
/// mean regression beyond [`REGRESSION_GATE`] — the CI tripwire the ROADMAP
/// asks for. A workload only counts as regressed when its *minimum* run is
/// also beyond the threshold: a genuine slowdown slows every run, while a
/// scheduler hiccup inflates the mean through one outlier (the committed
/// microsecond-scale records show ~2.5x min/max spreads within a single
/// 3-run sample, so a mean-only gate would flake on shared runners).
/// `BENCH_FIG7_NO_GATE` skips the gate entirely (noisy or slow hosts).
fn enforce_regression_gate(recorder: &Recorder, baseline: &[(String, f64)]) -> Result<(), String> {
    let mut regressions = Vec::new();
    for record in &recorder.records {
        let Some((_, old_mean)) = baseline.iter().find(|(id, _)| *id == record.id) else {
            continue; // new workload: nothing to compare against
        };
        let threshold = old_mean * REGRESSION_GATE;
        if *old_mean > 0.0 && record.mean_ns > threshold && record.min_ns > threshold {
            regressions.push(format!(
                "  {}: {:.0}ns -> {:.0}ns mean / {:.0}ns min ({:.1}x)",
                record.id,
                old_mean,
                record.mean_ns,
                record.min_ns,
                record.mean_ns / old_mean
            ));
        }
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "regression beyond {REGRESSION_GATE}x against the committed baseline \
             (both mean and best-of-run):\n{}",
            regressions.join("\n")
        ))
    }
}

fn main() {
    let mut recorder = Recorder::default();
    println!("Figure 7 — containment complexity per schema class (paper vs. measured)\n");
    println!(
        "{:<14} {:<26} {:<30}",
        "class", "paper", "this implementation"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "DetShEx0-", "in P (Cor. 4.4)", "embedding check, polynomial"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "ShEx0", "EXP-hard, in coNEXP", "embedding + budgeted search"
    );
    println!(
        "{:<14} {:<26} {:<30}",
        "ShEx", "coNEXP-hard, in co2NEXP^NP", "sufficient check + budgeted search"
    );

    // --- DetShEx0-: polynomial scaling -------------------------------------
    println!("\n[DetShEx0-] containment on random contained pairs (Cor. 4.4)");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "types", "|H|+|K|", "answer", "time"
    );
    for &types in &[4usize, 8, 16, 32, 64] {
        let (h, k) = contained_det_pair(types, 70 + types as u64);
        let (result, elapsed) =
            recorder.measure(&format!("det_containment/types={types}"), 3, || {
                det_containment(&h, &k).unwrap()
            });
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            types,
            schema_sizes(&h, &k),
            if result.is_contained() {
                "contained"
            } else {
                "other"
            },
            elapsed
        );
    }

    // --- ShEx0: the DNF gadget grows quickly --------------------------------
    println!("\n[ShEx0 / DetShEx0] DNF-tautology gadget (Thm. 4.5), answer via budgeted search");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "vars", "|H|+|K|", "answer", "time"
    );
    for &vars in &[2usize, 3, 4, 5] {
        let mut r = rng(7_000 + vars as u64);
        let formula = random_dnf(&mut r, vars, vars, 2);
        let (h, k) = dnf_tautology_gadget(&formula);
        let (result, elapsed) =
            recorder.measure(&format!("shex0_dnf_gadget/vars={vars}"), 3, || {
                shex0_containment(&h, &k, &Shex0Options::default())
            });
        let answer = if result.is_contained() {
            "contained"
        } else if result.is_not_contained() {
            "not contained"
        } else {
            "unknown"
        };
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            vars,
            schema_sizes(&h, &k),
            answer,
            elapsed
        );
    }

    println!("\n[ShEx0] random contained pairs (embedding fast path)");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "types", "|H|+|K|", "answer", "time"
    );
    for &types in &[4usize, 8, 16, 32] {
        let (h, k) = contained_shex0_pair(types, 90 + types as u64);
        let (result, elapsed) =
            recorder.measure(&format!("shex0_contained_pair/types={types}"), 3, || {
                shex0_containment(&h, &k, &Shex0Options::quick())
            });
        println!(
            "{:>8} {:>12} {:>14} {:>12.2?}",
            types,
            schema_sizes(&h, &k),
            if result.is_contained() {
                "contained"
            } else {
                "other"
            },
            elapsed
        );
    }

    println!("\n[ShEx0] Lemma 5.1 family: counter-example size is exponential in n");
    println!("{:>8} {:>12} {:>18}", "n", "|H|+|K|", "witness nodes");
    for n in 1..=4usize {
        let (h, k) = exponential_family(n);
        let witness = shapex_gadgets::reductions::exponential_family_witness(n);
        println!(
            "{:>8} {:>12} {:>18}",
            n,
            schema_sizes(&h, &k),
            witness.node_count()
        );
    }

    // --- Full ShEx -----------------------------------------------------------
    println!("\n[ShEx] disjunctive schemas through the general procedure");
    let narrow = parse_schema("Root -> p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    let wide = parse_schema("Root -> p::A | p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    let cases = [
        ("narrow ⊆ wide", "narrow_in_wide", &narrow, &wide),
        ("wide ⊆ narrow", "wide_in_narrow", &wide, &narrow),
    ];
    println!("{:>16} {:>14} {:>12}", "case", "answer", "time");
    for (name, id, h, k) in cases {
        let (result, elapsed) = recorder.measure(&format!("general_containment/{id}"), 3, || {
            general_containment(h, k, &GeneralOptions::quick())
        });
        let answer = if result.is_contained() {
            "contained"
        } else if result.is_not_contained() {
            "not contained"
        } else {
            "unknown"
        };
        println!("{:>16} {:>14} {:>12.2?}", name, answer, elapsed);
    }

    // --- ShEx: disjunct-heavy gadgets through the Presburger solver ---------
    println!("\n[ShEx] choice-group gadgets (ψ translation + bounded solver per check)");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "groups", "side", "|H|+|K|", "answer", "time"
    );
    for &groups in &[2usize, 4, 6] {
        let pairs = [
            ("choice", disjunct_choice_pair(groups)),
            ("mismatch", disjunct_mismatch_pair(groups)),
        ];
        for (side, (h, k)) in pairs {
            let (result, elapsed) = recorder.measure(
                &format!("general_disjunct_gadget/{side}/groups={groups}"),
                3,
                || general_containment(&h, &k, &GeneralOptions::quick()),
            );
            let answer = if result.is_contained() {
                "contained"
            } else if result.is_not_contained() {
                "not contained"
            } else {
                "unknown"
            };
            println!(
                "{:>8} {:>12} {:>14} {:>14} {:>12.2?}",
                groups,
                side,
                schema_sizes(&h, &k),
                answer,
                elapsed
            );
        }
    }

    // --- Deadline checkpoint overhead ---------------------------------------
    // The engine's cancellable path polls a deadline token at bounded
    // checkpoint intervals (candidate loops, solver branches, sweep edges).
    // This row prices that polling on the heaviest gadget above: the same
    // `general_disjunct_gadget` pair, once through the plain path and once
    // under a deadline that never fires, fresh engine per check so neither
    // arm can hit a memo. The gate at the bottom fails the run only when
    // both the mean and the best-of-run exceed the budget — a real
    // regression slows every run, a scheduler hiccup only the mean.
    println!("\n[engine] deadline checkpoint overhead (general_disjunct_gadget choice/groups=6)");
    let (dl_h, dl_k) = disjunct_choice_pair(6);
    let deadline_search = SearchOptions::quick();
    const DEADLINE_CHECKS_PER_RUN: usize = 4;
    let (plain_answer, plain_time) = recorder.measure("deadline_overhead/no_deadline", 5, || {
        let mut last = None;
        for _ in 0..DEADLINE_CHECKS_PER_RUN {
            let engine = ContainmentEngine::with_search(deadline_search.clone());
            last = Some(engine.check(&dl_h, &dl_k));
        }
        last.expect("at least one check ran")
    });
    let plain_min_ns = recorder.records.last().expect("just recorded").min_ns;
    let plain_mean_ns = recorder.records.last().expect("just recorded").mean_ns;
    let (armed_answer, armed_time) = recorder.measure("deadline_overhead/deadline=1h", 5, || {
        let mut last = None;
        for _ in 0..DEADLINE_CHECKS_PER_RUN {
            let engine = ContainmentEngine::with_search(deadline_search.clone());
            last = Some(engine.check_deadline(&dl_h, &dl_k, Duration::from_secs(3600)));
        }
        last.expect("at least one check ran")
    });
    let armed_min_ns = recorder.records.last().expect("just recorded").min_ns;
    let armed_mean_ns = recorder.records.last().expect("just recorded").mean_ns;
    assert_eq!(
        plain_answer.is_contained(),
        armed_answer.is_contained(),
        "an unfired deadline must not change the verdict"
    );
    assert_eq!(
        plain_answer.is_not_contained(),
        armed_answer.is_not_contained(),
        "an unfired deadline must not change the verdict"
    );
    let deadline_mean_ratio = armed_mean_ns / plain_mean_ns.max(f64::EPSILON);
    let deadline_min_ratio = armed_min_ns / plain_min_ns.max(f64::EPSILON);
    println!(
        "{:>14} {:>12} {:>12} {:>10}",
        "path", "mean", "min", "ratio"
    );
    println!(
        "{:>14} {:>12.2?} {:>12.2?} {:>10}",
        "no deadline",
        plain_time,
        Duration::from_nanos(plain_min_ns as u64),
        "1.00×"
    );
    println!(
        "{:>14} {:>12.2?} {:>12.2?} {:>9.2}×",
        "deadline 1h",
        armed_time,
        Duration::from_nanos(armed_min_ns as u64),
        deadline_mean_ratio
    );

    // --- Presburger: the parallel disjunct search ----------------------------
    println!("\n[solver] wide unsatisfiable disjunctions, serial vs. 8 workers");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "vars", "branches", "serial", "parallel", "speedup"
    );
    for &vars in &[4usize, 5, 6] {
        let mut pool = VarPool::new();
        let formula = disjunct_scaling_formula(vars, &mut pool);
        let serial_solver =
            Solver::new(Bounds::uniform(DISJUNCT_BOUND)).with_options(SolverOptions::serial());
        let parallel_solver =
            Solver::new(Bounds::uniform(DISJUNCT_BOUND)).with_options(SolverOptions::parallel(8));
        let (serial_result, serial_time) =
            recorder.measure(&format!("presburger_disjuncts/vars={vars}"), 3, || {
                serial_solver.solve(&formula, &pool)
            });
        let (parallel_result, parallel_time) = recorder.measure(
            &format!("presburger_disjuncts/vars={vars}/parallel"),
            3,
            || parallel_solver.solve(&formula, &pool),
        );
        assert_eq!(
            serial_result,
            SolveResult::Unsat,
            "the parity family is unsatisfiable by construction"
        );
        assert_eq!(
            parallel_result, serial_result,
            "parallel and serial searches must agree"
        );
        println!(
            "{:>8} {:>12} {:>12.2?} {:>12.2?} {:>9.1}×",
            vars,
            DISJUNCT_BRANCHES,
            serial_time,
            parallel_time,
            serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::EPSILON)
        );
    }

    // --- Batch schema evolution: the ContainmentEngine session --------------
    println!("\n[batch] N×N containment matrix over an evolving schema family");
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>10} {:>10}",
        "N", "one-shot N²", "engine", "rows ∥", "engine ×", "rows ×"
    );
    let batch_opts = SearchOptions::quick();
    let parallel_opts = EngineOptions::parallel().with_search(batch_opts.clone());
    for &n in &[8usize, 12] {
        let family = evolution_family(n);
        let (oneshot_contained, oneshot_time) =
            recorder.measure(&format!("batch_matrix/oneshot/n={n}"), 3, || {
                let mut contained = 0usize;
                for h in &family {
                    for k in &family {
                        if general_containment(h, k, &batch_opts).is_contained() {
                            contained += 1;
                        }
                    }
                }
                contained
            });
        let (engine_contained, engine_time) =
            recorder.measure(&format!("batch_matrix/engine/n={n}"), 3, || {
                ContainmentEngine::with_search(batch_opts.clone())
                    .check_matrix(&family)
                    .iter()
                    .flatten()
                    .filter(|c| c.is_contained())
                    .count()
            });
        // The row-parallel engine: matrix rows fanned across a scoped worker
        // pool over the shared `&self` caches (cold start included). The
        // verdicts are bit-identical to the serial engine's; on a multi-core
        // host the wall clock drops accordingly (single-core hosts degrade
        // to the serial path).
        let (parallel_contained, parallel_time) =
            recorder.measure(&format!("batch_matrix/engine_parallel/n={n}"), 3, || {
                ContainmentEngine::with_options(parallel_opts.clone())
                    .check_matrix(&family)
                    .iter()
                    .flatten()
                    .filter(|c| c.is_contained())
                    .count()
            });
        assert_eq!(
            oneshot_contained, engine_contained,
            "engine and one-shot matrices must agree"
        );
        assert_eq!(
            engine_contained, parallel_contained,
            "row-parallel and serial matrices must agree"
        );
        // Two separate bars: memoisation (one-shot / serial engine, the
        // PR 3 ≥ 2× criterion) and row parallelism (serial / parallel
        // engine, ≥ 1.5× at N = 12 on multi-core hosts) — conflating them
        // would let a serial regression hide behind thread-count gains.
        println!(
            "{:>8} {:>16.2?} {:>16.2?} {:>16.2?} {:>9.1}× {:>9.1}×",
            n,
            oneshot_time,
            engine_time,
            parallel_time,
            oneshot_time.as_secs_f64() / engine_time.as_secs_f64().max(f64::EPSILON),
            engine_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::EPSILON)
        );
    }

    // --- Service throughput: sharded workers + single-flight coalescing ----
    println!("\n[service] corpus throughput: closed-loop clients over the sharded worker pool");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "clients", "coalesce", "req/s", "p50", "p90", "p99", "coalesced"
    );
    let print_drive = |clients: usize, coalesce: bool, report: &ThroughputReport| {
        println!(
            "{:>10} {:>10} {:>10.0} {:>10.2?} {:>10.2?} {:>10.2?} {:>10}",
            clients,
            if coalesce { "on" } else { "off" },
            report.requests_per_sec(),
            report.latency.p50().unwrap_or_default(),
            report.latency.p90().unwrap_or_default(),
            report.latency.p99().unwrap_or_default(),
            report.coalesced_queries
        );
    };
    let mut coalesced_16 = None;
    for &clients in &[1usize, 4, 16] {
        let (report, _) =
            recorder.measure(&format!("service_throughput/clients={clients}"), 2, || {
                drive(&DriveOptions {
                    clients,
                    ..DriveOptions::default()
                })
            });
        print_drive(clients, true, &report);
        if clients == 16 {
            coalesced_16 = Some(report);
        }
    }
    let (uncoalesced_16, _) =
        recorder.measure("service_throughput/clients=16/coalesce=off", 2, || {
            drive(&DriveOptions {
                clients: 16,
                coalesce: false,
                ..DriveOptions::default()
            })
        });
    print_drive(16, false, &uncoalesced_16);
    let coalesced_16 = coalesced_16.expect("16-client drive ran");
    assert!(
        coalesced_16.coalesced_queries > 0,
        "a duplicate-heavy 16-client fleet must coalesce"
    );
    assert_eq!(
        uncoalesced_16.coalesced_queries, 0,
        "the knob-gated path must not coalesce"
    );
    // The acceptance bar (≥ 2× on the duplicate-heavy mix) is asserted by
    // the release-mode test suite on reference hosts; here the ratio is
    // printed so CI logs and BENCH_fig7.json rows carry the evidence
    // without flaking on loaded shared runners.
    println!(
        "coalescing on/off at 16 clients: {:.1}× requests/sec",
        coalesced_16.requests_per_sec() / uncoalesced_16.requests_per_sec().max(f64::EPSILON)
    );

    // --- Streaming ingestion: O(graph) memory, one pass over the bytes -----
    println!("\n[stream] push-based N-Triples ingestion (parse -> delta -> apply per chunk)");
    const STREAM_TRIPLES: usize = 100_000;
    let mut document = String::new();
    for i in 0..STREAM_TRIPLES {
        document.push_str(&format!("<s{}> <p{}> <o{i}> .\n", i % 1_000, i % 5));
    }
    let (streamed_nodes, stream_time) = recorder.measure("stream_ingest/triples=100k", 3, || {
        let mut parser = NTriplesParser::new();
        let mut graph = Graph::new();
        for chunk in document.as_bytes().chunks(64 * 1024) {
            let mut delta = GraphDelta::new();
            parser
                .feed(chunk, |t: Triple<'_>| {
                    delta.add_triple(t.subject, t.predicate, t.object)
                })
                .expect("generated N-Triples parse");
            graph.apply_delta(&delta);
        }
        parser
            .finish(|_| {})
            .expect("document ends on a line boundary");
        graph.node_count()
    });
    assert_eq!(streamed_nodes, 1_000 + STREAM_TRIPLES, "subjects + objects");
    println!(
        "{:>10} triples  {:>10} nodes  {:>12.2?}  ({:.1} Mtriples/s)",
        STREAM_TRIPLES,
        streamed_nodes,
        stream_time,
        STREAM_TRIPLES as f64 / stream_time.as_secs_f64().max(f64::EPSILON) / 1e6
    );

    // --- Incremental revalidation: repair cost is O(edits), not O(graph) ----
    println!("\n[stream] incremental revalidation of an evolving 30k-node graph");
    const USERS: usize = 10_000;
    let user_schema =
        parse_schema("User -> name::Literal, email::Literal\nLiteral -> EMPTY\n").unwrap();
    let mut evolving = Graph::new();
    let mut seed = GraphDelta::new();
    for i in 0..USERS {
        seed.add_edge(format!("u{i}"), "name", format!("\"name{i}\""));
        seed.add_edge(format!("u{i}"), "email", format!("\"email{i}\""));
    }
    evolving.apply_delta(&seed);
    assert!(evolving.node_count() >= 10_000);
    let (scratch_total, full_time) =
        recorder.measure("incremental_revalidate/full_typing", 3, || {
            maximal_typing(&evolving, &user_schema).is_total()
        });
    assert!(scratch_total, "the seeded user graph validates");
    println!(
        "{:>10} {:>12} {:>14} {:>12}  (vs. from-scratch typing)",
        "edits", "affected", "time", "speedup"
    );
    println!(
        "{:>10} {:>12} {:>14.2?} {:>11}×",
        "scratch",
        evolving.node_count(),
        full_time,
        "1.0"
    );
    let mut typing = IncrementalTyping::new(&evolving, &user_schema);
    for &edits in &[1usize, 16, 256] {
        // Toggle `edits` email edges off and back on, repairing the retained
        // typing from the dirty sets after each half — state-restoring, so
        // every run sees the identical workload.
        let (affected, elapsed) =
            recorder.measure(&format!("incremental_revalidate/edits={edits}"), 3, || {
                let mut remove = GraphDelta::new();
                for e in 0..edits {
                    remove.remove_edge(format!("u{e}"), "email", format!("\"email{e}\""));
                }
                let report = evolving.apply_delta(&remove);
                let mut affected = typing.apply(&evolving, &user_schema, &report.dirty);
                let mut add = GraphDelta::new();
                for e in 0..edits {
                    add.add_edge(format!("u{e}"), "email", format!("\"email{e}\""));
                }
                let report = evolving.apply_delta(&add);
                affected += typing.apply(&evolving, &user_schema, &report.dirty);
                affected
            });
        println!(
            "{:>10} {:>12} {:>14.2?} {:>11.1}×",
            edits,
            affected,
            elapsed,
            full_time.as_secs_f64() / elapsed.as_secs_f64().max(f64::EPSILON)
        );
    }
    assert_eq!(
        typing.typing(),
        &maximal_typing(&evolving, &user_schema),
        "incremental repair must equal the from-scratch typing"
    );

    println!(
        "\nReading: the DetShEx0- column scales smoothly (polynomial), while the\n\
         gadget-driven ShEx0 and ShEx workloads blow up quickly or require the\n\
         budgeted procedures to give up — matching the paper's separation. The\n\
         batch rows show the ContainmentEngine session amortizing per-schema\n\
         artefacts (pools, shape graphs, verdicts) across the whole matrix, and\n\
         the stream rows show ingestion staying one-pass while the incremental\n\
         revalidator repairs an edit in a sliver of the from-scratch fixpoint."
    );

    let json_path =
        std::env::var("BENCH_FIG7_JSON").unwrap_or_else(|_| "BENCH_fig7.json".to_owned());
    // The committed summary (if any) is the regression baseline; read it
    // before overwriting. Only a genuinely absent file skips the gate — a
    // present-but-unreadable or unparseable baseline is a gate integrity
    // failure, otherwise an IO hiccup or a format drift in `to_json` would
    // disable the gate forever without anyone noticing.
    let baseline = match std::fs::read_to_string(&json_path) {
        Ok(text) => Some(parse_baseline(&text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!(
                "\ncannot read the committed baseline {json_path}: {e} — \
                 failing rather than silently disabling the regression gate"
            );
            std::process::exit(1);
        }
    };
    match std::fs::write(&json_path, recorder.to_json()) {
        Ok(()) => println!("\nwrote machine-readable summary to {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }
    if std::env::var_os("BENCH_FIG7_NO_GATE").is_some() {
        println!("regression gate skipped (BENCH_FIG7_NO_GATE is set)");
        return;
    }
    // Deadline polling must stay within its budget on the disjunct gadget;
    // like the baseline gate, a failure needs both the mean and the
    // best-of-run over the line.
    if deadline_mean_ratio > DEADLINE_OVERHEAD_GATE && deadline_min_ratio > DEADLINE_OVERHEAD_GATE {
        eprintln!(
            "\ndeadline checkpoint overhead beyond {DEADLINE_OVERHEAD_GATE}x: \
             {deadline_mean_ratio:.3}x mean / {deadline_min_ratio:.3}x min \
             on general_disjunct_gadget choice/groups=6"
        );
        eprintln!("(set BENCH_FIG7_NO_GATE=1 to bypass on a noisy host)");
        std::process::exit(1);
    }
    println!(
        "deadline overhead gate passed: {deadline_mean_ratio:.3}x mean (budget {DEADLINE_OVERHEAD_GATE}x)"
    );
    match baseline {
        None => println!("no committed baseline found; regression gate skipped"),
        Some(records) if records.is_empty() => {
            eprintln!(
                "\n{json_path} existed but yielded no baseline records — \
                 parse_baseline and Recorder::to_json have drifted apart; \
                 failing rather than silently disabling the regression gate"
            );
            std::process::exit(1);
        }
        Some(records) => {
            if let Err(report) = enforce_regression_gate(&recorder, &records) {
                eprintln!("\n{report}");
                eprintln!("(set BENCH_FIG7_NO_GATE=1 to bypass on a noisy host)");
                std::process::exit(1);
            }
            println!(
                "regression gate passed: no workload above {REGRESSION_GATE}x its committed mean"
            );
        }
    }
}
