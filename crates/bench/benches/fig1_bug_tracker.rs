//! E1 (Figure 1): the bug-tracker schema and instance — validation,
//! embedding, and containment of the refactored schema.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapex_core::det::det_containment;
use shapex_core::embedding::embeds;
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_gadgets::figures;
use shapex_shex::typing::{maximal_typing, validates};

fn bench(c: &mut Criterion) {
    let schema = figures::bug_tracker_schema();
    let split = figures::bug_tracker_split_schema();
    let graph = figures::bug_tracker_graph();
    let shape = schema.to_shape_graph().expect("RBE0");

    let mut group = c.benchmark_group("fig1_bug_tracker");
    group.bench_function("validate_instance", |b| {
        b.iter(|| validates(&graph, &schema))
    });
    group.bench_function("maximal_typing", |b| {
        b.iter(|| maximal_typing(&graph, &schema))
    });
    group.bench_function("embed_instance_in_shape_graph", |b| {
        b.iter(|| embeds(&graph, &shape).is_some())
    });
    group.bench_function("self_containment_detshex0minus", |b| {
        b.iter(|| det_containment(&schema, &schema).unwrap().is_contained())
    });
    group.bench_function("split_subset_of_original", |b| {
        b.iter(|| shex0_containment(&split, &schema, &Shex0Options::quick()).is_contained())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
