//! E4 (Figure 5 / Lemma 4.2): building the characterizing graph of a
//! `DetShEx₀⁻` schema and checking that it stays polynomial in the schema
//! size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::contained_det_pair;
use shapex_core::det::characterizing_graph;
use shapex_core::embedding::embeds;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_characterizing");
    for &types in &[4usize, 8, 16, 32] {
        let (h, _) = contained_det_pair(types, 500 + types as u64);
        let shape = h.to_shape_graph().unwrap();
        group.bench_with_input(BenchmarkId::new("build", types), &h, |b, schema| {
            b.iter(|| characterizing_graph(schema).unwrap().node_count())
        });
        let g = characterizing_graph(&h).unwrap();
        group.bench_with_input(
            BenchmarkId::new("verify_membership", types),
            &(g, shape),
            |b, (g, shape)| b.iter(|| embeds(g, shape).is_some()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
