//! E10 (Lemma 5.1): the family whose minimal counter-example is exponential.
//! The bench reports the cost of validating the canonical witness (whose size
//! doubles with `n`) against both schemas; the witness sizes themselves are
//! recorded in EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_gadgets::reductions::{exponential_family, exponential_family_witness};
use shapex_shex::typing::validates;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lem5_1_counterexample");
    for n in 1..=4usize {
        let (h, k) = exponential_family(n);
        let witness = exponential_family_witness(n);
        group.bench_with_input(
            BenchmarkId::new("validate_witness_against_h", n),
            &(witness.clone(), h.clone()),
            |b, (w, h)| b.iter(|| validates(w, h)),
        );
        group.bench_with_input(
            BenchmarkId::new("refute_witness_against_k", n),
            &(witness, k),
            |b, (w, k)| b.iter(|| !validates(w, k)),
        );
    }
    // The full containment procedure on the smallest instance (its embedding
    // check fails and the unfolding search must run).
    let (h, k) = exponential_family(1);
    group.bench_function("shex0_containment_n1", |b| {
        b.iter(|| shex0_containment(&h, &k, &Shex0Options::quick()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
