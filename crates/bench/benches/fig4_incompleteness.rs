//! E3 (Figure 4): embeddings are a sufficient but not necessary condition for
//! containment. `L(G) = L(H)` yet only `H ≼ G` holds; the budgeted ShEx₀
//! procedure must decide the embedding direction fast and must not produce a
//! counter-example for the other.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapex_core::embedding::embeds;
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_gadgets::figures;

fn bench(c: &mut Criterion) {
    let g = figures::fig4_g_schema();
    let h = figures::fig4_h_schema();
    let g_shape = g.to_shape_graph().unwrap();
    let h_shape = h.to_shape_graph().unwrap();

    let mut group = c.benchmark_group("fig4_incompleteness");
    group.bench_function("embedding_h_in_g_holds", |b| {
        b.iter(|| embeds(&h_shape, &g_shape).is_some())
    });
    group.bench_function("embedding_g_in_h_fails", |b| {
        b.iter(|| embeds(&g_shape, &h_shape).is_none())
    });
    group.bench_function("containment_h_in_g_via_embedding", |b| {
        b.iter(|| shex0_containment(&h, &g, &Shex0Options::quick()).is_contained())
    });
    group.bench_function("containment_g_in_h_budgeted_search", |b| {
        b.iter(|| !shex0_containment(&g, &h, &Shex0Options::quick()).is_not_contained())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
