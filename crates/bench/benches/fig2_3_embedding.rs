//! E2 (Figures 2 and 3): the graph G₀, the schema S₀, and the embedding of
//! G₀ into the shape graph H₀.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapex_core::embedding::{embeds, max_simulation};
use shapex_gadgets::figures;
use shapex_shex::typing::validates;

fn bench(c: &mut Criterion) {
    let g0 = figures::g0_graph();
    let s0 = figures::s0_schema();
    let h0 = figures::h0_shape_graph();

    let mut group = c.benchmark_group("fig2_3_embedding");
    group.bench_function("validate_g0_against_s0", |b| b.iter(|| validates(&g0, &s0)));
    group.bench_function("max_simulation_g0_h0", |b| {
        b.iter(|| max_simulation(&g0, &h0))
    });
    group.bench_function("embed_g0_in_h0", |b| b.iter(|| embeds(&g0, &h0).is_some()));
    group.bench_function("embed_h0_in_g0_fails", |b| {
        b.iter(|| embeds(&h0, &g0).is_none())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
