//! E8 (Theorem 3.5): embedding with arbitrary intervals is NP-complete —
//! runtime on SAT-derived instances, satisfiable and unsatisfiable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::rng;
use shapex_core::embedding::embeds;
use shapex_gadgets::generate::random_cnf;
use shapex_gadgets::reductions::{sat_embedding_gadget, CnfFormula};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3_5_sat_gadget");

    // A pigeonhole-flavoured unsatisfiable instance and its satisfiable twin.
    let unsat = CnfFormula {
        num_vars: 2,
        clauses: vec![vec![1, 2], vec![1, -2], vec![-1, 2], vec![-1, -2]],
    };
    let sat = CnfFormula {
        num_vars: 2,
        clauses: vec![vec![1, 2], vec![-1, -2]],
    };
    for (name, formula) in [("satisfiable_2v", &sat), ("unsatisfiable_2v", &unsat)] {
        let (h, k) = sat_embedding_gadget(formula);
        group.bench_with_input(BenchmarkId::new("fixed", name), &(h, k), |b, (h, k)| {
            b.iter(|| embeds(h, k).is_some())
        });
    }

    // Random 2-CNF instances of growing size (kept small: the witness check
    // is a backtracking search and the gadget grows quadratically).
    for &vars in &[2usize, 3, 4] {
        let mut r = rng(800 + vars as u64);
        let formula = random_cnf(&mut r, vars, vars + 1, 2);
        let (h, k) = sat_embedding_gadget(&formula);
        group.bench_with_input(
            BenchmarkId::new("random_cnf", vars),
            &(h, k),
            |b, (h, k)| b.iter(|| embeds(h, k).is_some()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
