//! E9 (Corollary 4.4): containment for `DetShEx₀⁻` is decided in polynomial
//! time — scaling on random contained and non-contained pairs, compared
//! against the brute-force baseline on tiny instances.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::contained_det_pair;
use shapex_core::baseline::enumerate_counter_example;
use shapex_core::det::det_containment;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cor4_4_det_containment");
    for &types in &[4usize, 8, 16, 32, 64] {
        let (h, k) = contained_det_pair(types, 40 + types as u64);
        group.bench_with_input(
            BenchmarkId::new("contained_pair", types),
            &(h.clone(), k.clone()),
            |b, (h, k)| b.iter(|| det_containment(h, k).unwrap().is_contained()),
        );
        // The reverse direction is usually not contained and exercises the
        // characterizing-graph construction.
        group.bench_with_input(
            BenchmarkId::new("reverse_direction", types),
            &(k, h),
            |b, (k, h)| b.iter(|| det_containment(k, h).unwrap()),
        );
    }

    // Baseline: brute-force enumeration on a tiny non-contained pair.
    let (h, k) = contained_det_pair(3, 11);
    group.bench_function("baseline_enumeration_tiny", |b| {
        b.iter(|| enumerate_counter_example(&k, &h, 2, 3, 20_000))
    });
    group.bench_function("det_containment_tiny", |b| {
        b.iter(|| det_containment(&k, &h).unwrap())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
