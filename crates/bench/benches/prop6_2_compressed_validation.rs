//! E12 (Proposition 6.2): validating compressed graphs (binary-encoded edge
//! multiplicities) stays cheap as the multiplicities grow — the cost depends
//! on the magnitude only through the Presburger bounds, not through the
//! unpacked size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::{compressed_hub, compressed_hub_disjunctive};
use shapex_shex::typing::validates;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop6_2_compressed_validation");
    for &spokes in &[10u64, 1_000, 100_000, 10_000_000] {
        let (graph, schema) = compressed_hub(spokes);
        group.bench_with_input(
            BenchmarkId::new("interval_schema", spokes),
            &(graph, schema),
            |b, (graph, schema)| b.iter(|| validates(graph, schema)),
        );
        let (graph, schema) = compressed_hub_disjunctive(spokes);
        group.bench_with_input(
            BenchmarkId::new("disjunctive_schema", spokes),
            &(graph, schema),
            |b, (graph, schema)| b.iter(|| validates(graph, schema)),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
