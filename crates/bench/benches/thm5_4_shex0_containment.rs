//! E11 (Theorem 5.4): the budgeted ShEx₀ containment procedure on random
//! shape-graph pairs — contained pairs (decided by embedding), restricted
//! reverse pairs (decided by counter-example search), and the DetShEx₀⁻
//! shortcut.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::{contained_det_pair, contained_shex0_pair};
use shapex_core::shex0::{shex0_containment, Shex0Options};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5_4_shex0_containment");
    for &types in &[4usize, 8, 16] {
        let (h, k) = contained_shex0_pair(types, 300 + types as u64);
        group.bench_with_input(
            BenchmarkId::new("contained_via_embedding", types),
            &(h.clone(), k.clone()),
            |b, (h, k)| b.iter(|| shex0_containment(h, k, &Shex0Options::quick()).is_contained()),
        );
        group.bench_with_input(
            BenchmarkId::new("reverse_direction_search", types),
            &(k, h),
            |b, (k, h)| b.iter(|| shex0_containment(k, h, &Shex0Options::quick())),
        );
        let (hd, kd) = contained_det_pair(types, 301 + types as u64);
        group.bench_with_input(
            BenchmarkId::new("det_minus_shortcut", types),
            &(kd, hd),
            |b, (kd, hd)| b.iter(|| shex0_containment(kd, hd, &Shex0Options::quick())),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
