//! Tentpole experiment: the `ContainmentEngine` session on the batch
//! schema-evolution workload — a full N×N containment matrix over an
//! evolving schema family — versus N² one-shot `general_containment` calls
//! that rebuild every shape graph, unfolding pool, and validation verdict
//! per pair.
//!
//! The acceptance bars for this harness: the engine-backed matrix ≥ 2× over
//! the one-shot N² loop at N ≥ 8, and (on a multi-core host) the
//! row-parallel engine ≥ 1.5× over the serial engine at N = 12 — the
//! `engine_parallel` arm fans matrix rows across a scoped worker pool over
//! the shared `&self` caches, with bit-identical verdicts. Run with
//! `cargo bench -p shapex-bench --bench batch_matrix`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::evolution_family;
use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::general::general_containment;
use shapex_core::unfold::SearchOptions;
use shapex_core::Containment;

/// Fold a matrix of answers into a small checksum so the optimizer keeps
/// every containment decision and both arms return comparable values.
fn checksum<'a>(answers: impl Iterator<Item = &'a Containment>) -> usize {
    answers.fold(0usize, |acc, c| {
        acc.wrapping_mul(3).wrapping_add(match c {
            Containment::Contained => 0,
            Containment::NotContained(_) => 1,
            Containment::Unknown(_) => 2,
        })
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_matrix");
    let opts = SearchOptions::quick();

    for &n in &[8usize, 12] {
        let family = evolution_family(n);

        // Baseline: N² independent one-shot calls (each constructs a
        // throwaway engine — pools and memos die with every pair).
        group.bench_with_input(BenchmarkId::new("oneshot", n), &family, |b, family| {
            b.iter(|| {
                let mut answers = Vec::with_capacity(n * n);
                for h in family {
                    for k in family {
                        answers.push(general_containment(h, k, &opts));
                    }
                }
                checksum(answers.iter())
            })
        });

        // The session: one engine computes the whole matrix, building each
        // schema's artefacts once (the engine is constructed inside the
        // timed closure — cold-start included).
        group.bench_with_input(BenchmarkId::new("engine", n), &family, |b, family| {
            b.iter(|| {
                let matrix = ContainmentEngine::with_search(opts.clone()).check_matrix(family);
                checksum(matrix.iter().flatten())
            })
        });

        // The session with rows fanned across the matrix worker pool (cells
        // validate inline there, so the two thread pools do not multiply).
        let parallel = EngineOptions::parallel().with_search(opts.clone());
        group.bench_with_input(
            BenchmarkId::new("engine_parallel", n),
            &family,
            |b, family| {
                b.iter(|| {
                    let matrix =
                        ContainmentEngine::with_options(parallel.clone()).check_matrix(family);
                    checksum(matrix.iter().flatten())
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
