//! Corpus-scale service throughput: closed-loop client fleets hammering a
//! `ServicePool` of sharded workers over one shared engine, on the
//! duplicate-heavy request mix of `shapex_bench::throughput` (three in four
//! requests hit a hot anchor pair — the traffic single-flight coalescing
//! absorbs).
//!
//! Each iteration is one full drive: fresh service (cold caches), corpus
//! registration, `clients` closed-loop threads of `requests_per_client`
//! checks each. The `coalesce=off` arm at the widest fleet measures the
//! uncoalesced path; the wall-clock gap between the two 16-client arms is
//! the coalescing win the `fig7_summary` gate tracks. Run with
//! `cargo bench -p shapex-bench --bench service_throughput`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::throughput::{drive, DriveOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");

    for &clients in &[1usize, 4, 16] {
        let options = DriveOptions {
            clients,
            requests_per_client: 32,
            ..DriveOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new("clients", clients),
            &options,
            |b, options| b.iter(|| drive(options).requests),
        );
    }

    let uncoalesced = DriveOptions {
        clients: 16,
        requests_per_client: 32,
        coalesce: false,
        ..DriveOptions::default()
    };
    group.bench_with_input(
        BenchmarkId::new("clients_uncoalesced", 16),
        &uncoalesced,
        |b, options| b.iter(|| drive(options).requests),
    );

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
