//! E13 (Section 6): containment for full ShEx (definitions with disjunction
//! and wide intervals) through the budgeted general procedure.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use shapex_core::general::{general_containment, GeneralOptions};
use shapex_shex::parse_schema;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec6_general_containment");

    // Disjunction widening: contained, decided by the type-simulation check.
    let narrow = parse_schema("Root -> p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    let wide = parse_schema("Root -> p::A | p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
    group.bench_function("disjunction_widening_contained", |b| {
        b.iter(|| general_containment(&narrow, &wide, &GeneralOptions::quick()).is_contained())
    });
    group.bench_function("disjunction_narrowing_not_contained", |b| {
        b.iter(|| general_containment(&wide, &narrow, &GeneralOptions::quick()).is_not_contained())
    });

    // Counting with intervals vs. explicit disjunction.
    let exact = parse_schema("T -> q::L[2;2]\nL -> EMPTY\n").unwrap();
    let either = parse_schema("T -> q::L | (q::L, q::L)\nL -> EMPTY\n").unwrap();
    group.bench_function("interval_vs_disjunction_contained", |b| {
        b.iter(|| general_containment(&exact, &either, &GeneralOptions::quick()).is_contained())
    });
    group.bench_function("interval_vs_disjunction_reverse", |b| {
        b.iter(|| general_containment(&either, &exact, &GeneralOptions::quick()).is_not_contained())
    });

    // Grouped repetition (non-RBE0 on both sides): the sufficient check is
    // not applicable and the procedure must fall back to the bounded search.
    let pairs = parse_schema("T -> (p::L, q::L)?\nL -> EMPTY\n").unwrap();
    let trio = parse_schema("T -> p::L?, q::L?, r::L\nL -> EMPTY\n").unwrap();
    group.bench_function("grouped_repetition_not_contained", |b| {
        b.iter(|| general_containment(&pairs, &trio, &GeneralOptions::quick()).is_not_contained())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
