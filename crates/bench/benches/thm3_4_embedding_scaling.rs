//! E7 (Theorem 3.4): embeddings between shape graphs are decided in
//! polynomial time — runtime scaling on random contained pairs of growing
//! size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::{contained_det_pair, contained_shex0_pair};
use shapex_core::embedding::{embeds, max_simulation};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3_4_embedding_scaling");
    for &types in &[8usize, 16, 32, 64] {
        let (h, k) = contained_det_pair(types, 700 + types as u64);
        let hg = h.to_shape_graph().unwrap();
        let kg = k.to_shape_graph().unwrap();
        group.bench_with_input(
            BenchmarkId::new("embeds_det_pair", types),
            &(hg.clone(), kg.clone()),
            |b, (hg, kg)| b.iter(|| embeds(hg, kg).is_some()),
        );
        group.bench_with_input(
            BenchmarkId::new("max_simulation_det_pair", types),
            &(hg, kg),
            |b, (hg, kg)| b.iter(|| max_simulation(hg, kg).len()),
        );
        let (h2, k2) = contained_shex0_pair(types, 900 + types as u64);
        let hg2 = h2.to_shape_graph().unwrap();
        let kg2 = k2.to_shape_graph().unwrap();
        group.bench_with_input(
            BenchmarkId::new("embeds_shex0_pair", types),
            &(hg2, kg2),
            |b, (hg, kg)| b.iter(|| embeds(hg, kg).is_some()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
