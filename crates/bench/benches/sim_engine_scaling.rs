//! Tentpole experiment: the worklist + bitset simulation engine versus the
//! retained full-rescan fix-point (`baseline.rs`) on generated graph pairs
//! of growing size — shape-graph pairs from the `shapex-gadgets` schema
//! generator and instance-vs-shape pairs sampled from random shapes.
//!
//! The acceptance bar for this harness is a ≥ 3× speed-up of the worklist
//! engine over the baseline on the largest generated pair; run with
//! `cargo bench -p shapex-bench --bench sim_engine_scaling`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::{contained_shex0_pair, rng};
use shapex_core::baseline::max_simulation_baseline;
use shapex_core::simulation::{max_simulation_with, SimulationOptions};
use shapex_graph::generate::{sample_from_shape, GraphGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine_scaling");

    // Shape-graph pairs derived from generated ShEx0 schemas (the
    // containment fast path exercised by every decision procedure).
    for &types in &[16usize, 32, 64] {
        let (h, k) = contained_shex0_pair(types, 4_000 + types as u64);
        let hg = h.to_shape_graph().unwrap();
        let kg = k.to_shape_graph().unwrap();
        group.bench_with_input(
            BenchmarkId::new("schema_pair_baseline", types),
            &(&hg, &kg),
            |b, (hg, kg)| b.iter(|| max_simulation_baseline(hg, kg).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("schema_pair_worklist", types),
            &(&hg, &kg),
            |b, (hg, kg)| {
                b.iter(|| max_simulation_with(hg, kg, &SimulationOptions::sequential()).len())
            },
        );
    }

    // Instance-vs-shape pairs: a large simple graph sampled from a random
    // shape graph, the membership workload of Section 3.
    let parallel = SimulationOptions::parallel();
    for &nodes in &[128usize, 256, 512] {
        let mut r = rng(5_000 + nodes as u64);
        // Unfoldings can die out early on unlucky shapes; retry until the
        // instance actually fills the requested node budget.
        let (shape, instance) = loop {
            let shape = GraphGen::new(24, 4).out_degree(2.5).shape(&mut r);
            let instance = sample_from_shape(&mut r, &shape, nodes);
            if instance.node_count() >= nodes {
                break (shape, instance);
            }
        };
        group.bench_with_input(
            BenchmarkId::new("instance_baseline", nodes),
            &(&instance, &shape),
            |b, (g, h)| b.iter(|| max_simulation_baseline(g, h).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("instance_worklist", nodes),
            &(&instance, &shape),
            |b, (g, h)| {
                b.iter(|| max_simulation_with(g, h, &SimulationOptions::sequential()).len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("instance_worklist_parallel", nodes),
            &(&instance, &shape),
            |b, (g, h)| b.iter(|| max_simulation_with(g, h, &parallel).len()),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
