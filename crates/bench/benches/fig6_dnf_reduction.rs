//! E5 (Figure 6 / Theorem 4.5): containment for `DetShEx₀` is coNP-hard —
//! DNF-tautology instances turned into containment questions, with runtime
//! growing quickly in the number of variables.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use shapex_bench::rng;
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_gadgets::generate::random_dnf;
use shapex_gadgets::reductions::{dnf_tautology_gadget, DnfFormula};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_dnf_reduction");

    // The exact Figure 6 formula.
    let fig6 = DnfFormula {
        num_vars: 3,
        terms: vec![vec![1, -2], vec![2, -3]],
    };
    let (h, k) = dnf_tautology_gadget(&fig6);
    group.bench_function("figure6_formula_not_tautology", |b| {
        b.iter(|| shex0_containment(&h, &k, &Shex0Options::quick()).is_not_contained())
    });

    // Random DNF formulas of growing size.
    for &vars in &[2usize, 3, 4] {
        let mut r = rng(600 + vars as u64);
        let formula = random_dnf(&mut r, vars, vars, 2);
        let (h, k) = dnf_tautology_gadget(&formula);
        group.bench_with_input(
            BenchmarkId::new("random_dnf", vars),
            &(h, k),
            |b, (h, k)| b.iter(|| shex0_containment(h, k, &Shex0Options::quick())),
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
