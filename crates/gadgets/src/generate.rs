//! Random workload generators: formulas, schemas, and contained schema pairs.

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_rbe::{Interval, Rbe};
use shapex_shex::{Atom, Schema, TypeId};

use crate::reductions::{CnfFormula, DnfFormula};

/// A random CNF formula with the given number of variables and clauses, each
/// clause drawing `width` distinct literals uniformly.
pub fn random_cnf(
    rng: &mut StdRng,
    num_vars: usize,
    num_clauses: usize,
    width: usize,
) -> CnfFormula {
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut clause = Vec::with_capacity(width);
        let mut vars: Vec<usize> = (1..=num_vars).collect();
        vars.shuffle(rng);
        for &v in vars.iter().take(width.min(num_vars)) {
            let sign = if rng.gen_bool(0.5) { 1 } else { -1 };
            clause.push(sign * v as i32);
        }
        clauses.push(clause);
    }
    CnfFormula { num_vars, clauses }
}

/// A random DNF formula with the given number of variables and terms.
pub fn random_dnf(rng: &mut StdRng, num_vars: usize, num_terms: usize, width: usize) -> DnfFormula {
    let cnf = random_cnf(rng, num_vars, num_terms, width);
    DnfFormula {
        num_vars,
        terms: cnf.clauses,
    }
}

/// Parameters for random schema generation.
#[derive(Debug, Clone)]
pub struct SchemaGen {
    /// Number of types.
    pub types: usize,
    /// Number of distinct predicate labels.
    pub labels: usize,
    /// Maximum number of atoms per type definition.
    pub max_atoms: usize,
}

impl Default for SchemaGen {
    fn default() -> Self {
        SchemaGen {
            types: 6,
            labels: 4,
            max_atoms: 3,
        }
    }
}

impl SchemaGen {
    /// Generator for `types` types over `labels` labels.
    pub fn new(types: usize, labels: usize) -> SchemaGen {
        SchemaGen {
            types,
            labels,
            ..SchemaGen::default()
        }
    }

    /// A random `ShEx₀` schema: every definition is an RBE₀ over basic
    /// intervals. When `deterministic` is set, each label appears at most once
    /// per definition (yielding `DetShEx₀`).
    pub fn shex0<R: Rng>(&self, rng: &mut R, deterministic: bool) -> Schema {
        let mut schema = Schema::new();
        let types: Vec<TypeId> = (0..self.types)
            .map(|i| schema.add_type(format!("T{i}")))
            .collect();
        for &t in &types {
            let n_atoms = rng.gen_range(0..=self.max_atoms);
            let mut used = std::collections::BTreeSet::new();
            let mut parts = Vec::new();
            for _ in 0..n_atoms {
                let label = format!("p{}", rng.gen_range(0..self.labels));
                if deterministic && !used.insert(label.clone()) {
                    continue;
                }
                let target = types[rng.gen_range(0..types.len())];
                let interval = match rng.gen_range(0..4) {
                    0 => Interval::ONE,
                    1 => Interval::OPT,
                    2 => Interval::PLUS,
                    _ => Interval::STAR,
                };
                let atom = Rbe::symbol(Atom::new(label.as_str(), target));
                parts.push(if interval == Interval::ONE {
                    atom
                } else {
                    Rbe::repeat(atom, interval)
                });
            }
            schema.define(t, Rbe::concat(parts));
        }
        schema
    }

    /// A random `DetShEx₀⁻` schema: deterministic, no `+`, and `?` only on
    /// types that are referenced through `*`-closed references. The
    /// construction enforces this by only using `?` on atoms whose *source*
    /// type is itself referenced exclusively through `*` edges from the
    /// designated root type.
    pub fn det_shex0_minus<R: Rng>(&self, rng: &mut R) -> Schema {
        let mut schema = Schema::new();
        let types: Vec<TypeId> = (0..self.types)
            .map(|i| schema.add_type(format!("T{i}")))
            .collect();
        // T0 is the root: it references every other type through `*` edges,
        // making every reference from non-root types *-closed.
        let root_atoms: Vec<Rbe<Atom>> = types
            .iter()
            .skip(1)
            .enumerate()
            .map(|(i, &t)| {
                Rbe::repeat(
                    Rbe::symbol(Atom::new(format!("r{i}").as_str(), t)),
                    Interval::STAR,
                )
            })
            .collect();
        schema.define(types[0], Rbe::concat(root_atoms));
        for (ti, &t) in types.iter().enumerate().skip(1) {
            let n_atoms = rng.gen_range(0..=self.max_atoms);
            let mut used = std::collections::BTreeSet::new();
            let mut parts = Vec::new();
            for _ in 0..n_atoms {
                let label = format!("p{}", rng.gen_range(0..self.labels));
                if !used.insert(label.clone()) {
                    continue;
                }
                // Point only "forward" (to strictly later types) to keep the
                // mandatory part acyclic, so the language is non-trivial.
                if ti + 1 >= types.len() {
                    break;
                }
                let target = types[rng.gen_range(ti + 1..types.len())];
                let interval = match rng.gen_range(0..3) {
                    0 => Interval::ONE,
                    1 => Interval::OPT,
                    _ => Interval::STAR,
                };
                let atom = Rbe::symbol(Atom::new(label.as_str(), target));
                parts.push(if interval == Interval::ONE {
                    atom
                } else {
                    Rbe::repeat(atom, interval)
                });
            }
            schema.define(t, Rbe::concat(parts));
        }
        schema
    }
}

/// Produce a schema `H` with `L(H) ⊆ L(K)` by construction: each definition of
/// `K` is *restricted* (some `*` intervals become `?` or `1`-with-drop, some
/// `?` atoms are dropped), so the shape graph of `H` embeds in that of `K`.
pub fn restrict_schema<R: Rng>(rng: &mut R, k: &Schema) -> Schema {
    let mut h = Schema::new();
    for t in k.types() {
        h.add_type(k.type_name(t).to_owned());
    }
    for t in k.types() {
        let def = k.def(t);
        let restricted = restrict_expr(rng, def);
        let ht = h.find_type(k.type_name(t)).expect("added above");
        h.define(ht, restricted);
    }
    h
}

fn restrict_expr<R: Rng>(rng: &mut R, expr: &Rbe<Atom>) -> Rbe<Atom> {
    match expr {
        Rbe::Epsilon => Rbe::Epsilon,
        Rbe::Symbol(a) => Rbe::Symbol(a.clone()),
        Rbe::Disj(parts) => {
            // Keep a single disjunct: a sub-language.
            let pick = rng.gen_range(0..parts.len());
            restrict_expr(rng, &parts[pick])
        }
        Rbe::Concat(parts) => Rbe::concat(parts.iter().map(|p| restrict_expr(rng, p)).collect()),
        Rbe::Repeat(inner, interval) => {
            let restricted = restrict_expr(rng, inner);
            let narrowed = match interval.basic() {
                Some(shapex_rbe::interval::Basic::Star) => match rng.gen_range(0..3) {
                    0 => Interval::STAR,
                    1 => Interval::OPT,
                    _ => Interval::exactly(0),
                },
                Some(shapex_rbe::interval::Basic::Plus) => {
                    if rng.gen_bool(0.5) {
                        Interval::PLUS
                    } else {
                        Interval::ONE
                    }
                }
                Some(shapex_rbe::interval::Basic::Opt) => {
                    if rng.gen_bool(0.5) {
                        Interval::OPT
                    } else {
                        Interval::exactly(0)
                    }
                }
                _ => *interval,
            };
            if narrowed == Interval::exactly(0) {
                Rbe::Epsilon
            } else {
                Rbe::repeat(restricted, narrowed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_core::embedding::embeds;
    use shapex_core::shex0::{shex0_containment, Shex0Options};
    use shapex_shex::SchemaClass;

    #[test]
    fn random_formulas_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cnf = random_cnf(&mut rng, 5, 8, 3);
        assert_eq!(cnf.clauses.len(), 8);
        assert!(cnf.clauses.iter().all(|c| c.len() == 3));
        assert!(cnf
            .clauses
            .iter()
            .flatten()
            .all(|l| l.unsigned_abs() as usize <= 5 && *l != 0));
        let dnf = random_dnf(&mut rng, 4, 3, 2);
        assert_eq!(dnf.terms.len(), 3);
    }

    #[test]
    fn random_det_minus_schemas_are_in_the_class() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..10 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let schema = SchemaGen::new(5, 3).det_shex0_minus(&mut rng2);
            assert_eq!(
                schema.classify(),
                SchemaClass::DetShEx0Minus,
                "violations: {:?}",
                schema.det_shex0_minus_violations()
            );
            let _ = &mut rng;
        }
    }

    #[test]
    fn random_shex0_schemas_are_rbe0() {
        let mut rng = StdRng::seed_from_u64(11);
        let schema = SchemaGen::new(6, 4).shex0(&mut rng, false);
        assert!(schema.is_rbe0());
        let det = SchemaGen::new(6, 4).shex0(&mut rng, true);
        assert!(det.is_deterministic());
    }

    #[test]
    fn restricted_schemas_embed_in_the_original() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..10u64 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let k = SchemaGen::new(5, 3).shex0(&mut rng2, true);
            let h = restrict_schema(&mut rng, &k);
            let hg = h.to_shape_graph().unwrap();
            let kg = k.to_shape_graph().unwrap();
            assert!(
                embeds(&hg, &kg).is_some(),
                "restriction must embed (seed {seed})\nH:\n{h}\nK:\n{k}"
            );
        }
    }

    #[test]
    fn restricted_det_minus_pairs_are_contained() {
        let mut rng = StdRng::seed_from_u64(17);
        let k = SchemaGen::new(5, 3).det_shex0_minus(&mut rng);
        let h = restrict_schema(&mut rng, &k);
        // The pair is contained; shex0_containment must agree via embedding.
        assert!(shex0_containment(&h, &k, &Shex0Options::quick()).is_contained());
    }
}
