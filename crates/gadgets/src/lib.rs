//! Workloads for the containment experiments: the paper's worked figures,
//! the lower-bound reductions, and random schema/graph generators.
//!
//! * [`figures`] — executable versions of Figures 1–4 of the paper (the bug
//!   tracker, the graph `G₀` and schema `S₀`, the embedding example, and the
//!   `*`-enumeration example showing that embeddings are incomplete).
//! * [`reductions`] — the three lower-bound constructions: SAT into embedding
//!   with arbitrary intervals (Theorem 3.5), DNF tautology into `DetShEx₀`
//!   containment (Theorem 4.5 / Figure 6), and the family with exponentially
//!   large minimal counter-examples (Lemma 5.1).
//! * [`generate`] — random CNF/DNF formulas, random `DetShEx₀⁻` and `ShEx₀`
//!   schemas, and schema restrictions that produce contained pairs by
//!   construction.
//! * [`disjuncts`] — disjunct-heavy general-containment pairs whose
//!   neighbourhood checks are forced through the Presburger solver, the
//!   workload the parallel disjunct search is measured on.
//! * [`corpus`] — corpus-scale workloads: fleets of schema families evolving
//!   under seeded deltas, the input of the `service_throughput` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod disjuncts;
pub mod figures;
pub mod generate;
pub mod reductions;
