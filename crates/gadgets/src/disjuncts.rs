//! Disjunct-heavy general-containment gadgets.
//!
//! The reductions of [`crate::reductions`] resolve in well under a
//! millisecond, which makes them useless for measuring solver-level
//! optimisations. The pairs here are built so that the §6 procedure spends
//! its time inside the Presburger solver: every schema `K` in the family
//! defines its root as an unordered concatenation of *choice groups*
//!
//! ```text
//! Root -> (a1::L | b1::L)[1;2] || … || (ag::L | bg::L)[1;2]
//! ```
//!
//! The definition is not RBE₀ (disjunction under repetition), so every
//! neighbourhood check — in the sufficient type-simulation and in the
//! candidate filtering of the counter-example search — takes the ψ
//! translation into the bounded solver, and every group contributes an
//! independent branch point. On the Unsat side the solver must refute every
//! branch combination, which is exactly the workload the parallel disjunct
//! search spreads across workers.

use shapex_rbe::{Interval, Rbe};
use shapex_shex::{Atom, Schema, TypeId};

/// The choice-group definition `(a1::L | b1::L)[1;2] || …` over `groups`
/// groups.
fn choice_groups(groups: usize, leaf: TypeId) -> Rbe<Atom> {
    let parts: Vec<Rbe<Atom>> = (1..=groups)
        .map(|i| {
            Rbe::repeat(
                Rbe::disj(vec![
                    Rbe::symbol(Atom::new(format!("a{i}"), leaf)),
                    Rbe::symbol(Atom::new(format!("b{i}"), leaf)),
                ]),
                Interval::bounded(1, 2),
            )
        })
        .collect();
    Rbe::concat(parts)
}

/// A contained pair `(H, K)` with `groups` choice groups: `H` commits to the
/// `aᵢ` alternative of every group exactly once, so `L(H) ⊆ L(K)` — and the
/// sufficient check must prove it through one satisfiable-but-branchy solver
/// query per candidate type pair.
pub fn disjunct_choice_pair(groups: usize) -> (Schema, Schema) {
    let mut h = Schema::new();
    let root = h.add_type("Root");
    let leaf = h.add_type("L");
    let atoms: Vec<(String, TypeId, Interval)> = (1..=groups)
        .map(|i| (format!("a{i}"), leaf, Interval::ONE))
        .collect();
    let atom_refs: Vec<(&str, TypeId, Interval)> =
        atoms.iter().map(|(l, t, i)| (l.as_str(), *t, *i)).collect();
    h.define_rbe0(root, &atom_refs);
    h.define(leaf, Rbe::Epsilon);

    let k = choice_schema(groups);
    (h, k)
}

/// A non-contained pair `(H, K)` with `groups` choice groups: `H` demands
/// three copies of `a1`, one more than group 1 can supply, so `L(H) ⊄ L(K)`
/// and every solver query on the way to the verdict is unsatisfiable — the
/// solver explores the full branch tree of every group.
pub fn disjunct_mismatch_pair(groups: usize) -> (Schema, Schema) {
    let mut h = Schema::new();
    let root = h.add_type("Root");
    let leaf = h.add_type("L");
    let mut atoms: Vec<(String, TypeId, Interval)> =
        vec![("a1".to_string(), leaf, Interval::exactly(3))];
    for i in 2..=groups {
        atoms.push((format!("a{i}"), leaf, Interval::ONE));
    }
    let atom_refs: Vec<(&str, TypeId, Interval)> =
        atoms.iter().map(|(l, t, i)| (l.as_str(), *t, *i)).collect();
    h.define_rbe0(root, &atom_refs);
    h.define(leaf, Rbe::Epsilon);

    let k = choice_schema(groups);
    (h, k)
}

/// The `K` schema shared by the pairs of this family.
fn choice_schema(groups: usize) -> Schema {
    let mut k = Schema::new();
    let root = k.add_type("Root");
    let leaf = k.add_type("L");
    let def = choice_groups(groups, leaf);
    k.define(root, def);
    k.define(leaf, Rbe::Epsilon);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_core::general::{general_containment, GeneralOptions};
    use shapex_core::Containment;

    #[test]
    fn the_k_schema_is_genuinely_non_rbe0() {
        let (_, k) = disjunct_choice_pair(3);
        let root = k.find_type("Root").expect("root exists");
        assert!(
            k.def(root).to_rbe0().is_none(),
            "the family must dodge the RBE0 flow fast path to reach the solver"
        );
    }

    #[test]
    fn choice_pairs_are_contained() {
        for groups in [1, 2, 4] {
            let (h, k) = disjunct_choice_pair(groups);
            let verdict = general_containment(&h, &k, &GeneralOptions::quick());
            assert!(
                verdict.is_contained(),
                "H commits to one alternative per group, so H ⊆ K (groups={groups})"
            );
        }
    }

    #[test]
    fn mismatch_pairs_are_not_contained() {
        for groups in [1, 2, 4] {
            let (h, k) = disjunct_mismatch_pair(groups);
            let verdict = general_containment(&h, &k, &GeneralOptions::quick());
            match verdict {
                Containment::NotContained { .. } => {}
                other => panic!("three a1 copies exceed group 1 (groups={groups}): {other:?}"),
            }
        }
    }

    #[test]
    fn the_family_reaches_the_presburger_solver() {
        use shapex_core::engine::ContainmentEngine;
        let (h, k) = disjunct_choice_pair(3);
        let engine = ContainmentEngine::with_options(shapex_core::engine::EngineOptions::quick());
        let hid = engine.register(&h);
        let kid = engine.register(&k);
        let _ = engine.check_ids(hid, kid);
        let stats = engine.stats();
        assert!(
            stats.solver_calls > 0,
            "the gadget must exercise the solver path: {stats}"
        );
    }
}
