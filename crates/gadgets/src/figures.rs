//! The worked examples of the paper as ready-made schemas and graphs.

use shapex_graph::{parse_graph, Graph};
use shapex_shex::{parse_schema, Schema};

/// The bug-tracker schema of Figure 1.
pub fn bug_tracker_schema() -> Schema {
    parse_schema(
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("the Figure 1 schema parses")
}

/// The refactored schema from the introduction: `User` split into `User1`
/// (without email) and `User2` (with email), `Bug` split accordingly. The
/// language is the same as [`bug_tracker_schema`] but the schema is no longer
/// deterministic.
pub fn bug_tracker_split_schema() -> Schema {
    parse_schema(
        "Bug1 -> descr::Literal, reportedBy::User1, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
         Bug2 -> descr::Literal, reportedBy::User2, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
         User1 -> name::Literal\n\
         User2 -> name::Literal, email::Literal\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("the split schema parses")
}

/// The bug-report RDF graph of Figure 1 (literal values modelled as leaf
/// nodes).
pub fn bug_tracker_graph() -> Graph {
    parse_graph(
        "bug1 -descr-> lit_boom\n\
         bug1 -reportedBy-> user1\n\
         bug1 -related-> bug2\n\
         bug2 -descr-> lit_kaboom\n\
         bug2 -reportedBy-> user2\n\
         bug2 -reproducedBy-> emp1\n\
         bug2 -related-> bug1\n\
         bug2 -related-> bug3\n\
         bug3 -descr-> lit_kabang\n\
         bug3 -reportedBy-> user2\n\
         bug3 -related-> bug4\n\
         bug4 -descr-> lit_bang\n\
         bug4 -reportedBy-> user1\n\
         user1 -name-> lit_john\n\
         user2 -name-> lit_mary\n\
         user2 -email-> lit_mh\n\
         emp1 -name-> lit_steve\n\
         emp1 -email-> lit_stv\n",
    )
    .expect("the Figure 1 graph parses")
}

/// The schema `S₀` of Figure 2.
pub fn s0_schema() -> Schema {
    parse_schema("t0 -> a::t1\nt1 -> b::t2, c::t3\nt2 -> b::t2?, c::t3\nt3 -> EMPTY\n")
        .expect("the Figure 2 schema parses")
}

/// The simple graph `G₀` of Figure 2 (the `b`-edge loops on `n1`).
pub fn g0_graph() -> Graph {
    parse_graph("n0 -a-> n1\nn1 -b-> n1\nn1 -c-> n2\n").expect("the Figure 2 graph parses")
}

/// The shape graph `H₀` of Figure 3 (the shape graph of [`s0_schema`]).
pub fn h0_shape_graph() -> Graph {
    s0_schema().to_shape_graph().expect("S0 is RBE0")
}

/// Figure 4, left: the shape graph `G` with `a*` and `b*` edges.
pub fn fig4_g_schema() -> Schema {
    parse_schema("G -> a::Leaf*, b::Leaf*\nLeaf -> EMPTY\n").expect("Figure 4 G parses")
}

/// Figure 4, right: the shape graph `H` that enumerates `b*` as
/// "no b | one b | one b and more", so that `L(G) = L(H)` but `G ⋠ H`.
pub fn fig4_h_schema() -> Schema {
    parse_schema(
        "H0 -> a::Leaf*\n\
         H1 -> a::Leaf*, b::Leaf\n\
         H2 -> a::Leaf*, b::Leaf, b::Leaf*\n\
         Leaf -> EMPTY\n",
    )
    .expect("Figure 4 H parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_core::embedding::embeds;
    use shapex_shex::typing::validates;
    use shapex_shex::SchemaClass;

    #[test]
    fn figure_1_instance_validates_against_both_schemas() {
        let graph = bug_tracker_graph();
        assert_eq!(graph.node_count(), 16);
        assert!(validates(&graph, &bug_tracker_schema()));
        assert!(validates(&graph, &bug_tracker_split_schema()));
    }

    #[test]
    fn figure_1_schema_classes() {
        assert_eq!(bug_tracker_schema().classify(), SchemaClass::DetShEx0Minus);
        assert_eq!(bug_tracker_split_schema().classify(), SchemaClass::ShEx0);
    }

    #[test]
    fn figure_2_and_3_artifacts() {
        let g0 = g0_graph();
        let h0 = h0_shape_graph();
        assert!(validates(&g0, &s0_schema()));
        assert!(embeds(&g0, &h0).is_some(), "Figure 3's embedding");
        assert_eq!(h0.node_count(), 4);
    }

    #[test]
    fn figure_4_embedding_is_one_directional() {
        let g = fig4_g_schema().to_shape_graph().unwrap();
        let h = fig4_h_schema().to_shape_graph().unwrap();
        assert!(embeds(&h, &g).is_some());
        assert!(embeds(&g, &h).is_none());
    }
}
