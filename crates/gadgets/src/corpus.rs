//! Corpus-scale workloads: fleets of schema families evolving under seeded
//! deltas, for throughput benchmarking of the containment service.
//!
//! A single gadget measures one decision; a *corpus* measures a deployment.
//! [`Corpus::generate`] builds `families` independent base schemas (alternating
//! deterministic and non-deterministic `ShEx₀`, so the mix spans the embedding
//! fast path and the counter-example search) and evolves each through
//! `revisions - 1` seeded deltas ([`evolve`]): one type's definition drifts per
//! revision — intervals widen or narrow, mandatory atoms become optional —
//! exactly the shape of schema evolution the containment service is asked to
//! audit. [`Corpus::evolution_pairs`] lists the natural containment workload
//! over the corpus: both directions of every adjacent revision pair plus the
//! first-to-last drift check per family.
//!
//! Everything is keyed by a `u64` seed, so two corpora generated from the same
//! [`CorpusOptions`] are identical schema for schema — benchmark runs are
//! reproducible, and clients hammering the same corpus produce the duplicate
//! traffic the engine's single-flight coalescing exists to absorb.

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_rbe::{interval::Basic, Interval, Rbe};
use shapex_shex::{Atom, Schema, TypeId};

use crate::generate::SchemaGen;

/// Parameters for [`Corpus::generate`].
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Number of independent schema families (base schemas).
    pub families: usize,
    /// Revisions per family, including the base (min 1).
    pub revisions: usize,
    /// Types per base schema.
    pub types: usize,
    /// Distinct predicate labels per base schema.
    pub labels: usize,
    /// Seed for every random choice; same options ⇒ identical corpus.
    pub seed: u64,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            families: 4,
            revisions: 8,
            types: 6,
            labels: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated schema corpus: `families` evolution chains of schemas.
///
/// Schemas are globally indexed family by family, revision by revision —
/// the order [`Corpus::schemas`] yields and [`Corpus::evolution_pairs`]
/// refers to.
#[derive(Debug, Clone)]
pub struct Corpus {
    families: Vec<Vec<Schema>>,
}

impl Corpus {
    /// Generate the corpus described by `options`.
    pub fn generate(options: &CorpusOptions) -> Corpus {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let families = (0..options.families.max(1))
            .map(|family| {
                let generator = SchemaGen::new(options.types.max(2), options.labels.max(1));
                // Alternate deterministic and non-deterministic bases so the
                // corpus exercises both the embedding fast path and the
                // budgeted search.
                let mut chain = vec![generator.shex0(&mut rng, family % 2 == 0)];
                for _ in 1..options.revisions.max(1) {
                    let next = evolve(&mut rng, chain.last().expect("chain starts non-empty"));
                    chain.push(next);
                }
                chain
            })
            .collect();
        Corpus { families }
    }

    /// The evolution chains, one per family.
    pub fn families(&self) -> &[Vec<Schema>] {
        &self.families
    }

    /// Every schema in global index order (family-major, revision-minor).
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.families.iter().flatten()
    }

    /// Total number of schemas across all families.
    pub fn len(&self) -> usize {
        self.families.iter().map(Vec::len).sum()
    }

    /// Whether the corpus holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The corpus's containment workload, as pairs of global schema indices:
    /// for each family, both directions of every adjacent revision pair
    /// ("did this edit narrow or widen the schema?") plus the first-to-last
    /// drift check when the chain has more than two revisions.
    pub fn evolution_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut offset = 0;
        for chain in &self.families {
            for i in 0..chain.len().saturating_sub(1) {
                pairs.push((offset + i, offset + i + 1));
                pairs.push((offset + i + 1, offset + i));
            }
            if chain.len() > 2 {
                pairs.push((offset, offset + chain.len() - 1));
                pairs.push((offset + chain.len() - 1, offset));
            }
            offset += chain.len();
        }
        pairs
    }
}

/// One seeded delta: the next revision of `schema`, with a single type's
/// definition drifted — intervals widen (`? → *`, `+ → *`) or narrow
/// (`* → ?`, `? → 1`), and bare mandatory atoms occasionally become
/// optional. The drift preserves `RBE₀`-ness (repeats are never nested), so
/// an `ShEx₀` corpus stays inside the fragment its procedures expect.
pub fn evolve<R: Rng>(rng: &mut R, schema: &Schema) -> Schema {
    let mut next = Schema::new();
    let types: Vec<TypeId> = schema.types().collect();
    for &t in &types {
        next.add_type(schema.type_name(t).to_owned());
    }
    let victim = types[rng.gen_range(0..types.len())];
    for &t in &types {
        let def = if t == victim {
            drift_expr(rng, schema.def(t))
        } else {
            schema.def(t).clone()
        };
        let nt = next
            .find_type(schema.type_name(t))
            .expect("type added above");
        next.define(nt, def);
    }
    next
}

fn drift_expr<R: Rng>(rng: &mut R, expr: &Rbe<Atom>) -> Rbe<Atom> {
    match expr {
        Rbe::Epsilon => Rbe::Epsilon,
        Rbe::Symbol(atom) => {
            if rng.gen_bool(0.2) {
                // A mandatory atom becomes optional: the classic
                // backwards-compatible widening.
                Rbe::repeat(Rbe::symbol(atom.clone()), Interval::OPT)
            } else {
                Rbe::symbol(atom.clone())
            }
        }
        Rbe::Disj(parts) => Rbe::Disj(parts.iter().map(|p| drift_expr(rng, p)).collect()),
        Rbe::Concat(parts) => Rbe::concat(parts.iter().map(|p| drift_expr(rng, p)).collect()),
        Rbe::Repeat(inner, interval) => {
            let drifted = match interval.basic() {
                Some(Basic::Opt) => {
                    if rng.gen_bool(0.5) {
                        Interval::STAR
                    } else {
                        Interval::ONE
                    }
                }
                Some(Basic::Star) => {
                    if rng.gen_bool(0.5) {
                        Interval::STAR
                    } else {
                        Interval::OPT
                    }
                }
                Some(Basic::Plus) => {
                    if rng.gen_bool(0.5) {
                        Interval::STAR
                    } else {
                        Interval::PLUS
                    }
                }
                _ => *interval,
            };
            // The inner expression is kept as-is (not recursively drifted):
            // wrapping a drifted symbol in another repeat would nest repeats
            // and leave RBE₀.
            if drifted == Interval::ONE {
                (**inner).clone()
            } else {
                Rbe::repeat((**inner).clone(), drifted)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corpora_are_deterministic_per_seed() {
        let options = CorpusOptions::default();
        let a = Corpus::generate(&options);
        let b = Corpus::generate(&options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.schemas().zip(b.schemas()) {
            assert_eq!(format!("{x}"), format!("{y}"), "same seed, same corpus");
        }
        let other = Corpus::generate(&CorpusOptions {
            seed: options.seed + 1,
            ..options
        });
        let differs = a
            .schemas()
            .zip(other.schemas())
            .any(|(x, y)| format!("{x}") != format!("{y}"));
        assert!(differs, "a different seed must change the corpus");
    }

    #[test]
    fn corpus_shape_matches_the_options() {
        let options = CorpusOptions {
            families: 3,
            revisions: 5,
            ..CorpusOptions::default()
        };
        let corpus = Corpus::generate(&options);
        assert_eq!(corpus.families().len(), 3);
        assert_eq!(corpus.len(), 15);
        assert!(!corpus.is_empty());
        // Per family: 2·(revisions-1) adjacent pairs + 2 drift checks.
        let pairs = corpus.evolution_pairs();
        assert_eq!(pairs.len(), 3 * (2 * 4 + 2));
        assert!(pairs.iter().all(|&(h, k)| h < 15 && k < 15 && h != k));
    }

    #[test]
    fn evolution_stays_inside_rbe0() {
        let corpus = Corpus::generate(&CorpusOptions {
            families: 4,
            revisions: 10,
            ..CorpusOptions::default()
        });
        for schema in corpus.schemas() {
            assert!(schema.is_rbe0(), "drift must preserve RBE₀:\n{schema}");
        }
    }

    #[test]
    fn deltas_drift_exactly_one_type() {
        let mut rng = StdRng::seed_from_u64(42);
        let base = SchemaGen::new(6, 4).shex0(&mut rng, false);
        let next = evolve(&mut rng, &base);
        let changed = base
            .types()
            .filter(|&t| {
                let nt = next.find_type(base.type_name(t)).expect("same type names");
                format!("{:?}", base.def(t)) != format!("{:?}", next.def(nt))
            })
            .count();
        assert!(changed <= 1, "one victim type per delta, saw {changed}");
    }
}
