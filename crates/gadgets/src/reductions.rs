//! The lower-bound reductions of the paper, packaged as workload generators.
//!
//! * [`sat_embedding_gadget`] — Theorem 3.5: a CNF formula `ϕ` becomes a pair
//!   of graphs with arbitrary intervals such that `H ≼ K` iff `ϕ` is
//!   satisfiable (NP-hardness of embedding with arbitrary intervals).
//! * [`dnf_tautology_gadget`] — Theorem 4.5 / Figure 6: a DNF formula `ϕ`
//!   becomes a pair of deterministic `DetShEx₀` schemas such that
//!   `L(H) ⊆ L(K)` iff `ϕ` is a tautology (coNP-hardness of containment for
//!   `DetShEx₀`).
//! * [`exponential_family`] — Lemma 5.1: a family of `ShEx₀` schema pairs
//!   `(H_n, K_n)` with `H_n ⊄ K_n` whose smallest counter-example is a full
//!   binary tree of depth `n` with all leaves labelled by distinct subsets of
//!   `{a₁, …, a_n}` — exponentially large in `n`.

use std::fmt;

use shapex_graph::Graph;
use shapex_rbe::{Interval, Rbe};
use shapex_shex::{Atom, Schema};

// ---------------------------------------------------------------------------
// Propositional formulas
// ---------------------------------------------------------------------------

/// A CNF formula: clauses are disjunctions of literals; literal `+i` is the
/// variable `xᵢ` (1-based) and `-i` its negation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of variables (named `x1 … xn`).
    pub num_vars: usize,
    /// Clauses as lists of literals.
    pub clauses: Vec<Vec<i32>>,
}

/// A DNF formula: terms are conjunctions of literals, encoded like
/// [`CnfFormula`] literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfFormula {
    /// Number of variables (named `x1 … xn`).
    pub num_vars: usize,
    /// Terms as lists of literals.
    pub terms: Vec<Vec<i32>>,
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clauses: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.iter().map(|l| literal_name(*l)).collect();
                format!("({})", lits.join(" ∨ "))
            })
            .collect();
        write!(f, "{}", clauses.join(" ∧ "))
    }
}

impl fmt::Display for DnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self
            .terms
            .iter()
            .map(|t| {
                let lits: Vec<String> = t.iter().map(|l| literal_name(*l)).collect();
                format!("({})", lits.join(" ∧ "))
            })
            .collect();
        write!(f, "{}", terms.join(" ∨ "))
    }
}

fn literal_name(l: i32) -> String {
    if l > 0 {
        format!("x{l}")
    } else {
        format!("¬x{}", -l)
    }
}

/// Brute-force satisfiability of a CNF formula (test oracle; exponential).
pub fn cnf_satisfiable(formula: &CnfFormula) -> bool {
    assert!(formula.num_vars <= 24, "oracle limited to 24 variables");
    for assignment in 0u64..(1u64 << formula.num_vars) {
        if cnf_holds(formula, assignment) {
            return true;
        }
    }
    formula.clauses.is_empty()
}

/// Brute-force tautology of a DNF formula (test oracle; exponential).
pub fn dnf_is_tautology(formula: &DnfFormula) -> bool {
    assert!(formula.num_vars <= 24, "oracle limited to 24 variables");
    for assignment in 0u64..(1u64 << formula.num_vars) {
        let satisfied = formula
            .terms
            .iter()
            .any(|term| term.iter().all(|&lit| literal_true(lit, assignment)));
        if !satisfied {
            return false;
        }
    }
    true
}

fn cnf_holds(formula: &CnfFormula, assignment: u64) -> bool {
    formula
        .clauses
        .iter()
        .all(|clause| clause.iter().any(|&lit| literal_true(lit, assignment)))
}

fn literal_true(lit: i32, assignment: u64) -> bool {
    let var = lit.unsigned_abs() as usize;
    let value = assignment & (1 << (var - 1)) != 0;
    if lit > 0 {
        value
    } else {
        !value
    }
}

// ---------------------------------------------------------------------------
// Theorem 3.5: SAT into embedding with arbitrary intervals
// ---------------------------------------------------------------------------

/// Normalize a CNF formula so that every variable occurs the same number of
/// times and has at least one positive and one negative occurrence, as
/// assumed w.l.o.g. by the proof of Theorem 3.5. Tautological clauses
/// `(x ∨ ¬x)` and duplicated literals (both satisfiability-preserving) are
/// used as padding.
pub fn normalize_cnf(formula: &CnfFormula) -> CnfFormula {
    let mut clauses = formula.clauses.clone();
    // Ensure both polarities of every variable occur.
    for v in 1..=formula.num_vars as i32 {
        let pos = clauses.iter().flatten().any(|&l| l == v);
        let neg = clauses.iter().flatten().any(|&l| l == -v);
        if !pos || !neg {
            clauses.push(vec![v, -v]);
        }
    }
    // Equalize occurrence counts by duplicating literals inside clauses.
    let count = |clauses: &Vec<Vec<i32>>, v: i32| {
        clauses.iter().flatten().filter(|&&l| l.abs() == v).count()
    };
    let k = (1..=formula.num_vars as i32)
        .map(|v| count(&clauses, v))
        .max()
        .unwrap_or(0);
    for v in 1..=formula.num_vars as i32 {
        let mut deficit = k - count(&clauses, v);
        while deficit > 0 {
            // Duplicate an existing literal of v in the clause that holds it.
            let (ci, lit) = clauses
                .iter()
                .enumerate()
                .find_map(|(ci, c)| c.iter().find(|&&l| l.abs() == v).map(|&l| (ci, l)))
                .expect("both polarities exist after padding");
            clauses[ci].push(lit);
            deficit -= 1;
        }
    }
    CnfFormula {
        num_vars: formula.num_vars,
        clauses,
    }
}

/// The Theorem 3.5 gadget: two graphs with arbitrary occurrence intervals
/// such that the first embeds in the second iff the CNF formula is
/// satisfiable.
///
/// Deviation from the paper: the proof sketch labels the literal nodes with
/// per-occurrence names `xᵢ,ⱼ`. Following that labelling literally, a node
/// `xᵢ,ⱼ` whose `j`-th occurrence is negative has no compatible clause node,
/// which breaks the intended witness. We use per-polarity labels
/// (`pos_xi` / `neg_xi`) instead, which keeps the forcing argument intact:
/// the `[k;k]` sink of `Xᵢ` is filled either by the `wᵢ` node alone (variable
/// true) or by all `k` positive-literal nodes (variable false), and the `+`
/// edges to clause nodes then require every clause to absorb at least one
/// literal node consistent with the valuation. The equivalence is checked
/// against a brute-force SAT oracle in the tests.
pub fn sat_embedding_gadget(formula: &CnfFormula) -> (Graph, Graph) {
    let formula = normalize_cnf(formula);
    let n = formula.num_vars;
    // Occurrences per variable after normalization (identical for all).
    let k = formula
        .clauses
        .iter()
        .flatten()
        .filter(|l| l.abs() == 1)
        .count() as u64;

    // --- Graph H ---
    let mut h = Graph::new();
    let r1 = h.node("r1");
    let o_h = h.node("o");
    for i in 1..=n {
        let w = h.node(&format!("w{i}"));
        h.add_edge_with(r1, "a", Interval::exactly(k), w);
        h.add_edge(w, format!("v{i}").as_str(), o_h);
        for j in 1..=k as usize {
            let pos = h.node(&format!("pos{i}_{j}"));
            h.add_edge(r1, "a", pos);
            h.add_edge(pos, format!("pos_x{i}").as_str(), o_h);
            let neg = h.node(&format!("neg{i}_{j}"));
            h.add_edge(r1, "a", neg);
            h.add_edge(neg, format!("neg_x{i}").as_str(), o_h);
        }
    }

    // --- Graph K ---
    let mut kg = Graph::new();
    let r2 = kg.node("r2");
    let o_k = kg.node("o");
    for i in 1..=n {
        let xi = kg.node(&format!("X{i}"));
        kg.add_edge_with(r2, "a", Interval::exactly(k), xi);
        kg.add_edge_with(xi, format!("v{i}").as_str(), Interval::OPT, o_k);
        kg.add_edge_with(xi, format!("pos_x{i}").as_str(), Interval::OPT, o_k);
        let nxi = kg.node(&format!("NX{i}"));
        kg.add_edge_with(r2, "a", Interval::exactly(k), nxi);
        kg.add_edge_with(nxi, format!("v{i}").as_str(), Interval::OPT, o_k);
        kg.add_edge_with(nxi, format!("neg_x{i}").as_str(), Interval::OPT, o_k);
    }
    // One node per clause, reached from r2 by a `+` edge; its outgoing edges
    // are labelled by the polarised literals of the clause.
    for (ci, clause) in formula.clauses.iter().enumerate() {
        let p = kg.node(&format!("clause{ci}"));
        kg.add_edge_with(r2, "a", Interval::PLUS, p);
        let mut seen = std::collections::BTreeSet::new();
        for &lit in clause {
            let var = lit.unsigned_abs() as usize;
            let label = if lit > 0 {
                format!("pos_x{var}")
            } else {
                format!("neg_x{var}")
            };
            if seen.insert(label.clone()) {
                kg.add_edge_with(p, label.as_str(), Interval::OPT, o_k);
            }
        }
    }
    (h, kg)
}

// ---------------------------------------------------------------------------
// Theorem 4.5 / Figure 6: DNF tautology into DetShEx0 containment
// ---------------------------------------------------------------------------

/// The Theorem 4.5 gadget: two deterministic `DetShEx₀` schemas such that
/// `L(H) ⊆ L(K)` iff the DNF formula is a tautology.
///
/// `H` describes valuations: a root with one `xᵢ` edge per variable leading
/// to a value node that may carry `t` and/or `f` marks. `K` accepts the
/// degenerate valuations (a value node with no mark or both marks) through
/// the types `r0ᵢ`/`r2ᵢ`, and the valuations satisfying some term of the
/// formula through one type per term.
pub fn dnf_tautology_gadget(formula: &DnfFormula) -> (Schema, Schema) {
    let n = formula.num_vars;

    // --- Schema H ---
    let mut h = Schema::new();
    let r = h.add_type("r");
    let v = h.add_type("v");
    let o = h.add_type("o");
    let mut root_atoms = Vec::new();
    for i in 1..=n {
        root_atoms.push((format!("x{i}"), v, Interval::ONE));
    }
    define_from_owned(&mut h, r, &root_atoms);
    h.define_rbe0(v, &[("t", o, Interval::OPT), ("f", o, Interval::OPT)]);
    h.define(o, Rbe::Epsilon);

    // --- Schema K ---
    let mut k = Schema::new();
    let o_k = k.add_type("o");
    let vany = k.add_type("vany");
    let v0 = k.add_type("v0");
    let v2 = k.add_type("v2");
    let vt = k.add_type("vt");
    let vf = k.add_type("vf");
    k.define(o_k, Rbe::Epsilon);
    k.define_rbe0(
        vany,
        &[("t", o_k, Interval::OPT), ("f", o_k, Interval::OPT)],
    );
    k.define(v0, Rbe::Epsilon);
    k.define_rbe0(v2, &[("t", o_k, Interval::ONE), ("f", o_k, Interval::ONE)]);
    k.define_rbe0(vt, &[("t", o_k, Interval::ONE)]);
    k.define_rbe0(vf, &[("f", o_k, Interval::ONE)]);
    // Degenerate roots: position i carries no mark (r0) or both marks (r2).
    for i in 1..=n {
        for (suffix, special) in [("0", v0), ("2", v2)] {
            let t = k.add_type(format!("r{suffix}_{i}"));
            let atoms: Vec<(String, shapex_shex::TypeId, Interval)> = (1..=n)
                .map(|j| {
                    let target = if j == i { special } else { vany };
                    (format!("x{j}"), target, Interval::ONE)
                })
                .collect();
            define_from_owned(&mut k, t, &atoms);
        }
    }
    // One root type per DNF term.
    for (ti, term) in formula.terms.iter().enumerate() {
        let t = k.add_type(format!("rd_{ti}"));
        let atoms: Vec<(String, shapex_shex::TypeId, Interval)> = (1..=n)
            .map(|j| {
                let target = if term.contains(&(j as i32)) {
                    vt
                } else if term.contains(&-(j as i32)) {
                    vf
                } else {
                    vany
                };
                (format!("x{j}"), target, Interval::ONE)
            })
            .collect();
        define_from_owned(&mut k, t, &atoms);
    }
    (h, k)
}

fn define_from_owned(
    schema: &mut Schema,
    t: shapex_shex::TypeId,
    atoms: &[(String, shapex_shex::TypeId, Interval)],
) {
    let expr = Rbe::concat(
        atoms
            .iter()
            .map(|(label, target, interval)| {
                let atom = Rbe::symbol(Atom::new(label.as_str(), *target));
                if *interval == Interval::ONE {
                    atom
                } else {
                    Rbe::repeat(atom, *interval)
                }
            })
            .collect(),
    );
    schema.define(t, expr);
}

// ---------------------------------------------------------------------------
// Lemma 5.1: exponentially large minimal counter-examples
// ---------------------------------------------------------------------------

/// The Lemma 5.1 family: a pair of `ShEx₀` schemas `(H, K)` with `H ⊄ K`
/// whose smallest counter-example is a full binary tree of depth `n` with
/// pairwise distinct leaf labellings. The paper's typo in the `s`-rules
/// (`R::t⁽ʲ⁾` where children live at level `j+1`) is corrected here.
pub fn exponential_family(n: usize) -> (Schema, Schema) {
    assert!(n >= 1, "the family is defined for n >= 1");
    let h = exponential_h(n);
    let k = exponential_k(n);
    (h, k)
}

fn level_type(schema: &mut Schema, j: usize) -> shapex_shex::TypeId {
    schema.type_named(&format!("t{j}"))
}

fn exponential_h(n: usize) -> Schema {
    let mut h = Schema::new();
    let to = h.add_type("to");
    h.define(to, Rbe::Epsilon);
    for j in (1..=n).rev() {
        let _ = level_type(&mut h, j);
    }
    let leaf = level_type(&mut h, n + 1);
    // Leaves: every symbol a1..an optional.
    let leaf_atoms: Vec<(String, shapex_shex::TypeId, Interval)> = (1..=n)
        .map(|i| (format!("a{i}"), to, Interval::OPT))
        .collect();
    define_from_owned(&mut h, leaf, &leaf_atoms);
    // Internal levels: one L child and one R child of the next level.
    for j in 1..=n {
        let t = level_type(&mut h, j);
        let child = level_type(&mut h, j + 1);
        define_from_owned(
            &mut h,
            t,
            &[
                ("L".to_owned(), child, Interval::ONE),
                ("R".to_owned(), child, Interval::ONE),
            ],
        );
    }
    h
}

fn exponential_k(n: usize) -> Schema {
    let mut k = Schema::new();
    let to = k.add_type("to");
    k.define(to, Rbe::Epsilon);
    // Levels 2..n+1 as in H (the rule for t1 is deliberately missing).
    let leaf = level_type(&mut k, n + 1);
    let leaf_atoms: Vec<(String, shapex_shex::TypeId, Interval)> = (1..=n)
        .map(|i| (format!("a{i}"), to, Interval::OPT))
        .collect();
    define_from_owned(&mut k, leaf, &leaf_atoms);
    for j in 2..=n {
        let t = level_type(&mut k, j);
        let child = level_type(&mut k, j + 1);
        define_from_owned(
            &mut k,
            t,
            &[
                ("L".to_owned(), child, Interval::ONE),
                ("R".to_owned(), child, Interval::ONE),
            ],
        );
    }

    // s^(j)_{i,M,d}: level-j nodes whose subtree shows that symbol aᵢ is used
    // (M = 1) or missing (M = 0); d records which child the evidence is in.
    // Leaf level first.
    for i in 1..=n {
        for m in 0..=1u8 {
            for d in ["L", "R"] {
                let t = k.type_named(&format!("s{}_{i}_{m}_{d}", n + 1));
                let mut atoms: Vec<(String, shapex_shex::TypeId, Interval)> = Vec::new();
                for sym in 1..=n {
                    if sym == i {
                        if m == 1 {
                            atoms.push((format!("a{sym}"), to, Interval::ONE));
                        }
                        // m == 0: the symbol is absent (interval [0;0] = omit).
                    } else {
                        atoms.push((format!("a{sym}"), to, Interval::OPT));
                    }
                }
                define_from_owned(&mut k, t, &atoms);
            }
        }
    }
    // Propagation levels j = i+1 .. n.
    for i in 1..=n {
        for j in (i + 1..=n).rev() {
            for m in 0..=1u8 {
                let child_l = k.type_named(&format!("s{}_{i}_{m}_L", j + 1));
                let child_r = k.type_named(&format!("s{}_{i}_{m}_R", j + 1));
                let t_next = level_type(&mut k, j + 1);
                let t_l = k.type_named(&format!("s{j}_{i}_{m}_L"));
                define_from_owned(
                    &mut k,
                    t_l,
                    &[
                        ("L".to_owned(), child_l, Interval::OPT),
                        ("L".to_owned(), child_r, Interval::OPT),
                        ("R".to_owned(), t_next, Interval::ONE),
                    ],
                );
                let t_r = k.type_named(&format!("s{j}_{i}_{m}_R"));
                define_from_owned(
                    &mut k,
                    t_r,
                    &[
                        ("L".to_owned(), t_next, Interval::ONE),
                        ("R".to_owned(), child_l, Interval::OPT),
                        ("R".to_owned(), child_r, Interval::OPT),
                    ],
                );
            }
        }
    }
    // p^(j)_{i,d}: a node at level j below which the tree is *invalid* — at
    // level i the left subtree misses aᵢ in some leaf, or the right subtree
    // uses aᵢ in some leaf.
    for i in 1..=n {
        // Level i: the violation is visible directly.
        let s_l0 = k.type_named(&format!("s{}_{i}_0_L", i + 1));
        let s_r0 = k.type_named(&format!("s{}_{i}_0_R", i + 1));
        let s_l1 = k.type_named(&format!("s{}_{i}_1_L", i + 1));
        let s_r1 = k.type_named(&format!("s{}_{i}_1_R", i + 1));
        let t_next = level_type(&mut k, i + 1);
        let p_l = k.type_named(&format!("p{i}_{i}_L"));
        define_from_owned(
            &mut k,
            p_l,
            &[
                ("L".to_owned(), s_l0, Interval::OPT),
                ("L".to_owned(), s_r0, Interval::OPT),
                ("R".to_owned(), t_next, Interval::ONE),
            ],
        );
        let p_r = k.type_named(&format!("p{i}_{i}_R"));
        define_from_owned(
            &mut k,
            p_r,
            &[
                ("L".to_owned(), t_next, Interval::ONE),
                ("R".to_owned(), s_l1, Interval::OPT),
                ("R".to_owned(), s_r1, Interval::OPT),
            ],
        );
        // Levels j < i: propagate the violation upward.
        for j in (1..i).rev() {
            let child_l = k.type_named(&format!("p{}_{i}_L", j + 1));
            let child_r = k.type_named(&format!("p{}_{i}_R", j + 1));
            let t_next = level_type(&mut k, j + 1);
            let p_l = k.type_named(&format!("p{j}_{i}_L"));
            define_from_owned(
                &mut k,
                p_l,
                &[
                    ("L".to_owned(), child_l, Interval::OPT),
                    ("L".to_owned(), child_r, Interval::OPT),
                    ("R".to_owned(), t_next, Interval::ONE),
                ],
            );
            let p_r = k.type_named(&format!("p{j}_{i}_R"));
            define_from_owned(
                &mut k,
                p_r,
                &[
                    ("L".to_owned(), t_next, Interval::ONE),
                    ("R".to_owned(), child_l, Interval::OPT),
                    ("R".to_owned(), child_r, Interval::OPT),
                ],
            );
        }
    }
    k
}

/// The intended minimal counter-example of the Lemma 5.1 family: the full
/// binary tree of depth `n` whose leaf reached by the branch word
/// `d₁ … d_n ∈ {L, R}ⁿ` carries exactly the symbols `{aᵢ | dᵢ = L}` — all
/// leaf labellings are pairwise distinct. Its size is `Θ(2ⁿ·n)`.
pub fn exponential_family_witness(n: usize) -> Graph {
    let mut g = Graph::new();
    let mut counter = 0usize;
    build_witness(&mut g, n, 1, &mut Vec::new(), &mut counter);
    g
}

fn build_witness(
    g: &mut Graph,
    n: usize,
    level: usize,
    path: &mut Vec<bool>, // true = went Left at that level
    counter: &mut usize,
) -> shapex_graph::NodeId {
    *counter += 1;
    let node = g.add_named_node(format!("v{}", *counter));
    if level == n + 1 {
        for (i, went_left) in path.iter().enumerate() {
            if *went_left {
                *counter += 1;
                let leaf = g.add_named_node(format!("v{}", *counter));
                g.add_edge(node, format!("a{}", i + 1).as_str(), leaf);
            }
        }
        return node;
    }
    path.push(true);
    let left = build_witness(g, n, level + 1, path, counter);
    path.pop();
    path.push(false);
    let right = build_witness(g, n, level + 1, path, counter);
    path.pop();
    g.add_edge(node, "L", left);
    g.add_edge(node, "R", right);
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_core::embedding::embeds;
    use shapex_shex::typing::validates;
    use shapex_shex::SchemaClass;

    #[test]
    fn cnf_oracle_basics() {
        let sat = CnfFormula {
            num_vars: 2,
            clauses: vec![vec![1, 2], vec![-1, 2]],
        };
        let unsat = CnfFormula {
            num_vars: 1,
            clauses: vec![vec![1], vec![-1]],
        };
        assert!(cnf_satisfiable(&sat));
        assert!(!cnf_satisfiable(&unsat));
        assert!(sat.to_string().contains("¬x1"));
    }

    #[test]
    fn normalization_preserves_satisfiability_and_balances_counts() {
        let formula = CnfFormula {
            num_vars: 3,
            clauses: vec![vec![1, 2, 3], vec![-1, 2]],
        };
        let normalized = normalize_cnf(&formula);
        assert_eq!(cnf_satisfiable(&formula), cnf_satisfiable(&normalized));
        let count = |v: i32| {
            normalized
                .clauses
                .iter()
                .flatten()
                .filter(|&&l| l.abs() == v)
                .count()
        };
        assert_eq!(count(1), count(2));
        assert_eq!(count(2), count(3));
        for v in 1..=3 {
            assert!(normalized.clauses.iter().flatten().any(|&l| l == v));
            assert!(normalized.clauses.iter().flatten().any(|&l| l == -v));
        }
    }

    #[test]
    fn sat_gadget_agrees_with_the_oracle() {
        let instances = vec![
            CnfFormula {
                num_vars: 2,
                clauses: vec![vec![1, 2], vec![-1, -2]],
            },
            CnfFormula {
                num_vars: 1,
                clauses: vec![vec![1], vec![-1]],
            },
            CnfFormula {
                num_vars: 2,
                clauses: vec![vec![1], vec![-1, 2], vec![-2, 1]],
            },
            CnfFormula {
                num_vars: 3,
                clauses: vec![vec![1, 2], vec![-1, 3], vec![-2, -3], vec![1, 3]],
            },
        ];
        for formula in instances {
            let (h, k) = sat_embedding_gadget(&formula);
            assert_eq!(
                embeds(&h, &k).is_some(),
                cnf_satisfiable(&formula),
                "gadget disagrees with the oracle on {formula}"
            );
        }
    }

    #[test]
    fn dnf_gadget_schemas_are_deterministic() {
        let formula = DnfFormula {
            num_vars: 3,
            terms: vec![vec![1, -2], vec![2, -3]],
        };
        let (h, k) = dnf_tautology_gadget(&formula);
        assert!(h.is_deterministic());
        assert!(k.is_deterministic());
        assert_eq!(h.classify(), SchemaClass::DetShEx0);
        assert_eq!(k.classify(), SchemaClass::DetShEx0);
    }

    #[test]
    fn dnf_gadget_counter_example_iff_not_tautology() {
        // The Figure 6 formula (x1 ∧ ¬x2) ∨ (x2 ∧ ¬x3) is not a tautology:
        // the all-false valuation falsifies it.
        let fig6 = DnfFormula {
            num_vars: 3,
            terms: vec![vec![1, -2], vec![2, -3]],
        };
        assert!(!dnf_is_tautology(&fig6));
        let (h, k) = dnf_tautology_gadget(&fig6);
        // Build the falsifying valuation as a graph and check it separates
        // the schemas.
        let mut g = Graph::new();
        let root = g.node("root");
        for i in 1..=3 {
            let v = g.node(&format!("val{i}"));
            g.add_edge(root, format!("x{i}").as_str(), v);
            let leaf = g.node(&format!("leaf{i}"));
            // x1 false, x2 true, x3 true falsifies both terms.
            let mark = if i == 1 { "f" } else { "t" };
            g.add_edge(v, mark, leaf);
        }
        assert!(validates(&g, &h));
        assert!(!validates(&g, &k));

        // A tautology: x1 ∨ ¬x1.
        let taut = DnfFormula {
            num_vars: 1,
            terms: vec![vec![1], vec![-1]],
        };
        assert!(dnf_is_tautology(&taut));
        let (ht, kt) = dnf_tautology_gadget(&taut);
        // Every H-valid valuation graph is K-valid; check the two valuations.
        for mark in ["t", "f"] {
            let mut g = Graph::new();
            let root = g.node("root");
            let v = g.node("val");
            g.add_edge(root, "x1", v);
            let leaf = g.node("leaf");
            g.add_edge(v, mark, leaf);
            assert!(validates(&g, &ht));
            assert!(validates(&g, &kt), "tautology gadget must accept {mark}");
        }
    }

    #[test]
    fn exponential_family_witness_separates_the_schemas() {
        for n in 1..=2 {
            let (h, k) = exponential_family(n);
            assert!(h.is_rbe0() && k.is_rbe0());
            let witness = exponential_family_witness(n);
            assert!(validates(&witness, &h), "witness ∈ L(H) for n = {n}");
            assert!(!validates(&witness, &k), "witness ∉ L(K) for n = {n}");
        }
    }

    #[test]
    fn exponential_family_witness_size_doubles() {
        let s1 = exponential_family_witness(1).node_count();
        let s2 = exponential_family_witness(2).node_count();
        let s3 = exponential_family_witness(3).node_count();
        assert!(s2 > s1 && s3 > s2);
        // Leaves double with n: 2, 4, 8 internal leaves plus label targets.
        assert!(s3 - s2 > s2 - s1, "super-linear growth");
    }

    #[test]
    fn exponential_family_small_graphs_are_covered_by_k() {
        // A degenerate "tree" where both children are the same node violates
        // the all-distinct-leaves requirement, so it satisfies K as well
        // (it is not a counter-example).
        let (h, k) = exponential_family(1);
        let mut g = Graph::new();
        let root = g.node("root");
        let child = g.node("child");
        let leaf = g.node("leaf");
        g.add_edge(root, "L", child);
        g.add_edge(root, "R", child);
        g.add_edge(child, "a1", leaf);
        assert!(validates(&g, &h));
        assert!(
            validates(&g, &k),
            "a shared-child tree must not be a counter-example"
        );
    }
}
