//! Scenario tests for validation: schema classes, maximal typings, and the
//! interaction of the RBE₀ fast path with the Presburger path.

use shapex_graph::{parse_graph, Graph};
use shapex_rbe::Interval;
use shapex_shex::typing::{maximal_typing, node_satisfies, validates, Typing};
use shapex_shex::{parse_schema, Schema, SchemaClass};

fn typing_of(graph_text: &str, schema_text: &str) -> (Graph, Schema, Typing) {
    let graph = parse_graph(graph_text).expect("graph parses");
    let schema = parse_schema(schema_text).expect("schema parses");
    let typing = maximal_typing(&graph, &schema);
    (graph, schema, typing)
}

#[test]
fn social_feed_schema_classifies_and_validates() {
    let schema_text = "\
Post -> author::Person, body::Literal, tag::Tag*, inReplyTo::Post?
Person -> name::Literal, homepage::Literal?
Tag -> label::Literal
Literal -> EMPTY
";
    let schema = parse_schema(schema_text).unwrap();
    // `inReplyTo::Post?` is *-closed only if every reference to Post is; Post
    // is referenced by inReplyTo? itself, which is not a * reference, so the
    // schema is deterministic but falls outside DetShEx0-.
    assert_eq!(schema.classify(), SchemaClass::DetShEx0);
    assert!(schema.is_deterministic());
    assert!(schema.is_rbe0());

    let good = "\
post1 -author-> alice
post1 -body-> l1
post1 -tag-> t1
t1 -label-> l2
alice -name-> l3
";
    let bad = "\
post1 -author-> alice
post1 -body-> l1
post1 -body-> l1b
alice -name-> l3
";
    assert!(validates(&parse_graph(good).unwrap(), &schema));
    assert!(
        !validates(&parse_graph(bad).unwrap(), &schema),
        "two bodies violate body::Literal with interval 1"
    );
}

#[test]
fn maximal_typing_is_the_greatest_valid_typing() {
    // Mutually recursive types: a ping node points to a pong node and back.
    let (graph, schema, typing) = typing_of(
        "a -ping-> b\nb -pong-> a\n",
        "Ping -> ping::Pong\nPong -> pong::Ping\n",
    );
    let a = graph.find_node("a").unwrap();
    let b = graph.find_node("b").unwrap();
    let ping = schema.find_type("Ping").unwrap();
    let pong = schema.find_type("Pong").unwrap();
    assert!(typing.has_type(a, ping));
    assert!(typing.has_type(b, pong));
    assert!(!typing.has_type(a, pong));
    assert!(!typing.has_type(b, ping));
    assert!(typing.is_total());
    assert_eq!(typing.len(), 2);
}

#[test]
fn cyclic_requirements_can_be_unsatisfiable() {
    // Every node needs an outgoing `next` edge; a finite chain must end, so
    // the last node has no type, but a cycle satisfies the schema.
    let schema = parse_schema("Loop -> next::Loop\n").unwrap();
    let chain = parse_graph("a -next-> b\nb -next-> c\n").unwrap();
    assert!(!validates(&chain, &schema));
    let cycle = parse_graph("a -next-> b\nb -next-> c\nc -next-> a\n").unwrap();
    assert!(validates(&cycle, &schema));
}

#[test]
fn plus_and_star_intervals_in_validation() {
    let schema = parse_schema("Hub -> spoke::Rim+, note::Rim*\nRim -> EMPTY\n").unwrap();
    assert!(
        !validates(&parse_graph("h -note-> r\n").unwrap(), &schema),
        "missing spoke+"
    );
    assert!(validates(&parse_graph("h -spoke-> r\n").unwrap(), &schema));
    assert!(validates(
        &parse_graph("h -spoke-> r1\nh -spoke-> r2\nh -note-> r3\n").unwrap(),
        &schema
    ));
}

#[test]
fn same_label_different_types_needs_both() {
    // The signature's inner disjunction lets each edge pick a different type.
    let schema = parse_schema(
        "Mix -> child::Even, child::Odd\nEven -> mark::L?\nOdd -> tick::L\nL -> EMPTY\n",
    )
    .unwrap();
    let good = parse_graph("m -child-> e\nm -child-> o\no -tick-> l\n").unwrap();
    assert!(validates(&good, &schema));
    // Both children typable only as Even: the Odd atom starves.
    let bad = parse_graph("m -child-> e1\nm -child-> e2\n").unwrap();
    let typing = maximal_typing(&bad, &schema);
    let m = bad.find_node("m").unwrap();
    assert!(typing.types_of(m).is_empty());
}

#[test]
fn node_satisfies_is_consistent_with_maximal_typing() {
    let (graph, schema, typing) = typing_of(
        "bug -descr-> l\nbug -reportedBy-> u\nu -name-> l2\n",
        "Bug -> descr::Literal, reportedBy::User, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Literal -> EMPTY\n",
    );
    for node in graph.nodes() {
        for t in schema.types() {
            assert_eq!(
                typing.has_type(node, t),
                node_satisfies(&graph, node, t, &typing, &schema),
                "mismatch at node {} type {}",
                graph.node_name(node),
                schema.type_name(t)
            );
        }
    }
}

#[test]
fn disjunctive_definitions_choose_exactly_one_branch() {
    let schema =
        parse_schema("Payment -> card::Details | iban::Details\nDetails -> EMPTY\n").unwrap();
    assert_eq!(schema.classify(), SchemaClass::ShEx);
    assert!(validates(&parse_graph("p -card-> d\n").unwrap(), &schema));
    assert!(validates(&parse_graph("p -iban-> d\n").unwrap(), &schema));
    assert!(!validates(
        &parse_graph("p -card-> d1\np -iban-> d2\n").unwrap(),
        &schema
    ));
    assert!(
        !validates(
            &parse_graph("p -card-> d1\np -card-> d2\n").unwrap(),
            &schema
        ),
        "each branch allows exactly one edge"
    );
}

#[test]
fn wide_intervals_and_compressed_graphs() {
    let schema = parse_schema("Box -> item::Thing[2;4]\nThing -> EMPTY\n").unwrap();
    // Simple graphs with 1..5 items.
    for (count, expected) in [(1, false), (2, true), (4, true), (5, false)] {
        let mut text = String::new();
        for i in 0..count {
            text.push_str(&format!("box -item-> thing{i}\n"));
        }
        let graph = parse_graph(&text).unwrap();
        assert_eq!(validates(&graph, &schema), expected, "count {count}");
    }
    // The compressed encoding of the same neighbourhoods.
    for (count, expected) in [(1u64, false), (3, true), (6, false)] {
        let graph = parse_graph(&format!("box -item[{count}]-> thing\n")).unwrap();
        assert_eq!(
            validates(&graph, &schema),
            expected,
            "compressed count {count}"
        );
    }
}

#[test]
fn schema_level_accessors() {
    let schema = parse_schema("A -> p::B, q::C*\nB -> r::C?\nC -> EMPTY\n").unwrap();
    assert_eq!(schema.type_count(), 3);
    assert_eq!(schema.labels().len(), 3);
    let b = schema.find_type("B").unwrap();
    let refs = schema.references(b);
    assert_eq!(refs.len(), 1);
    assert_eq!(refs[0].2, Interval::ONE);
    let c = schema.find_type("C").unwrap();
    assert_eq!(schema.references(c).len(), 2);
    assert!(schema.size() > 6);
}

#[test]
fn empty_graph_and_empty_schema_edge_cases() {
    let schema = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
    let empty = Graph::new();
    assert!(validates(&empty, &schema), "no nodes, nothing to violate");
    // A schema with no types cannot type any node.
    let empty_schema = Schema::new();
    let one_node = parse_graph("only\n").unwrap();
    assert!(!validates(&one_node, &empty_schema));
    assert!(validates(&empty, &empty_schema));
}
