//! The incremental revalidation soundness property: after any sequence of
//! random deltas, an [`IncrementalTyping`] repaired from the dirty sets
//! equals the maximal typing recomputed from scratch — incrementality is an
//! optimisation, never a semantics change.

use proptest::prelude::*;

use shapex_graph::{Graph, GraphDelta};
use shapex_shex::{maximal_typing, parse_schema, IncrementalTyping, Schema};

const NODES: u32 = 8;
const LABELS: u32 = 3;
const TYPES: u32 = 3;

/// A random flat ShEx₀ schema over `TYPES` types and `LABELS` predicates:
/// each definition is a comma list of cardinality-annotated atoms (or
/// `EMPTY`), exercising exact, optional, starred, and plus occurrences.
fn arb_schema() -> impl Strategy<Value = Schema> {
    let atom = (0u32..LABELS, 0u32..TYPES, 0usize..4).prop_map(|(p, t, card)| {
        let card = ["", "?", "*", "+"][card];
        format!("p{p}::T{t}{card}")
    });
    proptest::collection::vec(proptest::collection::vec(atom, 0..3), TYPES as usize).prop_map(
        |defs| {
            let text: String = defs
                .iter()
                .enumerate()
                .map(|(i, atoms)| {
                    let def = if atoms.is_empty() {
                        "EMPTY".to_string()
                    } else {
                        atoms.join(", ")
                    };
                    format!("T{i} -> {def}\n")
                })
                .collect();
            parse_schema(&text).expect("generated schema text parses")
        },
    )
}

/// One random edge-level operation over the bounded node/label universe.
/// Removals may miss (the graph applies them as no-ops).
fn arb_op() -> impl Strategy<Value = (bool, u32, u32, u32)> {
    (0u32..2, 0u32..NODES, 0u32..LABELS, 0u32..NODES).prop_map(|(add, s, p, t)| (add == 0, s, p, t))
}

/// A batch sequence: each inner vector becomes one [`GraphDelta`].
fn arb_batches() -> impl Strategy<Value = Vec<Vec<(bool, u32, u32, u32)>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 1..5), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_apply_equals_scratch_recomputation(
        schema in arb_schema(),
        initial in proptest::collection::vec(arb_op(), 0..10),
        batches in arb_batches(),
    ) {
        // Seed the graph with the initial additions only.
        let mut graph = Graph::new();
        let mut seed = GraphDelta::new();
        for &(_, s, p, t) in &initial {
            seed.add_edge(format!("n{s}"), &format!("p{p}"), format!("n{t}"));
        }
        graph.apply_delta(&seed);
        let mut typing = IncrementalTyping::new(&graph, &schema);
        prop_assert_eq!(typing.typing(), &maximal_typing(&graph, &schema));
        for batch in batches {
            let mut delta = GraphDelta::new();
            for (add, s, p, t) in batch {
                let (s, p, t) = (format!("n{s}"), format!("p{p}"), format!("n{t}"));
                if add {
                    delta.add_edge(s, &p, t);
                } else {
                    delta.remove_edge(s, &p, t);
                }
            }
            let report = graph.apply_delta(&delta);
            typing.apply(&graph, &schema, &report.dirty);
            prop_assert_eq!(
                typing.typing(),
                &maximal_typing(&graph, &schema),
                "incremental repair diverged from the from-scratch typing"
            );
            prop_assert_eq!(typing.is_total(), maximal_typing(&graph, &schema).is_total());
        }
    }

    #[test]
    fn empty_dirty_set_is_a_no_op(schema in arb_schema(), ops in proptest::collection::vec(arb_op(), 0..10)) {
        let mut graph = Graph::new();
        let mut seed = GraphDelta::new();
        for &(_, s, p, t) in &ops {
            seed.add_edge(format!("n{s}"), &format!("p{p}"), format!("n{t}"));
        }
        graph.apply_delta(&seed);
        let mut typing = IncrementalTyping::new(&graph, &schema);
        let before = typing.typing().clone();
        let affected = typing.apply(&graph, &schema, &[]);
        prop_assert_eq!(affected, 0);
        prop_assert_eq!(typing.typing(), &before);
    }
}
