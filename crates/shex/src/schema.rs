//! Shape expression schemas and their subclasses.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

use shapex_graph::{Graph, Label, LabelTable, NodeId, SharedLabelTable};
use shapex_rbe::{Interval, Rbe, Rbe0};

// Thread-safety contract: registered schemas are shared read-only across
// `ContainmentEngine` worker threads (all interior caches are `OnceLock`s,
// all labels content-compared `Arc<str>`s), so `Schema` and its pieces must
// stay `Send + Sync`.
shapex_graph::assert_send_sync!(Schema, Atom, TypeId, SchemaClass, ShapeExpr);

/// A type name identifier, valid for the [`Schema`] that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The position of the type in the schema's type table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A symbol of the composite alphabet `Σ × Γ`: an edge label together with the
/// required type of the edge's target, written `label::type` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate label.
    pub label: Label,
    /// The required type of the target node.
    pub target: TypeId,
}

impl Atom {
    /// Construct an atom `label :: target`.
    pub fn new(label: impl Into<Label>, target: TypeId) -> Atom {
        Atom {
            label: label.into(),
            target,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.label, self.target)
    }
}

/// A shape expression: a regular bag expression over `Σ × Γ`.
pub type ShapeExpr = Rbe<Atom>;

/// A session-level interner over the composite alphabet `Σ × Γ`.
///
/// A containment session registers many schemas whose definitions draw on the
/// same atoms; interning them once in a shared table gives every schema's
/// memo structures compact `u32` [`AtomId`] keys that agree across schemas.
pub type AtomTable = shapex_rbe::SymbolTable<Atom>;

/// Dense id of an atom interned in an [`AtomTable`].
pub type AtomId = shapex_rbe::SymbolId;

#[derive(Debug, Clone)]
struct TypeDef {
    name: String,
    expr: ShapeExpr,
}

/// Lazily computed, structure-derived facts about a schema. Every mutating
/// method resets the whole struct, so a populated cell is always consistent
/// with the current definitions. Cloning a schema carries warm caches along
/// (they describe the same definitions).
#[derive(Debug, Clone, Default)]
struct SchemaCaches {
    class: OnceLock<SchemaClass>,
    shape_graph: OnceLock<Option<Graph>>,
}

/// Classification of a schema into the fragments studied in the paper,
/// ordered from most to least restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchemaClass {
    /// Deterministic, RBE₀ definitions, no `+`, and every `?`-using type is
    /// referenced only through `*`-closed references (Definition 4.1). The
    /// fragment with tractable containment (Corollary 4.4).
    DetShEx0Minus,
    /// Deterministic with RBE₀ definitions (`DetShEx₀`).
    DetShEx0,
    /// RBE₀ definitions (`ShEx₀`, equivalently shape graphs).
    ShEx0,
    /// Arbitrary shape expressions.
    ShEx,
}

impl fmt::Display for SchemaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaClass::DetShEx0Minus => write!(f, "DetShEx0-"),
            SchemaClass::DetShEx0 => write!(f, "DetShEx0"),
            SchemaClass::ShEx0 => write!(f, "ShEx0"),
            SchemaClass::ShEx => write!(f, "ShEx"),
        }
    }
}

/// A shape expression schema `S = (Γ_S, δ_S)`: a finite set of named types,
/// each mapped to a shape expression over `Σ × Γ_S`.
///
/// The schema carries a [`LabelTable`] so every atom built through
/// [`Schema::intern_label`], [`Schema::define_rbe0`], the parser, or
/// [`Schema::from_shape_graph`] shares one allocation per distinct predicate
/// — the labels [`Schema::to_shape_graph`] emits are then interned
/// end-to-end, from the rule text down to the simulation engine.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    types: Vec<TypeDef>,
    by_name: BTreeMap<String, TypeId>,
    labels: LabelTable,
    caches: SchemaCaches,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Iterate over all type identifiers.
    pub fn types(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// Add a new type with definition `ε` (overwrite it later with
    /// [`Schema::define`]).
    ///
    /// # Panics
    /// Panics if the name is already used.
    pub fn add_type(&mut self, name: impl Into<String>) -> TypeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "type `{name}` already exists"
        );
        let id = TypeId(self.types.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.types.push(TypeDef {
            name,
            expr: Rbe::Epsilon,
        });
        self.caches = SchemaCaches::default();
        id
    }

    /// Look up a type by name, creating it (with definition `ε`) if missing.
    pub fn type_named(&mut self, name: &str) -> TypeId {
        match self.by_name.get(name) {
            Some(id) => *id,
            None => self.add_type(name),
        }
    }

    /// Look up an existing type by name.
    pub fn find_type(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The display name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.types[t.index()].name
    }

    /// Set the definition of a type.
    pub fn define(&mut self, t: TypeId, expr: ShapeExpr) {
        self.types[t.index()].expr = expr;
        self.caches = SchemaCaches::default();
    }

    /// The definition `δ_S(t)` of a type.
    pub fn def(&self, t: TypeId) -> &ShapeExpr {
        &self.types[t.index()].expr
    }

    /// Intern a predicate label in the schema's label table, so all atoms of
    /// the schema share one allocation per distinct predicate.
    pub fn intern_label(&mut self, name: &str) -> Label {
        self.labels.intern(name)
    }

    /// Re-intern every atom label of the schema through `table`, adopting the
    /// table's allocation for each distinct predicate (and registering
    /// predicates the table has not seen).
    ///
    /// After the call, atoms of this schema share allocations with every
    /// other schema adopted into the same table — the session-wide label
    /// sharing `shapex_core::engine::ContainmentEngine` performs at
    /// registration. The definitions are unchanged content-wise (labels
    /// compare by content), so the derived-fact caches stay valid.
    pub fn adopt_labels(&mut self, table: &mut LabelTable) {
        self.adopt_labels_with(&mut |label| table.adopt(label));
    }

    /// [`Schema::adopt_labels`] against a concurrent [`SharedLabelTable`]:
    /// the adopting side takes `&self` on the table, so a session can
    /// re-intern schemas through one shared interner from many threads at
    /// once (each schema is still mutated exclusively, via `&mut self`).
    pub fn adopt_labels_shared(&mut self, table: &SharedLabelTable) {
        self.adopt_labels_with(&mut |label| table.adopt(label));
    }

    /// The shared adoption walk, parameterised over the canonicalising
    /// interner.
    fn adopt_labels_with(&mut self, adopt: &mut dyn FnMut(&Label) -> Label) {
        fn walk(
            expr: &mut ShapeExpr,
            adopt: &mut dyn FnMut(&Label) -> Label,
            own: &mut LabelTable,
        ) {
            match expr {
                Rbe::Epsilon => {}
                Rbe::Symbol(atom) => {
                    let canonical = adopt(&atom.label);
                    own.adopt(&canonical);
                    atom.label = canonical;
                }
                Rbe::Disj(parts) | Rbe::Concat(parts) => {
                    for p in parts {
                        walk(p, adopt, own);
                    }
                }
                Rbe::Repeat(inner, _) => walk(inner, adopt, own),
            }
        }
        // The schema's own table re-adopts the canonical allocations so
        // later `intern_label` calls hand them out too.
        let mut own = LabelTable::new();
        for def in &mut self.types {
            walk(&mut def.expr, adopt, &mut own);
        }
        self.labels = own;
    }

    /// Convenience: add a type with an RBE₀ definition given as
    /// `(label, type, interval)` triples.
    pub fn define_rbe0(&mut self, t: TypeId, atoms: &[(&str, TypeId, Interval)]) {
        let mut parts = Vec::with_capacity(atoms.len());
        for (label, target, interval) in atoms {
            let atom = Rbe::symbol(Atom::new(self.labels.intern(label), *target));
            parts.push(if *interval == Interval::ONE {
                atom
            } else {
                Rbe::repeat(atom, *interval)
            });
        }
        self.define(t, Rbe::concat(parts));
    }

    /// The distinct edge labels used by the schema (its alphabet `Σ`).
    pub fn labels(&self) -> Vec<Label> {
        let mut set = BTreeSet::new();
        for def in &self.types {
            for atom in def.expr.alphabet() {
                set.insert(atom.label.clone());
            }
        }
        set.into_iter().collect()
    }

    /// The total size of the schema (sum of the sizes of all definitions),
    /// the measure used in the complexity experiments.
    pub fn size(&self) -> usize {
        self.types.iter().map(|d| d.expr.size()).sum::<usize>() + self.type_count()
    }

    /// Whether every definition is an RBE₀ with basic intervals, i.e. the
    /// schema belongs to `ShEx(RBE0)` (equivalently `ShEx₀`, Prop. 3.2).
    pub fn is_rbe0(&self) -> bool {
        self.types.iter().all(|d| d.expr.is_rbe0())
    }

    /// Whether every definition is single-occurrence (SORBE).
    pub fn is_single_occurrence(&self) -> bool {
        self.types.iter().all(|d| d.expr.is_single_occurrence())
    }

    /// Whether the schema is *deterministic*: no definition uses the same edge
    /// label in more than one atom (Definition 4.1 / `DetShEx`).
    pub fn is_deterministic(&self) -> bool {
        self.types.iter().all(|d| {
            let atoms = d.expr.alphabet();
            let mut labels = BTreeSet::new();
            let mut occurrences = 0usize;
            for atom in &atoms {
                labels.insert(atom.label.clone());
                occurrences += 1;
            }
            // Determinism additionally fails if the same atom occurs twice
            // syntactically (e.g. `a::t || a::t`), which `alphabet()` hides.
            labels.len() == occurrences && d.expr.symbol_occurrences() == atoms.len()
        })
    }

    /// Whether some definition uses the `+` interval on an atom.
    pub fn uses_plus(&self) -> bool {
        fn expr_uses_plus(e: &ShapeExpr) -> bool {
            match e {
                Rbe::Epsilon | Rbe::Symbol(_) => false,
                Rbe::Disj(parts) | Rbe::Concat(parts) => parts.iter().any(expr_uses_plus),
                Rbe::Repeat(inner, i) => *i == Interval::PLUS || expr_uses_plus(inner),
            }
        }
        self.types.iter().any(|d| expr_uses_plus(&d.expr))
    }

    /// The references to each type: `(source type, label, interval)` triples
    /// of atoms whose target is the given type.
    pub fn references(&self, target: TypeId) -> Vec<(TypeId, Label, Interval)> {
        let mut out = Vec::new();
        for s in self.types() {
            if let Some(rbe0) = self.def(s).to_rbe0() {
                for (atom, interval) in rbe0.atoms() {
                    if atom.target == target {
                        out.push((s, atom.label.clone(), *interval));
                    }
                }
            }
        }
        out
    }

    /// The reasons (if any) why the schema is not in `DetShEx₀⁻`
    /// (Definition 4.1). An empty vector means the schema is in the class.
    ///
    /// The conditions are: RBE₀ definitions, determinism, no `+`, and every
    /// type whose definition uses `?` is referenced at least once with all
    /// references `*`-closed. A reference is `*`-closed when its interval is
    /// `*` or all references to its source type are themselves `*`-closed; we
    /// compute this as a least fixed point, so reference chains that never
    /// pass through a `*` edge (including chains from unreferenced root
    /// types) are *not* considered closed.
    pub fn det_shex0_minus_violations(&self) -> Vec<String> {
        let mut reasons = Vec::new();
        if !self.is_rbe0() {
            reasons.push("some definition is not RBE0".to_owned());
            return reasons;
        }
        if !self.is_deterministic() {
            reasons.push("schema is not deterministic".to_owned());
        }
        if self.uses_plus() {
            reasons.push("schema uses the + interval".to_owned());
        }

        // Least fixed point of the *-closed property on references.
        // references[t] = list of (source, interval) for edges into t.
        let refs: Vec<Vec<(TypeId, Interval)>> = self
            .types()
            .map(|t| {
                self.references(t)
                    .into_iter()
                    .map(|(s, _, i)| (s, i))
                    .collect()
            })
            .collect();
        // closed[t index][ref index]
        let mut closed: Vec<Vec<bool>> = refs
            .iter()
            .map(|rs| rs.iter().map(|(_, i)| *i == Interval::STAR).collect())
            .collect();
        let all_refs_closed = |closed: &Vec<Vec<bool>>, t: TypeId| -> bool {
            !closed[t.index()].is_empty() && closed[t.index()].iter().all(|&b| b)
        };
        loop {
            let mut changed = false;
            for t in self.types() {
                for (k, (source, _)) in refs[t.index()].iter().enumerate() {
                    if !closed[t.index()][k] && all_refs_closed(&closed, *source) {
                        closed[t.index()][k] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        for t in self.types() {
            let uses_opt = self
                .def(t)
                .to_rbe0()
                .map(|r| r.atoms().iter().any(|(_, i)| *i == Interval::OPT))
                .unwrap_or(false);
            if !uses_opt {
                continue;
            }
            if refs[t.index()].is_empty() {
                reasons.push(format!(
                    "type {} uses ? but is never referenced",
                    self.type_name(t)
                ));
            } else if !closed[t.index()].iter().all(|&b| b) {
                reasons.push(format!(
                    "type {} uses ? but has a reference that is not *-closed",
                    self.type_name(t)
                ));
            }
        }
        reasons
    }

    /// Whether the schema belongs to `DetShEx₀⁻` (Definition 4.1).
    pub fn is_det_shex0_minus(&self) -> bool {
        self.det_shex0_minus_violations().is_empty()
    }

    /// Classify the schema into the most restrictive fragment it belongs to.
    pub fn classify(&self) -> SchemaClass {
        if !self.is_rbe0() {
            SchemaClass::ShEx
        } else if !self.is_deterministic() {
            SchemaClass::ShEx0
        } else if self.is_det_shex0_minus() {
            SchemaClass::DetShEx0Minus
        } else {
            SchemaClass::DetShEx0
        }
    }

    /// [`Schema::classify`] computed once and cached until the next mutation.
    ///
    /// Classification walks every definition (determinism, `+` usage, the
    /// `*`-closure fixpoint of Definition 4.1), so query-session layers such
    /// as `shapex_core::engine::ContainmentEngine` that dispatch on the class
    /// for every pair should use this accessor instead of re-deriving it.
    pub fn classify_cached(&self) -> SchemaClass {
        *self.caches.class.get_or_init(|| self.classify())
    }

    /// Approximate heap footprint of the schema in bytes: type names,
    /// expression trees, the name index, the label table (one `Arc` handle
    /// plus the string per distinct predicate), and the cached shape graph
    /// if it has been built. Feeds the cache accounting of
    /// `shapex_core::engine::ContainmentEngine`; an estimate, not allocator
    /// truth.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        // Amortised B-tree node overhead per map entry.
        const MAP_ENTRY: usize = 32;
        let mut bytes = self.types.capacity() * size_of::<TypeDef>();
        for def in &self.types {
            bytes += def.name.capacity() + def.expr.approx_heap_bytes();
        }
        bytes += self
            .by_name
            .keys()
            .map(|name| name.capacity() + size_of::<TypeId>() + MAP_ENTRY)
            .sum::<usize>();
        bytes += self
            .labels
            .iter()
            .map(|(name, label)| name.capacity() + label.as_str().len() + MAP_ENTRY)
            .sum::<usize>();
        if let Some(Some(graph)) = self.caches.shape_graph.get() {
            bytes += graph.approx_heap_bytes();
        }
        bytes
    }

    /// [`Schema::to_shape_graph`] computed once and cached until the next
    /// mutation. `None` is cached too: a schema that is not RBE₀ stays that
    /// way until redefined.
    pub fn shape_graph_cached(&self) -> Option<&Graph> {
        self.caches
            .shape_graph
            .get_or_init(|| self.to_shape_graph())
            .as_ref()
    }

    /// Convert a `ShEx(RBE0)` schema to its shape graph (Proposition 3.2):
    /// one node per type (named after it), one interval edge per atom.
    ///
    /// Returns `None` if some definition is not expressible as an RBE₀ (a
    /// disjunction or a repetition of a composite expression).
    pub fn to_shape_graph(&self) -> Option<Graph> {
        let mut graph = Graph::new();
        let nodes: Vec<NodeId> = self
            .types()
            .map(|t| graph.add_named_node(self.type_name(t).to_owned()))
            .collect();
        for t in self.types() {
            let rbe0: Rbe0<Atom> = self.def(t).to_rbe0()?;
            for (atom, interval) in rbe0.atoms() {
                // Atom labels are interned per-schema; the graph re-interns
                // them on construction, keeping one allocation per predicate
                // end-to-end.
                graph.add_edge_with(
                    nodes[t.index()],
                    atom.label.clone(),
                    *interval,
                    nodes[atom.target.index()],
                );
            }
        }
        Some(graph)
    }

    /// Convert a shape graph back into a `ShEx(RBE0)` schema: one type per
    /// node, one atom per edge (the other direction of Proposition 3.2).
    /// The graph's interned labels are adopted into the schema's label
    /// table, so the round-trip allocates nothing per edge.
    pub fn from_shape_graph(graph: &Graph) -> Schema {
        let mut schema = Schema::new();
        for n in graph.nodes() {
            schema.add_type(graph.node_name(n).to_owned());
        }
        for n in graph.nodes() {
            let t = schema
                .find_type(graph.node_name(n))
                .expect("type added above");
            let mut parts: Vec<ShapeExpr> = Vec::with_capacity(graph.out_degree(n));
            for &e in graph.out(n) {
                let target = schema
                    .find_type(graph.node_name(graph.target(e)))
                    .expect("type added above");
                let label = schema.labels.adopt(graph.label(e));
                let atom = Rbe::symbol(Atom::new(label, target));
                parts.push(if graph.occur(e) == Interval::ONE {
                    atom
                } else {
                    Rbe::repeat(atom, graph.occur(e))
                });
            }
            schema.define(t, Rbe::concat(parts));
        }
        schema
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.types() {
            let def = self.def(t);
            let rendered = render_expr(self, def);
            writeln!(f, "{} -> {}", self.type_name(t), rendered)?;
        }
        Ok(())
    }
}

/// Render a shape expression with type names instead of numeric identifiers.
pub(crate) fn render_expr(schema: &Schema, expr: &ShapeExpr) -> String {
    fn go(schema: &Schema, expr: &ShapeExpr, top: bool) -> String {
        match expr {
            Rbe::Epsilon => "EMPTY".to_owned(),
            Rbe::Symbol(atom) => {
                format!("{}::{}", atom.label, schema.type_name(atom.target))
            }
            Rbe::Disj(parts) => {
                let body: Vec<String> = parts.iter().map(|p| go(schema, p, false)).collect();
                let joined = body.join(" | ");
                if top {
                    joined
                } else {
                    format!("({joined})")
                }
            }
            Rbe::Concat(parts) => {
                let body: Vec<String> = parts.iter().map(|p| go(schema, p, false)).collect();
                let joined = body.join(", ");
                if top {
                    joined
                } else {
                    format!("({joined})")
                }
            }
            Rbe::Repeat(inner, interval) => {
                let body = go(schema, inner, false);
                format!("{body}{interval}")
            }
        }
    }
    go(schema, expr, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bug-tracker schema of Figure 1.
    fn bug_tracker() -> Schema {
        let mut s = Schema::new();
        let bug = s.add_type("Bug");
        let user = s.add_type("User");
        let employee = s.add_type("Employee");
        let literal = s.add_type("Literal");
        s.define_rbe0(
            bug,
            &[
                ("descr", literal, Interval::ONE),
                ("reportedBy", user, Interval::ONE),
                ("reproducedBy", employee, Interval::OPT),
                ("related", bug, Interval::STAR),
            ],
        );
        s.define_rbe0(
            user,
            &[
                ("name", literal, Interval::ONE),
                ("email", literal, Interval::OPT),
            ],
        );
        s.define_rbe0(
            employee,
            &[
                ("name", literal, Interval::ONE),
                ("email", literal, Interval::ONE),
            ],
        );
        s.define(literal, Rbe::Epsilon);
        s
    }

    #[test]
    fn construction_and_lookup() {
        let mut s = Schema::new();
        let a = s.add_type("A");
        assert_eq!(s.type_named("A"), a);
        let b = s.type_named("B");
        assert_eq!(s.type_count(), 2);
        assert_eq!(s.find_type("B"), Some(b));
        assert_eq!(s.find_type("C"), None);
        assert_eq!(s.type_name(a), "A");
        assert_eq!(*s.def(b), Rbe::Epsilon);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_type_panics() {
        let mut s = Schema::new();
        s.add_type("A");
        s.add_type("A");
    }

    #[test]
    fn bug_tracker_is_det_shex0_minus() {
        let s = bug_tracker();
        assert!(s.is_rbe0());
        assert!(s.is_deterministic());
        assert!(!s.uses_plus());
        assert_eq!(s.det_shex0_minus_violations(), Vec::<String>::new());
        assert_eq!(s.classify(), SchemaClass::DetShEx0Minus);
        assert_eq!(s.labels().len(), 6);
        assert!(s.size() > 10);
    }

    #[test]
    fn plus_or_unreferenced_opt_breaks_det_minus() {
        // `+` pushes a schema out of DetShEx0-.
        let mut s = Schema::new();
        let a = s.add_type("A");
        let b = s.add_type("B");
        s.define_rbe0(a, &[("p", b, Interval::PLUS)]);
        assert!(s.is_deterministic() && s.is_rbe0());
        assert!(!s.is_det_shex0_minus());
        assert_eq!(s.classify(), SchemaClass::DetShEx0);

        // A `?`-using type referenced only through a 1-edge is not *-closed.
        let mut s2 = Schema::new();
        let root = s2.add_type("Root");
        let opt = s2.add_type("Opt");
        let leaf = s2.add_type("Leaf");
        s2.define_rbe0(root, &[("child", opt, Interval::ONE)]);
        s2.define_rbe0(opt, &[("maybe", leaf, Interval::OPT)]);
        assert!(!s2.is_det_shex0_minus());
        assert_eq!(s2.classify(), SchemaClass::DetShEx0);

        // The same type referenced through `*` is fine.
        let mut s3 = Schema::new();
        let root = s3.add_type("Root");
        let opt = s3.add_type("Opt");
        let leaf = s3.add_type("Leaf");
        s3.define_rbe0(root, &[("child", opt, Interval::STAR)]);
        s3.define_rbe0(opt, &[("maybe", leaf, Interval::OPT)]);
        assert!(s3.is_det_shex0_minus());
        assert_eq!(s3.classify(), SchemaClass::DetShEx0Minus);
    }

    #[test]
    fn indirect_star_closure() {
        // Root -*-> Mid -1-> Opt: the reference Mid->Opt is closed because all
        // references to Mid are *-closed.
        let mut s = Schema::new();
        let root = s.add_type("Root");
        let mid = s.add_type("Mid");
        let opt = s.add_type("Opt");
        let leaf = s.add_type("Leaf");
        s.define_rbe0(root, &[("children", mid, Interval::STAR)]);
        s.define_rbe0(mid, &[("via", opt, Interval::ONE)]);
        s.define_rbe0(opt, &[("maybe", leaf, Interval::OPT)]);
        assert!(
            s.is_det_shex0_minus(),
            "{:?}",
            s.det_shex0_minus_violations()
        );
    }

    #[test]
    fn non_deterministic_and_general_schemas() {
        // Same label twice in one definition: not deterministic.
        let mut s = Schema::new();
        let a = s.add_type("A");
        let b = s.add_type("B");
        let c = s.add_type("C");
        s.define_rbe0(a, &[("p", b, Interval::STAR), ("p", c, Interval::STAR)]);
        assert!(s.is_rbe0());
        assert!(!s.is_deterministic());
        assert_eq!(s.classify(), SchemaClass::ShEx0);

        // Disjunction: full ShEx.
        let mut s2 = Schema::new();
        let a = s2.add_type("A");
        let b = s2.add_type("B");
        s2.define(
            a,
            Rbe::disj(vec![
                Rbe::symbol(Atom::new("p", b)),
                Rbe::symbol(Atom::new("q", b)),
            ]),
        );
        assert!(!s2.is_rbe0());
        assert_eq!(s2.classify(), SchemaClass::ShEx);
    }

    #[test]
    fn shape_graph_roundtrip() {
        let s = bug_tracker();
        let g = s.to_shape_graph().expect("RBE0 schema");
        assert!(g.is_shape_graph());
        assert_eq!(g.node_count(), s.type_count());
        assert_eq!(g.edge_count(), 8);
        let back = Schema::from_shape_graph(&g);
        assert_eq!(back.type_count(), s.type_count());
        assert_eq!(back.classify(), SchemaClass::DetShEx0Minus);
        // The definitions describe the same atoms.
        for t in s.types() {
            let orig = s.def(t).to_rbe0().unwrap();
            let b = back.find_type(s.type_name(t)).unwrap();
            let round = back.def(b).to_rbe0().unwrap();
            assert_eq!(orig.atoms().len(), round.atoms().len());
        }
        // A schema with a disjunction has no shape graph.
        let mut s2 = Schema::new();
        let a = s2.add_type("A");
        s2.define(
            a,
            Rbe::disj(vec![
                Rbe::symbol(Atom::new("p", a)),
                Rbe::symbol(Atom::new("q", a)),
            ]),
        );
        assert!(s2.to_shape_graph().is_none());
    }

    #[test]
    fn labels_are_interned_across_the_schema() {
        let s = bug_tracker();
        // `name` appears in both User and Employee: one allocation.
        let user = s.find_type("User").unwrap();
        let employee = s.find_type("Employee").unwrap();
        let label_of = |t: TypeId, i: usize| s.def(t).to_rbe0().unwrap().atoms()[i].0.label.clone();
        let user_name = label_of(user, 0);
        let employee_name = label_of(employee, 0);
        assert_eq!(user_name, employee_name);
        assert!(user_name.ptr_eq(&employee_name), "interned together");
        // The shape graph re-interns, still one allocation per predicate.
        let g = s.to_shape_graph().unwrap();
        let name_edges: Vec<_> = g
            .edges()
            .filter(|&e| g.label(e).as_str() == "name")
            .collect();
        assert_eq!(name_edges.len(), 2);
        assert!(g.label(name_edges[0]).ptr_eq(g.label(name_edges[1])));
        // And the round-trip back adopts the graph's allocations.
        let back = Schema::from_shape_graph(&g);
        let u2 = back.find_type("User").unwrap();
        let e2 = back.find_type("Employee").unwrap();
        let n1 = back.def(u2).to_rbe0().unwrap().atoms()[0].0.label.clone();
        let n2 = back.def(e2).to_rbe0().unwrap().atoms()[0].0.label.clone();
        assert!(n1.ptr_eq(&n2));
    }

    #[test]
    fn adopt_labels_shared_canonicalises_across_schemas() {
        let table = SharedLabelTable::new();
        let mut a = bug_tracker();
        let mut b = bug_tracker();
        a.adopt_labels_shared(&table);
        b.adopt_labels_shared(&table);
        let name_of = |s: &Schema, ty: &str| {
            let t = s.find_type(ty).unwrap();
            s.def(t).to_rbe0().unwrap().atoms()[0].0.label.clone()
        };
        let from_a = name_of(&a, "User");
        let from_b = name_of(&b, "Employee");
        assert_eq!(from_a.as_str(), "name");
        assert!(
            from_a.ptr_eq(&from_b),
            "both schemas must share the table's allocation"
        );
        // The schema's own interner hands the canonical allocation out too.
        assert!(a.intern_label("name").ptr_eq(&from_a));
        // Content unchanged: derived facts stay valid.
        assert_eq!(a.classify_cached(), SchemaClass::DetShEx0Minus);
    }

    #[test]
    fn cached_accessors_track_mutations() {
        let mut s = bug_tracker();
        assert_eq!(s.classify_cached(), SchemaClass::DetShEx0Minus);
        assert_eq!(s.classify_cached(), s.classify());
        let g = s.shape_graph_cached().expect("RBE0 schema").clone();
        assert_eq!(g.edge_count(), 8);
        // A clone carries the warm cache but stays independently mutable.
        let cloned = s.clone();
        assert_eq!(cloned.classify_cached(), SchemaClass::DetShEx0Minus);
        // Redefining a type invalidates both caches.
        let bug = s.find_type("Bug").unwrap();
        let user = s.find_type("User").unwrap();
        s.define(
            bug,
            Rbe::disj(vec![
                Rbe::symbol(Atom::new("descr", user)),
                Rbe::symbol(Atom::new("summary", user)),
            ]),
        );
        assert_eq!(s.classify_cached(), SchemaClass::ShEx);
        assert!(s.shape_graph_cached().is_none());
        // Adding a type also resets (the type table changed).
        let mut s2 = bug_tracker();
        assert_eq!(s2.shape_graph_cached().unwrap().node_count(), 4);
        s2.add_type("Extra");
        assert_eq!(s2.shape_graph_cached().unwrap().node_count(), 5);
    }

    #[test]
    fn references_and_display() {
        let s = bug_tracker();
        let bug = s.find_type("Bug").unwrap();
        let literal = s.find_type("Literal").unwrap();
        let refs = s.references(bug);
        assert_eq!(refs.len(), 1, "Bug is referenced only by related::Bug*");
        assert_eq!(refs[0].2, Interval::STAR);
        assert!(s.references(literal).len() >= 5);
        let text = s.to_string();
        assert!(text.contains("Bug -> descr::Literal"));
        assert!(text.contains("related::Bug*"));
        assert!(text.contains("Literal -> EMPTY"));
    }
}
