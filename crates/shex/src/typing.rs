//! Semantics of shape expression schemas: typings, node satisfaction, and
//! validation of simple and compressed graphs.
//!
//! A *typing* of a graph `G` w.r.t. a schema `S` assigns to every node a set
//! of types. A typing is valid when every node satisfies the definition of
//! every type assigned to it, i.e. the language of the node's *signature*
//! intersects the language of the type definition. Typings form a
//! semi-lattice under union, so there is a unique maximal valid typing
//! ([`maximal_typing`]); `G` satisfies `S` when every node receives at least
//! one type ([`validates`]).
//!
//! Node satisfaction is decided along two paths matching the paper's
//! complexity results:
//!
//! * RBE₀ definitions reduce to an interval-flow assignment
//!   ([`shapex_rbe::flow`]), polynomial for simple graphs;
//! * arbitrary definitions go through the Presburger translation
//!   (`ψ_E`), which also covers compressed graphs whose edge multiplicities
//!   are binary-encoded (Proposition 6.2, NP).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use shapex_graph::{Graph, Label, NodeId};
use shapex_presburger::formula::{Formula, LinearExpr, VarPool};
use shapex_presburger::solver::{
    Bounds, CancelCheck, SolveResult, Solver, SolverOptions, SolverStats,
};
use shapex_presburger::translate::{max_interval_constant, ParikhVec, PsiBuilder};
use shapex_rbe::{FlowScratch, Interval, Rbe, Rbe0};

use crate::schema::{Atom, Schema, TypeId};

/// Reusable buffers for [`validates_with`] / [`maximal_typing_with`].
///
/// The fixpoint refinement re-checks node satisfaction for every `(node,
/// type)` pair on every sweep; the stateless [`node_satisfies`] entry point
/// allocates an [`EdgeSummary`] vector (with a cloned type set per edge) and
/// fresh flow buffers for each of those checks. A `ValidateScratch` hoists
/// all of it — the interval-flow buffers (a [`FlowScratch`], mirroring the
/// simulation engine's usage in `shapex-rbe`), the expanded source→edge map,
/// and a per-call cache of each type's RBE₀ view — so the per-`(node, type,
/// sweep)` inner loop of the fixpoint allocates nothing. (A call still pays
/// one `Typing` allocation and one RBE₀-view rebuild per type; only the
/// inner loop, which runs orders of magnitude more often, is allocation
/// free.) The containment engine of `shapex-core` threads one scratch
/// through its memoised validate step.
#[derive(Debug, Default)]
pub struct ValidateScratch {
    flow: FlowScratch,
    /// `source index → out-edge position` for multiplicity-expanded sources.
    source_edges: Vec<usize>,
    /// Per-[`TypeId`] RBE₀ views of the schema under validation, rebuilt at
    /// the start of every [`maximal_typing_with`] call (the scratch may be
    /// reused across schemas).
    rbe0s: Vec<Option<Rbe0<Atom>>>,
    /// The types of the node under refinement (snapshot per node per sweep).
    current: Vec<TypeId>,
}

impl ValidateScratch {
    /// A scratch with empty buffers.
    pub fn new() -> ValidateScratch {
        ValidateScratch::default()
    }
}

/// A typing: for every node of the graph, the set of types it satisfies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typing {
    sets: Vec<BTreeSet<TypeId>>,
}

impl Typing {
    fn full(nodes: usize, schema: &Schema) -> Typing {
        let all: BTreeSet<TypeId> = schema.types().collect();
        Typing {
            sets: vec![all; nodes],
        }
    }

    /// The set of types assigned to a node.
    pub fn types_of(&self, node: NodeId) -> &BTreeSet<TypeId> {
        &self.sets[node.index()]
    }

    /// Whether a node has the given type.
    pub fn has_type(&self, node: NodeId, t: TypeId) -> bool {
        self.sets[node.index()].contains(&t)
    }

    /// Whether every node has at least one type (i.e. the graph satisfies the
    /// schema, `dom(Typing) = N_G`).
    pub fn is_total(&self) -> bool {
        self.sets.iter().all(|s| !s.is_empty())
    }

    /// The nodes with no type at all (the witnesses of a validation failure).
    pub fn untyped_nodes(&self) -> Vec<NodeId> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Total number of `(node, type)` pairs in the typing.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the typing is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A retained maximal typing that is revalidated incrementally after graph
/// deltas instead of recomputed from scratch.
///
/// [`maximal_typing`] is a greatest fixpoint: it starts every node at the
/// full candidate set and removes types until stable. After a delta, only
/// part of the graph can change type. A node's types in the fixpoint depend
/// solely on its *out-reachable* subgraph, so the nodes whose types may
/// differ from the retained typing are exactly the **affected region** `R`:
/// the dirty nodes (out-neighbourhood changed, reported by
/// [`Graph::apply_delta`]) plus everything that reaches them — the reverse
/// closure over [`Graph::ins`]. `R` is closed under predecessors, so the
/// refinement worklist never needs to leave it: nodes outside `R` keep their
/// retained sets, which over- *and* under-approximate nothing (their
/// out-reachable subgraph is unchanged).
///
/// [`IncrementalTyping::apply`] therefore (1) re-expands every node of `R`
/// to the full candidate set — an *add* can legitimately give a node types
/// it lost before, so shrinking alone would be unsound — and (2) runs a
/// predecessor-directed worklist seeded with `R`: whenever a node's set
/// shrinks, its in-neighbours are re-enqueued. The result is provably equal
/// to [`maximal_typing`] from scratch (pinned by a proptest over random
/// delta sequences), at `O(|R| neighbourhoods)` instead of `O(graph)` per
/// delta.
#[derive(Debug)]
pub struct IncrementalTyping {
    typing: Typing,
    scratch: ValidateScratch,
    /// Number of schema types the retained typing was computed against; a
    /// mismatch on `apply` forces a full rebuild.
    type_count: usize,
    /// Set when a cancelled [`IncrementalTyping::try_apply`] abandoned the
    /// worklist mid-refinement, leaving the retained typing in an
    /// intermediate (unsound) state; the next call forces a full rebuild.
    poisoned: bool,
    /// Scratch: membership in the affected region `R`.
    affected: Vec<bool>,
    /// Scratch: worklist membership flags.
    queued: Vec<bool>,
    /// Scratch: the worklist itself.
    stack: Vec<NodeId>,
}

impl IncrementalTyping {
    /// Compute the full maximal typing once; subsequent deltas go through
    /// [`IncrementalTyping::apply`].
    ///
    /// # Panics
    /// Panics if the graph uses occurrence intervals other than singletons
    /// (validation is defined on simple and compressed graphs only).
    pub fn new(graph: &Graph, schema: &Schema) -> IncrementalTyping {
        let mut scratch = ValidateScratch::new();
        let typing = maximal_typing_with(graph, schema, &mut scratch);
        IncrementalTyping {
            typing,
            scratch,
            type_count: schema.types().count(),
            poisoned: false,
            affected: Vec::new(),
            queued: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The retained typing, always equal to `maximal_typing(graph, schema)`
    /// for the graph state of the last `new`/`apply`/`rebuild` call.
    pub fn typing(&self) -> &Typing {
        &self.typing
    }

    /// Whether the retained typing is total (the graph validates).
    pub fn is_total(&self) -> bool {
        self.typing.is_total()
    }

    /// Throw the retained typing away and recompute from scratch (the
    /// fallback when the caller lost track of which nodes are dirty).
    pub fn rebuild(&mut self, graph: &Graph, schema: &Schema) {
        self.typing = maximal_typing_with(graph, schema, &mut self.scratch);
        self.type_count = schema.types().count();
        self.poisoned = false;
    }

    /// Revalidate after a delta. `graph` is the post-delta graph and `dirty`
    /// must contain every node whose outbound neighbourhood changed plus
    /// every newly added node — exactly the `dirty` field of
    /// [`shapex_graph::DeltaReport`]. Returns the size of the affected
    /// region that was re-examined (the locality measure: 0 when `dirty` is
    /// empty, `O(dirty + its ancestors)` in general).
    ///
    /// Must be called with the same schema the typing was built against; a
    /// schema of a different shape triggers a full rebuild instead.
    ///
    /// # Panics
    /// Panics (in debug builds) if the graph uses occurrence intervals other
    /// than singletons.
    pub fn apply(&mut self, graph: &Graph, schema: &Schema, dirty: &[NodeId]) -> usize {
        self.try_apply(graph, schema, dirty, None)
            .expect("an uncancelled revalidation cannot be cancelled")
    }

    /// [`IncrementalTyping::apply`] under external cancellation: the worklist
    /// checks `cancel` once per popped node, returning `None` once it fires.
    ///
    /// A cancelled call leaves the retained typing *poisoned* — the worklist
    /// was abandoned mid-refinement, so the retained sets are neither an
    /// over- nor an under-approximation of the fixpoint. The next
    /// `apply`/`try_apply` call detects this and recomputes from scratch
    /// (itself cancellable); until one succeeds, [`IncrementalTyping::typing`]
    /// must not be trusted.
    ///
    /// # Panics
    /// Panics (in debug builds) if the graph uses occurrence intervals other
    /// than singletons.
    pub fn try_apply(
        &mut self,
        graph: &Graph,
        schema: &Schema,
        dirty: &[NodeId],
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<usize> {
        if self.poisoned || self.type_count != schema.types().count() {
            // Full rebuild, itself cancellable: a second cancellation keeps
            // the typing poisoned for the next attempt.
            match try_maximal_typing_with(graph, schema, &mut self.scratch, cancel) {
                Some(typing) => {
                    self.typing = typing;
                    self.type_count = schema.types().count();
                    self.poisoned = false;
                    return Some(graph.node_count());
                }
                None => {
                    self.poisoned = true;
                    return None;
                }
            }
        }
        if dirty.is_empty() && graph.node_count() == self.typing.sets.len() {
            return Some(0);
        }
        debug_assert!(
            graph.edges().all(|e| graph.occur(e).singleton().is_some()),
            "validation requires a simple or compressed graph"
        );
        let nodes = graph.node_count();
        let full: BTreeSet<TypeId> = schema.types().collect();
        // Nodes created since the last call start at the full candidate set;
        // they are expected to be in `dirty`, which re-expands them anyway.
        self.typing.sets.resize(nodes, full.clone());

        // The affected region R: reverse closure of the dirty set. R is
        // closed under predecessors, so the worklist below stays inside it.
        self.affected.clear();
        self.affected.resize(nodes, false);
        self.queued.clear();
        self.queued.resize(nodes, false);
        self.stack.clear();
        for &n in dirty {
            if !self.affected[n.index()] {
                self.affected[n.index()] = true;
                self.stack.push(n);
            }
        }
        let mut region: Vec<NodeId> = Vec::new();
        while let Some(n) = self.stack.pop() {
            region.push(n);
            for &e in graph.ins(n) {
                let pred = graph.source(e);
                if !self.affected[pred.index()] {
                    self.affected[pred.index()] = true;
                    self.stack.push(pred);
                }
            }
        }

        // Re-expand R to the full candidate set (adds can restore types) and
        // seed the worklist with all of it, high ids first — candidate
        // graphs number nodes in preorder, so refining successors before
        // predecessors stabilises trees in one pass.
        region.sort_unstable();
        for &n in &region {
            self.typing.sets[n.index()].clone_from(&full);
            self.queued[n.index()] = true;
        }
        self.stack.extend(region.iter().copied());

        // Rebuild the per-schema RBE₀ views (the scratch may have been used
        // against another schema between calls).
        self.scratch.rbe0s.clear();
        self.scratch
            .rbe0s
            .extend(schema.types().map(|t| schema.def(t).to_rbe0()));

        // Predecessor-directed refinement: when a node's set shrinks, every
        // in-neighbour may lose a type that matched an atom pointing at it.
        while let Some(node) = self.stack.pop() {
            if cancel.is_some_and(|c| c.fired()) {
                self.poisoned = true;
                return None;
            }
            self.queued[node.index()] = false;
            self.scratch.current.clear();
            self.scratch
                .current
                .extend(self.typing.sets[node.index()].iter().copied());
            let mut shrunk = false;
            for i in 0..self.scratch.current.len() {
                let t = self.scratch.current[i];
                match try_node_satisfies_scratch(
                    graph,
                    node,
                    t,
                    &self.typing,
                    schema,
                    &mut self.scratch,
                    cancel,
                ) {
                    None => {
                        self.poisoned = true;
                        return None;
                    }
                    Some(true) => {}
                    Some(false) => {
                        self.typing.sets[node.index()].remove(&t);
                        shrunk = true;
                    }
                }
            }
            if shrunk {
                for &e in graph.ins(node) {
                    let pred = graph.source(e);
                    debug_assert!(self.affected[pred.index()], "R is predecessor-closed");
                    if !self.queued[pred.index()] {
                        self.queued[pred.index()] = true;
                        self.stack.push(pred);
                    }
                }
            }
        }
        Some(region.len())
    }
}

/// Shared, thread-safe accumulator of Presburger solver work.
///
/// Satisfaction checks that fall through to the Presburger encoding report
/// their [`SolverStats`] here instead of dropping them on the floor; the
/// containment engine of `shapex-core` threads one telemetry through every
/// query and surfaces the cumulative counters in its `EngineStats`.
#[derive(Debug, Default)]
pub struct SolverTelemetry {
    /// Cumulative search nodes across every solver call.
    pub search_nodes: AtomicU64,
    /// Cumulative propagation-pruned branches across every solver call.
    pub pruned_branches: AtomicU64,
    /// Number of solver invocations recorded.
    pub solver_calls: AtomicU64,
}

impl SolverTelemetry {
    /// A telemetry with zeroed counters.
    pub fn new() -> SolverTelemetry {
        SolverTelemetry::default()
    }

    /// Fold one query's counters into the running totals.
    pub fn record(&self, stats: SolverStats) {
        self.search_nodes
            .fetch_add(stats.search_nodes, Ordering::Relaxed);
        self.pruned_branches
            .fetch_add(stats.pruned_branches, Ordering::Relaxed);
        self.solver_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// The running totals as a plain [`SolverStats`] value.
    pub fn snapshot(&self) -> SolverStats {
        SolverStats {
            search_nodes: self.search_nodes.load(Ordering::Relaxed),
            pruned_branches: self.pruned_branches.load(Ordering::Relaxed),
        }
    }

    /// Number of solver invocations recorded so far.
    pub fn calls(&self) -> u64 {
        self.solver_calls.load(Ordering::Relaxed)
    }
}

/// One outgoing edge of the node under scrutiny, summarised for satisfaction
/// checking: its label, the candidate types of its target, and its
/// multiplicity (1 for simple graphs, `k` for a compressed `[k;k]` edge).
#[derive(Debug, Clone)]
pub struct EdgeSummary {
    /// The predicate label of the edge.
    pub label: Label,
    /// The types currently assigned to the target node.
    pub target_types: BTreeSet<TypeId>,
    /// The number of parallel copies this edge stands for.
    pub multiplicity: u64,
}

/// Compute the maximal valid typing of a simple or compressed graph with
/// respect to a schema (greatest fixpoint of the refinement operator).
///
/// # Panics
/// Panics if the graph uses occurrence intervals other than singletons
/// (validation is defined on simple and compressed graphs only).
pub fn maximal_typing(graph: &Graph, schema: &Schema) -> Typing {
    maximal_typing_with(graph, schema, &mut ValidateScratch::new())
}

/// [`maximal_typing`] over a caller-provided [`ValidateScratch`], the
/// allocation-free path for hot validation loops.
///
/// # Panics
/// Panics if the graph uses occurrence intervals other than singletons
/// (validation is defined on simple and compressed graphs only).
pub fn maximal_typing_with(
    graph: &Graph,
    schema: &Schema,
    scratch: &mut ValidateScratch,
) -> Typing {
    try_maximal_typing_with(graph, schema, scratch, None)
        .expect("an uncancelled typing cannot be cancelled")
}

/// [`maximal_typing_with`] under external cancellation: the fixpoint checks
/// `cancel` once per node per sweep (and threads it into every Presburger
/// fallback), returning `None` within a bounded checkpoint interval once it
/// fires. A `Some` result is bit-identical to the uncancelled typing.
///
/// # Panics
/// Panics if the graph uses occurrence intervals other than singletons
/// (validation is defined on simple and compressed graphs only).
pub fn try_maximal_typing_with(
    graph: &Graph,
    schema: &Schema,
    scratch: &mut ValidateScratch,
    cancel: Option<CancelCheck<'_>>,
) -> Option<Typing> {
    for e in graph.edges() {
        assert!(
            graph.occur(e).singleton().is_some(),
            "validation requires a simple or compressed graph; edge has interval {}",
            graph.occur(e)
        );
    }
    // The RBE₀ view of every definition, once per call instead of once per
    // (node, type, sweep) satisfaction check.
    scratch.rbe0s.clear();
    scratch
        .rbe0s
        .extend(schema.types().map(|t| schema.def(t).to_rbe0()));
    let mut typing = Typing::full(graph.node_count(), schema);
    loop {
        let mut changed = false;
        // Nodes are refined in reverse id order: the refinement operator is
        // monotone, so chaotic iteration reaches the same greatest fixpoint
        // in any order — but candidate graphs number their nodes in preorder
        // (parents before children), and visiting successors first lets a
        // whole tree stabilise in one sweep instead of one sweep per level.
        for index in (0..graph.node_count()).rev() {
            if cancel.is_some_and(|c| c.fired()) {
                return None;
            }
            let node = NodeId(index as u32);
            scratch.current.clear();
            scratch
                .current
                .extend(typing.sets[node.index()].iter().copied());
            for i in 0..scratch.current.len() {
                let t = scratch.current[i];
                match try_node_satisfies_scratch(graph, node, t, &typing, schema, scratch, cancel) {
                    None => return None,
                    Some(true) => {}
                    Some(false) => {
                        typing.sets[node.index()].remove(&t);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return Some(typing);
        }
    }
}

/// Whether the graph satisfies the schema: every node of the maximal typing
/// carries at least one type.
pub fn validates(graph: &Graph, schema: &Schema) -> bool {
    maximal_typing(graph, schema).is_total()
}

/// [`validates`] over a caller-provided [`ValidateScratch`].
pub fn validates_with(graph: &Graph, schema: &Schema, scratch: &mut ValidateScratch) -> bool {
    maximal_typing_with(graph, schema, scratch).is_total()
}

/// Largest total edge multiplicity the interval-flow fast path expands into
/// unit sources; anything bigger goes to the Presburger encoding.
const FLOW_EXPANSION_LIMIT: u64 = 4096;

/// The one copy of the RBE₀ fast path shared by [`neighbourhood_satisfies`]
/// and the scratch-backed fixpoint: expand each edge's multiplicity into
/// unit sources, route them into the atoms' intervals, and decide
/// feasibility ([`FlowScratch::solve`] dispatches to the polynomial solver
/// when every interval is basic, exactly like the historical
/// `basic_assignment`/`general_assignment` split — the sources are all `1`).
/// Returns `None` when the expansion exceeds [`FLOW_EXPANSION_LIMIT`]
/// (callers fall back to Presburger). `compatible` is `(edge index, atom
/// index)` — the only thing the two callers genuinely differ in.
fn rbe0_flow_satisfies(
    flow: &mut FlowScratch,
    source_edges: &mut Vec<usize>,
    multiplicities: &mut dyn Iterator<Item = u64>,
    atoms: &[(Atom, Interval)],
    compatible: &dyn Fn(usize, usize) -> bool,
) -> Option<bool> {
    flow.clear();
    source_edges.clear();
    let mut total = 0u64;
    for (i, mult) in multiplicities.enumerate() {
        total += mult;
        if total > FLOW_EXPANSION_LIMIT {
            return None;
        }
        for _ in 0..mult {
            flow.sources.push(Interval::ONE);
            source_edges.push(i);
        }
    }
    flow.sinks
        .extend(atoms.iter().map(|&(_, interval)| interval));
    let source_edges = &*source_edges;
    Some(flow.solve(|v, u| compatible(source_edges[v], u)))
}

/// The scratch-backed satisfaction check behind [`maximal_typing_with`]:
/// semantically identical to [`node_satisfies`], but the edge summaries on
/// the fast path are never materialised — the flow instance borrows the
/// typing directly — and the RBE₀ view comes from the scratch's per-call
/// cache. The Presburger fallback runs under external cancellation: `None`
/// means `cancel` fired mid-solve; `Some` verdicts are identical to the
/// uncancelled path.
#[allow(clippy::too_many_arguments)]
fn try_node_satisfies_scratch(
    graph: &Graph,
    node: NodeId,
    t: TypeId,
    typing: &Typing,
    schema: &Schema,
    scratch: &mut ValidateScratch,
    cancel: Option<CancelCheck<'_>>,
) -> Option<bool> {
    let out = graph.out(node);
    // An edge whose target has no candidate type can never be matched (the
    // signature's inner disjunction is empty, so the language is empty).
    if out
        .iter()
        .any(|&e| typing.types_of(graph.target(e)).is_empty())
    {
        return Some(false);
    }
    if let Some(rbe0) = scratch.rbe0s[t.index()].as_ref() {
        let atoms = rbe0.atoms();
        if let Some(ok) = rbe0_flow_satisfies(
            &mut scratch.flow,
            &mut scratch.source_edges,
            &mut out.iter().map(|&e| graph.occur(e).singleton().unwrap_or(1)),
            atoms,
            &|edge, u| {
                let e = out[edge];
                let (atom, _) = &atoms[u];
                atom.label == *graph.label(e)
                    && typing.types_of(graph.target(e)).contains(&atom.target)
            },
        ) {
            return Some(ok);
        }
    }
    // General path (rare): fall back to the materialised edge summaries and
    // the Presburger encoding.
    let edges: Vec<EdgeSummary> = out
        .iter()
        .map(|&e| EdgeSummary {
            label: graph.label(e).clone(),
            target_types: typing.types_of(graph.target(e)).clone(),
            multiplicity: graph.occur(e).singleton().unwrap_or(1),
        })
        .collect();
    try_neighbourhood_satisfies_with(
        &edges,
        schema.def(t),
        SolverOptions::default(),
        None,
        cancel,
    )
}

/// Whether `node` satisfies the definition of `t` given the candidate types
/// of its successors recorded in `typing`.
pub fn node_satisfies(
    graph: &Graph,
    node: NodeId,
    t: TypeId,
    typing: &Typing,
    schema: &Schema,
) -> bool {
    let edges: Vec<EdgeSummary> = graph
        .out(node)
        .iter()
        .map(|&e| EdgeSummary {
            label: graph.label(e).clone(),
            target_types: typing.types_of(graph.target(e)).clone(),
            multiplicity: graph.occur(e).singleton().unwrap_or(1),
        })
        .collect();
    neighbourhood_satisfies(&edges, schema.def(t))
}

/// Decide whether an outbound neighbourhood can be assigned types so that the
/// resulting bag over `Σ × Γ` belongs to the language of `def`
/// (`L(sign) ∩ L(def) ≠ ∅`).
///
/// This is the workhorse shared by validation and by the containment
/// procedures of `shapex-core` (where the "candidate types" come from node
/// kinds rather than a typing).
pub fn neighbourhood_satisfies(edges: &[EdgeSummary], def: &Rbe<Atom>) -> bool {
    neighbourhood_satisfies_with(edges, def, SolverOptions::default(), None)
}

/// [`neighbourhood_satisfies`] with explicit [`SolverOptions`] for the
/// Presburger fallback and an optional [`SolverTelemetry`] that accumulates
/// the solver counters (the RBE₀ flow fast path records nothing — it never
/// enters the solver).
pub fn neighbourhood_satisfies_with(
    edges: &[EdgeSummary],
    def: &Rbe<Atom>,
    options: SolverOptions,
    telemetry: Option<&SolverTelemetry>,
) -> bool {
    try_neighbourhood_satisfies_with(edges, def, options, telemetry, None)
        .expect("an uncancelled satisfaction check cannot be cancelled")
}

/// [`neighbourhood_satisfies_with`] under external cancellation: the
/// Presburger fallback polls `cancel` at its search checkpoints and the call
/// returns `None` once it fires (the RBE₀ flow fast path is polynomial and
/// runs to completion regardless). `Some` verdicts are identical to the
/// uncancelled path.
pub fn try_neighbourhood_satisfies_with(
    edges: &[EdgeSummary],
    def: &Rbe<Atom>,
    options: SolverOptions,
    telemetry: Option<&SolverTelemetry>,
    cancel: Option<CancelCheck<'_>>,
) -> Option<bool> {
    // An edge whose target has no candidate type can never be matched: the
    // signature's inner disjunction is empty, so the whole language is empty.
    if edges.iter().any(|e| e.target_types.is_empty()) {
        return Some(false);
    }
    if let Some(rbe0) = def.to_rbe0() {
        // Fast path: assignment of edge copies to RBE0 atoms via interval
        // flow, shared with the scratch-backed fixpoint.
        let atoms = rbe0.atoms();
        let mut flow = FlowScratch::new();
        let mut source_edges = Vec::new();
        if let Some(ok) = rbe0_flow_satisfies(
            &mut flow,
            &mut source_edges,
            &mut edges.iter().map(|e| e.multiplicity),
            atoms,
            &|i, u| {
                let edge = &edges[i];
                let (atom, _) = &atoms[u];
                atom.label == edge.label && edge.target_types.contains(&atom.target)
            },
        ) {
            return Some(ok);
        }
    }
    // General path: Presburger encoding of the partition of edge copies into
    // types, fed to ψ_def (the formulas φ_t of Section 6 with x̄ fixed).
    satisfies_via_presburger(edges, def, options, telemetry, cancel)
}

fn satisfies_via_presburger(
    edges: &[EdgeSummary],
    def: &Rbe<Atom>,
    options: SolverOptions,
    telemetry: Option<&SolverTelemetry>,
    cancel: Option<CancelCheck<'_>>,
) -> Option<bool> {
    let mut pool = VarPool::new();
    let total: u64 = edges.iter().map(|e| e.multiplicity).sum();
    let bound = total + max_interval_constant(def) + 1;

    // Partition variables y_{e,t}: how many copies of edge e are used with
    // target type t.
    let mut conjuncts = Vec::new();
    let mut contributions: ParikhVec<Atom> = ParikhVec::new();
    for (i, edge) in edges.iter().enumerate() {
        let mut sum = LinearExpr::constant(0);
        for t in &edge.target_types {
            let y = pool.fresh_bounded(format!("y{}_{}", i, t.0), edge.multiplicity);
            sum = sum.add(&LinearExpr::var(y));
            let atom = Atom {
                label: edge.label.clone(),
                target: *t,
            };
            let entry = contributions
                .entry(atom)
                .or_insert_with(|| LinearExpr::constant(0));
            *entry = entry.clone().add(&LinearExpr::var(y));
        }
        conjuncts.push(Formula::eq(
            sum,
            LinearExpr::constant(edge.multiplicity as i64),
        ));
    }
    // Atoms of the definition that no edge can produce still need entries so
    // that ψ forces them to zero — they already are zero constants.
    for atom in def.alphabet() {
        contributions
            .entry(atom)
            .or_insert_with(|| LinearExpr::constant(0));
    }
    let psi = PsiBuilder::new(&mut pool, bound).psi(def, &contributions, &LinearExpr::constant(1));
    conjuncts.push(psi);
    let formula = Formula::and(conjuncts);
    let solver = Solver::new(Bounds::uniform(bound)).with_options(options);
    let (result, stats) = solver.solve_with_stats_cancellable(&formula, &pool, cancel);
    if let Some(telemetry) = telemetry {
        telemetry.record(stats);
    }
    match result {
        SolveResult::Sat(_) => Some(true),
        SolveResult::Unsat => Some(false),
        // `Unknown` is either a fired cancellation (surface as `None`) or a
        // genuinely exhausted node budget — the latter keeps its historical
        // panic so callers never confuse the two.
        SolveResult::Unknown if cancel.is_some_and(|c| c.flagged()) => None,
        SolveResult::Unknown => panic!("Presburger budget exhausted during validation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;
    use shapex_graph::parse_graph;
    use shapex_rbe::Rbe;

    const FIG1_SCHEMA: &str = "\
Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*
User -> name::Literal, email::Literal?
Employee -> name::Literal, email::Literal
";

    const FIG1_GRAPH: &str = "\
bug1 -descr-> l1
bug1 -reportedBy-> user1
bug1 -related-> bug2
bug2 -descr-> l2
bug2 -reportedBy-> user2
bug2 -reproducedBy-> emp1
bug2 -related-> bug1
bug2 -related-> bug3
bug3 -descr-> l3
bug3 -reportedBy-> user2
bug3 -related-> bug4
bug4 -descr-> l4
bug4 -reportedBy-> user1
user1 -name-> l5
user2 -name-> l6
user2 -email-> l7
emp1 -name-> l8
emp1 -email-> l9
";

    #[test]
    fn figure_1_graph_validates() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        let graph = parse_graph(FIG1_GRAPH).unwrap();
        let typing = maximal_typing(&graph, &schema);
        assert!(typing.is_total());
        assert!(validates(&graph, &schema));
        let bug1 = graph.find_node("bug1").unwrap();
        let user1 = graph.find_node("user1").unwrap();
        let emp1 = graph.find_node("emp1").unwrap();
        let user2 = graph.find_node("user2").unwrap();
        let bug = schema.find_type("Bug").unwrap();
        let user = schema.find_type("User").unwrap();
        let employee = schema.find_type("Employee").unwrap();
        assert!(typing.has_type(bug1, bug));
        assert!(!typing.has_type(bug1, user));
        assert!(typing.has_type(user1, user));
        assert!(!typing.has_type(user1, employee), "user1 has no email");
        assert!(typing.has_type(emp1, employee));
        assert!(typing.has_type(emp1, user), "an employee also fits User");
        assert!(typing.has_type(user2, user));
        assert!(typing.has_type(user2, employee), "user2 has an email");
    }

    #[test]
    fn missing_mandatory_edge_fails_validation() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        // A bug without a reporter.
        let graph = parse_graph("bug1 -descr-> l1\n").unwrap();
        let typing = maximal_typing(&graph, &schema);
        assert!(!typing.is_total());
        let bug1 = graph.find_node("bug1").unwrap();
        assert_eq!(typing.untyped_nodes(), vec![bug1]);
        assert!(!validates(&graph, &schema));
    }

    #[test]
    fn extra_edge_fails_validation() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        // Two descriptions violate descr::Literal with interval 1.
        let graph =
            parse_graph("bug1 -descr-> l1\nbug1 -descr-> l2\nbug1 -reportedBy-> u\nu -name-> l3\n")
                .unwrap();
        assert!(!validates(&graph, &schema));
    }

    #[test]
    fn figure_2_example_typing() {
        let schema =
            parse_schema("t0 -> a::t1\nt1 -> b::t2, c::t3\nt2 -> b::t2?, c::t3\nt3 -> EMPTY\n")
                .unwrap();
        // G0 of Figure 2: the b-edge loops on n1 (its signature in the paper
        // is (b::t1 | b::t2) || c::t3), and the maximal typing gives n1 the
        // types {t1, t2}.
        let graph = parse_graph("n0 -a-> n1\nn1 -b-> n1\nn1 -c-> n2\n").unwrap();
        let typing = maximal_typing(&graph, &schema);
        let n0 = graph.find_node("n0").unwrap();
        let n1 = graph.find_node("n1").unwrap();
        let n2 = graph.find_node("n2").unwrap();
        let t0 = schema.find_type("t0").unwrap();
        let t1 = schema.find_type("t1").unwrap();
        let t2 = schema.find_type("t2").unwrap();
        let t3 = schema.find_type("t3").unwrap();
        assert!(typing.has_type(n0, t0));
        assert!(typing.has_type(n1, t1));
        assert!(typing.has_type(n1, t2));
        assert!(typing.has_type(n2, t3));
        assert!(typing.is_total());
    }

    #[test]
    fn disjunctive_schema_uses_presburger_path() {
        // A -> (p::B | q::B), B -> EMPTY : a node with exactly one of p, q.
        let schema = parse_schema("A -> p::B | q::B\nB -> EMPTY\n").unwrap();
        let a_type = schema.find_type("A").unwrap();
        let with_p = parse_graph("x -p-> y\n").unwrap();
        let with_both = parse_graph("x -p-> y\nx -q-> z\n").unwrap();
        let tp = maximal_typing(&with_p, &schema);
        assert!(tp.has_type(with_p.find_node("x").unwrap(), a_type));
        let tb = maximal_typing(&with_both, &schema);
        assert!(!tb.has_type(with_both.find_node("x").unwrap(), a_type));
        // The leaf still validates as B, so with_p validates overall.
        assert!(validates(&with_p, &schema));
        assert!(!validates(&with_both, &schema));
    }

    #[test]
    fn compressed_graph_validation() {
        // H requires exactly three spokes; a compressed [3;3] edge satisfies
        // it, [2;2] does not (Proposition 6.2 semantics).
        let schema = parse_schema("Hub -> spoke::Rim[3;3]\nRim -> EMPTY\n").unwrap();
        let ok = parse_graph("hub -spoke[3]-> rim\n").unwrap();
        let bad = parse_graph("hub -spoke[2]-> rim\n").unwrap();
        assert!(validates(&ok, &schema));
        assert!(!validates(&bad, &schema));
    }

    #[test]
    fn compressed_copies_may_take_different_types() {
        // Parent needs one left::A and one right::... no — use a single label:
        // Parent -> child::A, child::B where A requires an `a` edge and B
        // requires a `b` edge; a compressed node cannot be both A and B, so a
        // [2;2] edge to a single child cannot satisfy Parent. But two separate
        // children (one A, one B) can.
        let schema = parse_schema(
            "Parent -> child::A, child::B\nA -> mark_a::L\nB -> mark_b::L\nL -> EMPTY\n",
        )
        .unwrap();
        let split =
            parse_graph("p -child-> x\np -child-> y\nx -mark_a-> l1\ny -mark_b-> l2\n").unwrap();
        assert!(validates(&split, &schema));
        let merged = parse_graph("p -child[2]-> x\nx -mark_a-> l1\n").unwrap();
        assert!(!validates(&merged, &schema));
    }

    #[test]
    fn scratch_validation_matches_the_stateless_path() {
        // One scratch reused across graphs and schemas: every verdict and
        // every maximal typing must match the allocating entry points —
        // including the Presburger (disjunctive) and compressed paths.
        let schemas = [
            parse_schema(FIG1_SCHEMA).unwrap(),
            parse_schema("A -> p::B | q::B\nB -> EMPTY\n").unwrap(),
            parse_schema("Hub -> spoke::Rim[3;3]\nRim -> EMPTY\n").unwrap(),
        ];
        let graphs = [
            parse_graph(FIG1_GRAPH).unwrap(),
            parse_graph("x -p-> y\nx -q-> z\n").unwrap(),
            parse_graph("x -p-> y\n").unwrap(),
            parse_graph("hub -spoke[3]-> rim\n").unwrap(),
            parse_graph("hub -spoke[2]-> rim\n").unwrap(),
        ];
        let mut scratch = ValidateScratch::new();
        for schema in &schemas {
            for graph in &graphs {
                assert_eq!(
                    maximal_typing_with(graph, schema, &mut scratch),
                    maximal_typing(graph, schema),
                    "typings diverge"
                );
                assert_eq!(
                    validates_with(graph, schema, &mut scratch),
                    validates(graph, schema),
                    "verdicts diverge"
                );
            }
        }
    }

    #[test]
    fn incremental_typing_tracks_deltas_exactly() {
        use shapex_graph::GraphDelta;
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        let mut graph = parse_graph(FIG1_GRAPH).unwrap();
        let mut inc = IncrementalTyping::new(&graph, &schema);
        assert!(inc.is_total());

        // Removing user1's name un-types user1 and cascades to bug1/bug4.
        let mut delta = GraphDelta::new();
        delta.remove_edge("user1", "name", "l5");
        let report = graph.apply_delta(&delta);
        let touched = inc.apply(&graph, &schema, &report.dirty);
        assert!(touched >= 1);
        assert_eq!(inc.typing(), &maximal_typing(&graph, &schema));
        assert!(!inc.is_total(), "bug1 lost its User reporter");
        let user1 = graph.find_node("user1").unwrap();
        let user = schema.find_type("User").unwrap();
        assert!(!inc.typing().has_type(user1, user), "no name edge any more");

        // Adding the name back restores the original typing — a pure add can
        // restore types, which is why the affected region re-expands.
        let mut delta = GraphDelta::new();
        delta.add_edge("user1", "name", "l5");
        let report = graph.apply_delta(&delta);
        inc.apply(&graph, &schema, &report.dirty);
        assert_eq!(inc.typing(), &maximal_typing(&graph, &schema));
        assert!(inc.is_total());

        // A brand-new subgraph: new nodes enter through the dirty set.
        let mut delta = GraphDelta::new();
        delta.add_edge("bug9", "descr", "l9b");
        delta.add_edge("bug9", "reportedBy", "user9");
        delta.add_edge("user9", "name", "l9c");
        let report = graph.apply_delta(&delta);
        assert_eq!(report.added_nodes, 4);
        inc.apply(&graph, &schema, &report.dirty);
        assert_eq!(inc.typing(), &maximal_typing(&graph, &schema));
        let bug9 = graph.find_node("bug9").unwrap();
        assert!(inc
            .typing()
            .has_type(bug9, schema.find_type("Bug").unwrap()));

        // An empty delta re-examines nothing.
        assert_eq!(inc.apply(&graph, &schema, &[]), 0);
    }

    #[test]
    fn incremental_typing_stays_local_on_a_forest() {
        // A forest of independent Bug/User stars: editing one tree must not
        // re-examine the others (the affected region is one tree).
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        let mut graph = shapex_graph::Graph::new();
        let mut delta = GraphDelta::new();
        for i in 0..100 {
            delta.add_edge(format!("bug{i}"), "descr", format!("lit{i}"));
            delta.add_edge(format!("bug{i}"), "reportedBy", format!("user{i}"));
            delta.add_edge(format!("user{i}"), "name", format!("name{i}"));
        }
        use shapex_graph::GraphDelta;
        graph.apply_delta(&delta);
        let mut inc = IncrementalTyping::new(&graph, &schema);
        assert!(inc.is_total());

        let mut edit = GraphDelta::new();
        edit.remove_edge("user7", "name", "name7");
        let report = graph.apply_delta(&edit);
        let touched = inc.apply(&graph, &schema, &report.dirty);
        // user7 plus its one predecessor bug7: far below the 300-node graph.
        assert_eq!(touched, 2);
        assert_eq!(inc.typing(), &maximal_typing(&graph, &schema));

        // A rebuild against a different schema shape falls back to full.
        let other = parse_schema("T -> EMPTY\n").unwrap();
        let touched = inc.apply(&graph, &other, &[]);
        assert_eq!(touched, graph.node_count());
        assert_eq!(inc.typing(), &maximal_typing(&graph, &other));
    }

    #[test]
    fn fired_cancel_aborts_typing_and_poisons_incremental_state() {
        use std::sync::atomic::AtomicBool;
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        let mut graph = parse_graph(FIG1_GRAPH).unwrap();

        // A pre-fired flag aborts the fixpoint before any sweep completes.
        let fired = AtomicBool::new(true);
        let cancel = CancelCheck::new(&fired);
        assert!(try_maximal_typing_with(
            &graph,
            &schema,
            &mut ValidateScratch::new(),
            Some(cancel)
        )
        .is_none());

        // A dormant flag changes nothing.
        let dormant = AtomicBool::new(false);
        assert_eq!(
            try_maximal_typing_with(
                &graph,
                &schema,
                &mut ValidateScratch::new(),
                Some(CancelCheck::new(&dormant))
            ),
            Some(maximal_typing(&graph, &schema))
        );

        // Cancelling an incremental revalidation poisons the retained typing;
        // the next (uncancelled) apply recovers via a full rebuild and lands
        // exactly on the from-scratch fixpoint.
        use shapex_graph::GraphDelta;
        let mut inc = IncrementalTyping::new(&graph, &schema);
        let mut delta = GraphDelta::new();
        delta.remove_edge("user1", "name", "l5");
        let report = graph.apply_delta(&delta);
        assert!(inc
            .try_apply(&graph, &schema, &report.dirty, Some(cancel))
            .is_none());
        let touched = inc.apply(&graph, &schema, &[]);
        assert_eq!(touched, graph.node_count(), "poisoned state forces rebuild");
        assert_eq!(inc.typing(), &maximal_typing(&graph, &schema));
    }

    #[test]
    fn cancelled_presburger_fallback_surfaces_as_none() {
        use std::sync::atomic::AtomicBool;
        // The disjunctive definition forces the Presburger path.
        let schema = parse_schema("A -> p::B | q::B\nB -> EMPTY\n").unwrap();
        let a_type = schema.find_type("A").unwrap();
        let b_type = schema.find_type("B").unwrap();
        let edges = [EdgeSummary {
            label: Label::new("p"),
            target_types: [b_type].into_iter().collect(),
            multiplicity: 1,
        }];
        let fired = AtomicBool::new(true);
        assert_eq!(
            try_neighbourhood_satisfies_with(
                &edges,
                schema.def(a_type),
                SolverOptions::default(),
                None,
                Some(CancelCheck::new(&fired)),
            ),
            None,
            "a fired flag must abort the solver, not return a verdict"
        );
        let dormant = AtomicBool::new(false);
        assert_eq!(
            try_neighbourhood_satisfies_with(
                &edges,
                schema.def(a_type),
                SolverOptions::default(),
                None,
                Some(CancelCheck::new(&dormant)),
            ),
            Some(true)
        );
    }

    #[test]
    fn neighbourhood_satisfies_directly() {
        let mut schema = Schema::new();
        let a = schema.add_type("A");
        let b = schema.add_type("B");
        schema.define_rbe0(a, &[("p", b, Interval::PLUS)]);
        let def = schema.def(a).clone();
        let edge = |mult: u64, types: &[TypeId]| EdgeSummary {
            label: Label::new("p"),
            target_types: types.iter().copied().collect(),
            multiplicity: mult,
        };
        assert!(neighbourhood_satisfies(&[edge(1, &[b])], &def));
        assert!(neighbourhood_satisfies(&[edge(5, &[b])], &def));
        assert!(
            !neighbourhood_satisfies(&[], &def),
            "p+ needs at least one edge"
        );
        assert!(
            !neighbourhood_satisfies(&[edge(1, &[a])], &def),
            "target type mismatch"
        );
        assert!(
            !neighbourhood_satisfies(&[edge(1, &[])], &def),
            "untypable target"
        );
        // An epsilon definition rejects any outgoing edge.
        assert!(!neighbourhood_satisfies(&[edge(1, &[b])], &Rbe::Epsilon));
        assert!(neighbourhood_satisfies(&[], &Rbe::Epsilon));
    }
}
