//! Semantics of shape expression schemas: typings, node satisfaction, and
//! validation of simple and compressed graphs.
//!
//! A *typing* of a graph `G` w.r.t. a schema `S` assigns to every node a set
//! of types. A typing is valid when every node satisfies the definition of
//! every type assigned to it, i.e. the language of the node's *signature*
//! intersects the language of the type definition. Typings form a
//! semi-lattice under union, so there is a unique maximal valid typing
//! ([`maximal_typing`]); `G` satisfies `S` when every node receives at least
//! one type ([`validates`]).
//!
//! Node satisfaction is decided along two paths matching the paper's
//! complexity results:
//!
//! * RBE₀ definitions reduce to an interval-flow assignment
//!   ([`shapex_rbe::flow`]), polynomial for simple graphs;
//! * arbitrary definitions go through the Presburger translation
//!   (`ψ_E`), which also covers compressed graphs whose edge multiplicities
//!   are binary-encoded (Proposition 6.2, NP).

use std::collections::BTreeSet;

use shapex_graph::{Graph, Label, NodeId};
use shapex_presburger::formula::{Formula, LinearExpr, VarPool};
use shapex_presburger::solver::{Bounds, SolveResult, Solver};
use shapex_presburger::translate::{max_interval_constant, ParikhVec, PsiBuilder};
use shapex_rbe::flow::{basic_assignment, general_assignment};
use shapex_rbe::{Interval, Rbe};

use crate::schema::{Atom, Schema, TypeId};

/// A typing: for every node of the graph, the set of types it satisfies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typing {
    sets: Vec<BTreeSet<TypeId>>,
}

impl Typing {
    fn full(nodes: usize, schema: &Schema) -> Typing {
        let all: BTreeSet<TypeId> = schema.types().collect();
        Typing {
            sets: vec![all; nodes],
        }
    }

    /// The set of types assigned to a node.
    pub fn types_of(&self, node: NodeId) -> &BTreeSet<TypeId> {
        &self.sets[node.index()]
    }

    /// Whether a node has the given type.
    pub fn has_type(&self, node: NodeId, t: TypeId) -> bool {
        self.sets[node.index()].contains(&t)
    }

    /// Whether every node has at least one type (i.e. the graph satisfies the
    /// schema, `dom(Typing) = N_G`).
    pub fn is_total(&self) -> bool {
        self.sets.iter().all(|s| !s.is_empty())
    }

    /// The nodes with no type at all (the witnesses of a validation failure).
    pub fn untyped_nodes(&self) -> Vec<NodeId> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Total number of `(node, type)` pairs in the typing.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the typing is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One outgoing edge of the node under scrutiny, summarised for satisfaction
/// checking: its label, the candidate types of its target, and its
/// multiplicity (1 for simple graphs, `k` for a compressed `[k;k]` edge).
#[derive(Debug, Clone)]
pub struct EdgeSummary {
    /// The predicate label of the edge.
    pub label: Label,
    /// The types currently assigned to the target node.
    pub target_types: BTreeSet<TypeId>,
    /// The number of parallel copies this edge stands for.
    pub multiplicity: u64,
}

/// Compute the maximal valid typing of a simple or compressed graph with
/// respect to a schema (greatest fixpoint of the refinement operator).
///
/// # Panics
/// Panics if the graph uses occurrence intervals other than singletons
/// (validation is defined on simple and compressed graphs only).
pub fn maximal_typing(graph: &Graph, schema: &Schema) -> Typing {
    for e in graph.edges() {
        assert!(
            graph.occur(e).singleton().is_some(),
            "validation requires a simple or compressed graph; edge has interval {}",
            graph.occur(e)
        );
    }
    let mut typing = Typing::full(graph.node_count(), schema);
    loop {
        let mut changed = false;
        for node in graph.nodes() {
            let current: Vec<TypeId> = typing.sets[node.index()].iter().copied().collect();
            for t in current {
                if !node_satisfies(graph, node, t, &typing, schema) {
                    typing.sets[node.index()].remove(&t);
                    changed = true;
                }
            }
        }
        if !changed {
            return typing;
        }
    }
}

/// Whether the graph satisfies the schema: every node of the maximal typing
/// carries at least one type.
pub fn validates(graph: &Graph, schema: &Schema) -> bool {
    maximal_typing(graph, schema).is_total()
}

/// Whether `node` satisfies the definition of `t` given the candidate types
/// of its successors recorded in `typing`.
pub fn node_satisfies(
    graph: &Graph,
    node: NodeId,
    t: TypeId,
    typing: &Typing,
    schema: &Schema,
) -> bool {
    let edges: Vec<EdgeSummary> = graph
        .out(node)
        .iter()
        .map(|&e| EdgeSummary {
            label: graph.label(e).clone(),
            target_types: typing.types_of(graph.target(e)).clone(),
            multiplicity: graph.occur(e).singleton().unwrap_or(1),
        })
        .collect();
    neighbourhood_satisfies(&edges, schema.def(t))
}

/// Decide whether an outbound neighbourhood can be assigned types so that the
/// resulting bag over `Σ × Γ` belongs to the language of `def`
/// (`L(sign) ∩ L(def) ≠ ∅`).
///
/// This is the workhorse shared by validation and by the containment
/// procedures of `shapex-core` (where the "candidate types" come from node
/// kinds rather than a typing).
pub fn neighbourhood_satisfies(edges: &[EdgeSummary], def: &Rbe<Atom>) -> bool {
    // An edge whose target has no candidate type can never be matched: the
    // signature's inner disjunction is empty, so the whole language is empty.
    if edges.iter().any(|e| e.target_types.is_empty()) {
        return false;
    }
    if let Some(rbe0) = def.to_rbe0() {
        // Fast path: assignment of edge copies to RBE0 atoms via interval
        // flow. Expand multiplicities into unit sources while they stay small.
        let total: u64 = edges.iter().map(|e| e.multiplicity).sum();
        if total <= 4096 {
            let mut sources = Vec::with_capacity(total as usize);
            let mut source_edges: Vec<usize> = Vec::with_capacity(total as usize);
            for (i, e) in edges.iter().enumerate() {
                for _ in 0..e.multiplicity {
                    sources.push(Interval::ONE);
                    source_edges.push(i);
                }
            }
            let sinks: Vec<Interval> = rbe0.atoms().iter().map(|(_, i)| *i).collect();
            let atoms = rbe0.atoms();
            let compatible = |v: usize, u: usize| {
                let edge = &edges[source_edges[v]];
                let (atom, _) = &atoms[u];
                atom.label == edge.label && edge.target_types.contains(&atom.target)
            };
            return if sinks.iter().all(|i| i.is_basic()) {
                basic_assignment(&sources, &sinks, compatible).is_some()
            } else {
                general_assignment(&sources, &sinks, compatible).is_some()
            };
        }
    }
    // General path: Presburger encoding of the partition of edge copies into
    // types, fed to ψ_def (the formulas φ_t of Section 6 with x̄ fixed).
    satisfies_via_presburger(edges, def)
}

fn satisfies_via_presburger(edges: &[EdgeSummary], def: &Rbe<Atom>) -> bool {
    let mut pool = VarPool::new();
    let total: u64 = edges.iter().map(|e| e.multiplicity).sum();
    let bound = total + max_interval_constant(def) + 1;

    // Partition variables y_{e,t}: how many copies of edge e are used with
    // target type t.
    let mut conjuncts = Vec::new();
    let mut contributions: ParikhVec<Atom> = ParikhVec::new();
    for (i, edge) in edges.iter().enumerate() {
        let mut sum = LinearExpr::constant(0);
        for t in &edge.target_types {
            let y = pool.fresh_bounded(format!("y{}_{}", i, t.0), edge.multiplicity);
            sum = sum.add(&LinearExpr::var(y));
            let atom = Atom {
                label: edge.label.clone(),
                target: *t,
            };
            let entry = contributions
                .entry(atom)
                .or_insert_with(|| LinearExpr::constant(0));
            *entry = entry.clone().add(&LinearExpr::var(y));
        }
        conjuncts.push(Formula::eq(
            sum,
            LinearExpr::constant(edge.multiplicity as i64),
        ));
    }
    // Atoms of the definition that no edge can produce still need entries so
    // that ψ forces them to zero — they already are zero constants.
    for atom in def.alphabet() {
        contributions
            .entry(atom)
            .or_insert_with(|| LinearExpr::constant(0));
    }
    let psi = PsiBuilder::new(&mut pool, bound).psi(def, &contributions, &LinearExpr::constant(1));
    conjuncts.push(psi);
    let formula = Formula::and(conjuncts);
    match Solver::new(Bounds::uniform(bound)).solve(&formula, &pool) {
        SolveResult::Sat(_) => true,
        SolveResult::Unsat => false,
        SolveResult::Unknown => panic!("Presburger budget exhausted during validation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;
    use shapex_graph::parse_graph;
    use shapex_rbe::Rbe;

    const FIG1_SCHEMA: &str = "\
Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*
User -> name::Literal, email::Literal?
Employee -> name::Literal, email::Literal
";

    const FIG1_GRAPH: &str = "\
bug1 -descr-> l1
bug1 -reportedBy-> user1
bug1 -related-> bug2
bug2 -descr-> l2
bug2 -reportedBy-> user2
bug2 -reproducedBy-> emp1
bug2 -related-> bug1
bug2 -related-> bug3
bug3 -descr-> l3
bug3 -reportedBy-> user2
bug3 -related-> bug4
bug4 -descr-> l4
bug4 -reportedBy-> user1
user1 -name-> l5
user2 -name-> l6
user2 -email-> l7
emp1 -name-> l8
emp1 -email-> l9
";

    #[test]
    fn figure_1_graph_validates() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        let graph = parse_graph(FIG1_GRAPH).unwrap();
        let typing = maximal_typing(&graph, &schema);
        assert!(typing.is_total());
        assert!(validates(&graph, &schema));
        let bug1 = graph.find_node("bug1").unwrap();
        let user1 = graph.find_node("user1").unwrap();
        let emp1 = graph.find_node("emp1").unwrap();
        let user2 = graph.find_node("user2").unwrap();
        let bug = schema.find_type("Bug").unwrap();
        let user = schema.find_type("User").unwrap();
        let employee = schema.find_type("Employee").unwrap();
        assert!(typing.has_type(bug1, bug));
        assert!(!typing.has_type(bug1, user));
        assert!(typing.has_type(user1, user));
        assert!(!typing.has_type(user1, employee), "user1 has no email");
        assert!(typing.has_type(emp1, employee));
        assert!(typing.has_type(emp1, user), "an employee also fits User");
        assert!(typing.has_type(user2, user));
        assert!(typing.has_type(user2, employee), "user2 has an email");
    }

    #[test]
    fn missing_mandatory_edge_fails_validation() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        // A bug without a reporter.
        let graph = parse_graph("bug1 -descr-> l1\n").unwrap();
        let typing = maximal_typing(&graph, &schema);
        assert!(!typing.is_total());
        let bug1 = graph.find_node("bug1").unwrap();
        assert_eq!(typing.untyped_nodes(), vec![bug1]);
        assert!(!validates(&graph, &schema));
    }

    #[test]
    fn extra_edge_fails_validation() {
        let schema = parse_schema(FIG1_SCHEMA).unwrap();
        // Two descriptions violate descr::Literal with interval 1.
        let graph =
            parse_graph("bug1 -descr-> l1\nbug1 -descr-> l2\nbug1 -reportedBy-> u\nu -name-> l3\n")
                .unwrap();
        assert!(!validates(&graph, &schema));
    }

    #[test]
    fn figure_2_example_typing() {
        let schema =
            parse_schema("t0 -> a::t1\nt1 -> b::t2, c::t3\nt2 -> b::t2?, c::t3\nt3 -> EMPTY\n")
                .unwrap();
        // G0 of Figure 2: the b-edge loops on n1 (its signature in the paper
        // is (b::t1 | b::t2) || c::t3), and the maximal typing gives n1 the
        // types {t1, t2}.
        let graph = parse_graph("n0 -a-> n1\nn1 -b-> n1\nn1 -c-> n2\n").unwrap();
        let typing = maximal_typing(&graph, &schema);
        let n0 = graph.find_node("n0").unwrap();
        let n1 = graph.find_node("n1").unwrap();
        let n2 = graph.find_node("n2").unwrap();
        let t0 = schema.find_type("t0").unwrap();
        let t1 = schema.find_type("t1").unwrap();
        let t2 = schema.find_type("t2").unwrap();
        let t3 = schema.find_type("t3").unwrap();
        assert!(typing.has_type(n0, t0));
        assert!(typing.has_type(n1, t1));
        assert!(typing.has_type(n1, t2));
        assert!(typing.has_type(n2, t3));
        assert!(typing.is_total());
    }

    #[test]
    fn disjunctive_schema_uses_presburger_path() {
        // A -> (p::B | q::B), B -> EMPTY : a node with exactly one of p, q.
        let schema = parse_schema("A -> p::B | q::B\nB -> EMPTY\n").unwrap();
        let a_type = schema.find_type("A").unwrap();
        let with_p = parse_graph("x -p-> y\n").unwrap();
        let with_both = parse_graph("x -p-> y\nx -q-> z\n").unwrap();
        let tp = maximal_typing(&with_p, &schema);
        assert!(tp.has_type(with_p.find_node("x").unwrap(), a_type));
        let tb = maximal_typing(&with_both, &schema);
        assert!(!tb.has_type(with_both.find_node("x").unwrap(), a_type));
        // The leaf still validates as B, so with_p validates overall.
        assert!(validates(&with_p, &schema));
        assert!(!validates(&with_both, &schema));
    }

    #[test]
    fn compressed_graph_validation() {
        // H requires exactly three spokes; a compressed [3;3] edge satisfies
        // it, [2;2] does not (Proposition 6.2 semantics).
        let schema = parse_schema("Hub -> spoke::Rim[3;3]\nRim -> EMPTY\n").unwrap();
        let ok = parse_graph("hub -spoke[3]-> rim\n").unwrap();
        let bad = parse_graph("hub -spoke[2]-> rim\n").unwrap();
        assert!(validates(&ok, &schema));
        assert!(!validates(&bad, &schema));
    }

    #[test]
    fn compressed_copies_may_take_different_types() {
        // Parent needs one left::A and one right::... no — use a single label:
        // Parent -> child::A, child::B where A requires an `a` edge and B
        // requires a `b` edge; a compressed node cannot be both A and B, so a
        // [2;2] edge to a single child cannot satisfy Parent. But two separate
        // children (one A, one B) can.
        let schema = parse_schema(
            "Parent -> child::A, child::B\nA -> mark_a::L\nB -> mark_b::L\nL -> EMPTY\n",
        )
        .unwrap();
        let split =
            parse_graph("p -child-> x\np -child-> y\nx -mark_a-> l1\ny -mark_b-> l2\n").unwrap();
        assert!(validates(&split, &schema));
        let merged = parse_graph("p -child[2]-> x\nx -mark_a-> l1\n").unwrap();
        assert!(!validates(&merged, &schema));
    }

    #[test]
    fn neighbourhood_satisfies_directly() {
        let mut schema = Schema::new();
        let a = schema.add_type("A");
        let b = schema.add_type("B");
        schema.define_rbe0(a, &[("p", b, Interval::PLUS)]);
        let def = schema.def(a).clone();
        let edge = |mult: u64, types: &[TypeId]| EdgeSummary {
            label: Label::new("p"),
            target_types: types.iter().copied().collect(),
            multiplicity: mult,
        };
        assert!(neighbourhood_satisfies(&[edge(1, &[b])], &def));
        assert!(neighbourhood_satisfies(&[edge(5, &[b])], &def));
        assert!(
            !neighbourhood_satisfies(&[], &def),
            "p+ needs at least one edge"
        );
        assert!(
            !neighbourhood_satisfies(&[edge(1, &[a])], &def),
            "target type mismatch"
        );
        assert!(
            !neighbourhood_satisfies(&[edge(1, &[])], &def),
            "untypable target"
        );
        // An epsilon definition rejects any outgoing edge.
        assert!(!neighbourhood_satisfies(&[edge(1, &[b])], &Rbe::Epsilon));
        assert!(neighbourhood_satisfies(&[], &Rbe::Epsilon));
    }
}
