//! A parser and writer for the rule syntax used in the paper.
//!
//! A schema is a sequence of rules, one per line (blank lines and `#` comments
//! are ignored):
//!
//! ```text
//! Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*
//! User -> name::Literal, email::Literal?
//! Literal -> EMPTY
//! ```
//!
//! * `,` (or `||`) is unordered concatenation, `|` is disjunction, and
//!   parentheses group sub-expressions.
//! * A factor may be followed by `?`, `*`, `+`, `[n;m]`, `[n;*]`, or `{n,m}`.
//! * `EMPTY`, `ε`, or `.` denote the empty-bag expression.
//! * Types referenced but never defined receive the definition `EMPTY`
//!   (like `Literal` in Figure 1 of the paper).

use shapex_rbe::{Interval, Rbe};

use crate::schema::{render_expr, Atom, Schema, ShapeExpr};

/// Parse a schema from the rule syntax.
pub fn parse_schema(text: &str) -> Result<Schema, String> {
    let mut schema = Schema::new();
    let mut rules: Vec<(String, Vec<Token>)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, body) = line
            .split_once("->")
            .ok_or_else(|| format!("line {}: expected `Type -> expression`", lineno + 1))?;
        let name = head.trim();
        if name.is_empty() || name.split_whitespace().count() != 1 {
            return Err(format!("line {}: invalid type name `{name}`", lineno + 1));
        }
        let tokens = tokenize(body).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        // Declare the type now so rule order does not matter.
        if schema.find_type(name).is_none() {
            schema.add_type(name);
        } else if rules.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "line {}: duplicate rule for type `{name}`",
                lineno + 1
            ));
        }
        rules.push((name.to_owned(), tokens));
    }
    for (name, tokens) in rules {
        let mut parser = Parser {
            tokens,
            pos: 0,
            schema: &mut schema,
        };
        let expr = parser.parse_expr()?;
        if parser.pos != parser.tokens.len() {
            return Err(format!(
                "rule for `{name}`: unexpected trailing input near token {}",
                parser.pos + 1
            ));
        }
        let t = schema.find_type(&name).expect("declared above");
        schema.define(t, expr);
    }
    Ok(schema)
}

/// Write a schema in the syntax accepted by [`parse_schema`].
pub fn write_schema(schema: &Schema) -> String {
    let mut out = String::new();
    for t in schema.types() {
        out.push_str(&format!(
            "{} -> {}\n",
            schema.type_name(t),
            render_expr(schema, schema.def(t))
        ));
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    DoubleColon,
    Comma,
    Pipe,
    LParen,
    RParen,
    Question,
    Star,
    Plus,
    Interval(Interval),
    Empty,
}

fn tokenize(body: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '|' => {
                if i + 1 < chars.len() && chars[i + 1] == '|' {
                    tokens.push(Token::Comma); // `||` is unordered concatenation
                    i += 2;
                } else {
                    tokens.push(Token::Pipe);
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Question);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == ':' {
                    tokens.push(Token::DoubleColon);
                    i += 2;
                } else {
                    return Err("single `:` (did you mean `::`?)".to_owned());
                }
            }
            '.' => {
                tokens.push(Token::Empty);
                i += 1;
            }
            '[' | '{' => {
                let close = if c == '[' { ']' } else { '}' };
                let end = chars[i..]
                    .iter()
                    .position(|&x| x == close)
                    .ok_or_else(|| format!("unterminated `{c}`"))?;
                let inner: String = chars[i + 1..i + end].iter().collect();
                let normalized = inner.replace(',', ";");
                let interval =
                    Interval::parse(&format!("[{normalized}]")).map_err(|e| e.to_string())?;
                tokens.push(Token::Interval(interval));
                i += end + 1;
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "EMPTY" || word == "ε" || word == "epsilon" {
                    tokens.push(Token::Empty);
                } else {
                    tokens.push(Token::Ident(word));
                }
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(tokens)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\'' || c == 'ε'
}

struct Parser<'s> {
    tokens: Vec<Token>,
    pos: usize,
    schema: &'s mut Schema,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// expr := concat ( '|' concat )*
    fn parse_expr(&mut self) -> Result<ShapeExpr, String> {
        let mut parts = vec![self.parse_concat()?];
        while matches!(self.peek(), Some(Token::Pipe)) {
            self.bump();
            parts.push(self.parse_concat()?);
        }
        Ok(Rbe::disj(parts))
    }

    /// concat := factor ( ',' factor )*
    fn parse_concat(&mut self) -> Result<ShapeExpr, String> {
        let mut parts = vec![self.parse_factor()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.bump();
            parts.push(self.parse_factor()?);
        }
        Ok(Rbe::concat(parts))
    }

    /// factor := primary repeat*
    fn parse_factor(&mut self) -> Result<ShapeExpr, String> {
        let mut expr = self.parse_primary()?;
        loop {
            let interval = match self.peek() {
                Some(Token::Question) => Interval::OPT,
                Some(Token::Star) => Interval::STAR,
                Some(Token::Plus) => Interval::PLUS,
                Some(Token::Interval(i)) => *i,
                _ => break,
            };
            self.bump();
            expr = Rbe::repeat(expr, interval);
        }
        Ok(expr)
    }

    /// primary := EMPTY | label '::' type | '(' expr ')'
    fn parse_primary(&mut self) -> Result<ShapeExpr, String> {
        match self.bump() {
            Some(Token::Empty) => Ok(Rbe::Epsilon),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err("expected `)`".to_owned()),
                }
            }
            Some(Token::Ident(label)) => match self.bump() {
                Some(Token::DoubleColon) => match self.bump() {
                    Some(Token::Ident(type_name)) => {
                        let t = self.schema.type_named(&type_name);
                        // Intern through the schema's label table: one
                        // allocation per distinct predicate in the schema.
                        let label = self.schema.intern_label(&label);
                        Ok(Rbe::symbol(Atom::new(label, t)))
                    }
                    _ => Err(format!("expected a type name after `{label}::`")),
                },
                _ => Err(format!("expected `::` after label `{label}`")),
            },
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaClass;
    use shapex_rbe::Interval;

    const FIG1: &str = "\
# Figure 1 of the paper
Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*
User -> name::Literal, email::Literal?
Employee -> name::Literal, email::Literal
";

    #[test]
    fn parse_figure_1() {
        let s = parse_schema(FIG1).unwrap();
        // `Literal` is auto-declared with definition EMPTY.
        assert_eq!(s.type_count(), 4);
        let literal = s.find_type("Literal").unwrap();
        assert_eq!(*s.def(literal), Rbe::Epsilon);
        assert_eq!(s.classify(), SchemaClass::DetShEx0Minus);
        let bug = s.find_type("Bug").unwrap();
        let rbe0 = s.def(bug).to_rbe0().unwrap();
        assert_eq!(rbe0.atoms().len(), 4);
        assert_eq!(rbe0.atoms()[2].1, Interval::OPT);
        assert_eq!(rbe0.atoms()[3].1, Interval::STAR);
    }

    #[test]
    fn parse_figure_2_schema() {
        let text = "\
t0 -> a::t1
t1 -> b::t2 , c::t3
t2 -> b::t2?, c::t3
t3 -> EMPTY
";
        let s = parse_schema(text).unwrap();
        assert_eq!(s.type_count(), 4);
        assert_eq!(s.classify(), SchemaClass::DetShEx0);
        let t2 = s.find_type("t2").unwrap();
        let atoms = s.def(t2).to_rbe0().unwrap();
        assert_eq!(atoms.atoms()[0].1, Interval::OPT);
    }

    #[test]
    fn parse_disjunction_and_groups() {
        let text = "A -> (p::B | q::C), r::B[2;3]\nB -> EMPTY\nC -> EMPTY\n";
        let s = parse_schema(text).unwrap();
        let a = s.find_type("A").unwrap();
        assert!(!s.is_rbe0());
        assert!(s.def(a).has_disjunction());
        assert_eq!(s.classify(), SchemaClass::ShEx);
        // `{n,m}` braces work as interval syntax too.
        let s2 = parse_schema("A -> p::B{2,5}\nB -> EMPTY\n").unwrap();
        let a2 = s2.find_type("A").unwrap();
        let rbe0 = s2.def(a2).to_rbe0().unwrap();
        assert_eq!(rbe0.atoms()[0].1, Interval::bounded(2, 5));
    }

    #[test]
    fn parse_double_pipe_concatenation() {
        let s = parse_schema("A -> p::B || q::B\nB -> EMPTY\n").unwrap();
        let a = s.find_type("A").unwrap();
        let rbe0 = s.def(a).to_rbe0().unwrap();
        assert_eq!(rbe0.atoms().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_schema("A p::B").is_err(), "missing arrow");
        assert!(
            parse_schema("A -> p:B\nB -> EMPTY").is_err(),
            "single colon"
        );
        assert!(
            parse_schema("A -> (p::B\nB -> EMPTY").is_err(),
            "unclosed paren"
        );
        assert!(parse_schema("A -> p::B ???x").is_err(), "trailing junk");
        assert!(
            parse_schema("A -> p::B\nA -> q::B\nB -> EMPTY").is_err(),
            "duplicate rule"
        );
        assert!(
            parse_schema("A -> p::B[3;").is_err(),
            "unterminated interval"
        );
    }

    #[test]
    fn roundtrip_through_writer() {
        let s = parse_schema(FIG1).unwrap();
        let text = write_schema(&s);
        let reparsed = parse_schema(&text).unwrap();
        assert_eq!(reparsed.type_count(), s.type_count());
        assert_eq!(reparsed.classify(), s.classify());
        for t in s.types() {
            let name = s.type_name(t);
            let rt = reparsed.find_type(name).expect("type preserved");
            assert_eq!(
                s.def(t).to_rbe0().map(|r| r.atoms().len()),
                reparsed.def(rt).to_rbe0().map(|r| r.atoms().len()),
                "type {name}"
            );
        }
    }

    #[test]
    fn empty_alternatives() {
        // ε | b::t — the Figure 4 style expression.
        let s = parse_schema("T -> EMPTY | b::T | b::T+\n").unwrap();
        let t = s.find_type("T").unwrap();
        assert!(s.def(t).has_disjunction());
        assert_eq!(s.classify(), SchemaClass::ShEx);
    }
}
