//! Shape expression schemas (ShEx) over regular bag expressions.
//!
//! This crate implements the schema formalism of *Containment of Shape
//! Expression Schemas for RDF* (Staworko & Wieczorek, PODS 2019):
//!
//! * [`schema`] — a [`Schema`] is a finite set of named types, each defined by
//!   a regular bag expression over `Σ × Γ` (predicate label :: type). The
//!   module detects the subclasses studied in the paper — `ShEx(RBE0)`,
//!   deterministic schemas `DetShEx₀`, and the tractable fragment
//!   `DetShEx₀⁻` — and converts `ShEx(RBE0)` schemas to and from their shape
//!   graph representation (Proposition 3.2).
//! * [`parser`] — a parser and writer for the rule syntax used throughout the
//!   paper, e.g. `Bug -> descr::Literal, reportedBy::User, related::Bug*`.
//! * [`typing`] — the semantics: maximal typings of simple and compressed
//!   graphs, node satisfaction, and schema validation (`G ⊨ S`), with a
//!   polynomial path for RBE₀ definitions and a Presburger-based path for
//!   arbitrary shape expressions (Proposition 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parser;
pub mod schema;
pub mod typing;

pub use parser::{parse_schema, write_schema};
pub use schema::{Atom, AtomId, AtomTable, Schema, SchemaClass, TypeId};
pub use typing::{
    maximal_typing, maximal_typing_with, validates, validates_with, IncrementalTyping, Typing,
    ValidateScratch,
};
