//! Deterministic chaos suite for the engine, compiled only under
//! `--features failpoints`.
//!
//! A seeded [`FaultPlan`] arms panics and delays at the engine's
//! instrumented sites (pre-sweep, solver-branch, …); the suite then drives
//! containment queries through the armed engine and pins the two robustness
//! invariants the fault registry exists to prove:
//!
//! 1. **Completed verdicts are never wrong.** Any query that runs to
//!    completion — before, between, or after injected failures — answers
//!    exactly like a fresh, fault-free engine (witnesses compared
//!    structurally). Interrupted queries may leave completed sub-results in
//!    the caches, but never partial ones, so survivors are unaffected.
//! 2. **The engine keeps serving.** After every injected panic (which
//!    poisons whatever locks the dying query held), the same engine answers
//!    the full workload identically: poisoned-lock recovery plus the
//!    no-partial-memoisation rule make a crashed query observationally
//!    invisible.
//!
//! Plans are pure functions of their seed, so a failing case replays
//! exactly from the printed inputs.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::faults::{self, FaultPlan};
use shapex_core::{Containment, UnknownReason};
use shapex_graph::generate::GraphGen;
use shapex_shex::Schema;

mod common;
use common::{same_answer, tiny};

/// The fault registry is process-global; every test here serialises on it.
static GATE: Mutex<()> = Mutex::new(());

/// RAII disarm: clears the registry even when an assertion unwinds, so a
/// failing case never leaves faults armed for the next one.
struct Armed;

impl Armed {
    fn install(plan: FaultPlan) -> Armed {
        faults::install(plan);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        faults::clear();
    }
}

/// Tiny search budget plus a deliberately small cache budget, so eviction
/// sweeps run constantly and the `pre-sweep` site actually fires.
fn chaos_options() -> EngineOptions {
    EngineOptions::builder()
        .search(tiny())
        .threads(1)
        .matrix_threads(1)
        .cache_budget(4096)
        .build()
}

/// Random RBE₀ schemas via random shape graphs — the same generator the
/// eviction suite uses, giving a mix of contained / not-contained /
/// budget-exhausted pairs per seed.
fn random_family(seed: u64, count: usize) -> Vec<Schema> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let shape = GraphGen::new(4, 3).out_degree(2.0).shape(&mut rng);
            Schema::from_shape_graph(&shape)
        })
        .collect()
}

/// Fault-free per-pair verdicts from fresh engines: no cache carries over
/// from any earlier query, so this is the memo-free reference answer.
fn oracle(family: &[Schema]) -> Vec<Containment> {
    let mut verdicts = Vec::new();
    for h in family {
        for k in family {
            let engine = ContainmentEngine::with_options(chaos_options());
            verdicts.push(engine.check(h, k));
        }
    }
    verdicts
}

fn chaos_case(seed: u64, panics: usize, delays: usize) {
    let family = random_family(seed, 3);
    let reference = oracle(&family);

    let engine = ContainmentEngine::with_options(chaos_options());
    let armed = Armed::install(FaultPlan::seeded(seed, panics, delays));
    let mut injected = 0;
    for (i, (h, k)) in pairs(&family).enumerate() {
        // A panic here is an injected fault escaping to the caller — that
        // query is lost, but nothing else may be.
        match catch_unwind(AssertUnwindSafe(|| engine.check(h, k))) {
            Ok(verdict) => assert!(
                same_answer(&verdict, &reference[i]),
                "completed verdict diverged under faults (seed {seed}, pair {i}):\n\
                 got      {verdict:?}\nexpected {:?}",
                reference[i]
            ),
            Err(_) => injected += 1,
        }
    }
    drop(armed);

    // The same engine — poisoned locks, interrupted searches and all — must
    // now answer the entire workload exactly like the fault-free reference.
    for (i, (h, k)) in pairs(&family).enumerate() {
        let verdict = engine.check(h, k);
        assert!(
            same_answer(&verdict, &reference[i]),
            "post-fault verdict diverged (seed {seed}, pair {i}, {injected} faults injected):\n\
             got      {verdict:?}\nexpected {:?}",
            reference[i]
        );
    }
}

/// Ordered pairs of the family, in oracle order.
fn pairs(family: &[Schema]) -> impl Iterator<Item = (&Schema, &Schema)> {
    family
        .iter()
        .flat_map(move |h| family.iter().map(move |k| (h, k)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seeded_fault_schedules_never_change_completed_verdicts(
        seed in 0u64..100_000,
        panics in 0usize..4,
        delays in 0usize..3,
    ) {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        chaos_case(seed, panics, delays);
    }
}

#[test]
fn delay_faults_widen_race_windows_without_changing_verdicts() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let family = random_family(0xD31A7, 3);
    let reference = oracle(&family);
    let engine = Arc::new(ContainmentEngine::with_options(chaos_options()));
    // Delay-only schedule: stalls queries at sweep and branch checkpoints
    // while other threads hammer the same caches and evict underneath them.
    let _armed = Armed::install(FaultPlan::seeded(0xD31A7, 0, 6));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let engine = Arc::clone(&engine);
            let family = &family;
            let reference = &reference;
            scope.spawn(move || {
                for (i, (h, k)) in pairs(family).enumerate() {
                    let verdict = engine.check(h, k);
                    assert!(
                        same_answer(&verdict, &reference[i]),
                        "delayed verdict diverged (pair {i}): got {verdict:?}"
                    );
                }
            });
        }
    });
}

#[test]
fn deadlines_under_armed_faults_stay_typed() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let family = random_family(7, 2);
    let engine = ContainmentEngine::with_options(chaos_options());
    let h = engine.register(&family[0]);
    let k = engine.register(&family[1]);
    let reference = engine.check_ids(h, k);
    // Delays at the solver-branch checkpoint sit exactly where deadline
    // polling happens; the verdicts must stay typed either way.
    let _armed = Armed::install(FaultPlan::seeded(7, 0, 4));
    let expired = engine.check_ids_deadline(h, k, Duration::ZERO);
    assert!(
        matches!(
            expired.unknown_reason(),
            Some(UnknownReason::DeadlineExceeded { .. })
        ),
        "zero deadline must expire, got {expired:?}"
    );
    let generous = engine.check_ids_deadline(h, k, Duration::from_secs(3600));
    assert!(
        same_answer(&generous, &reference),
        "a generous deadline answers identically, got {generous:?}"
    );
}
