//! Bounded-memory equivalence suite: a `ContainmentEngine` running under a
//! deliberately tiny cache budget must be *observationally identical* to the
//! unbounded engine and to the memo-free oracle — same verdicts, same
//! witnesses — while its accounted evictable bytes respect the budget at
//! every query exit. Eviction may only ever cost recomputation, never
//! change an answer.
//!
//! The suite also pins the accounting itself: a deterministic workload that
//! provably overflows a small budget must report evictions, sweeps, freed
//! bytes, and pinned (non-evictable) residency through `EngineStats`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::Containment;
use shapex_graph::generate::GraphGen;
use shapex_shex::{parse_schema, Schema};

mod common;
use common::{same_answer, shex0_oracle, tiny};

/// A budget far below what even one warm pair needs, so sweeps fire on
/// nearly every query.
const TINY_BUDGET: u64 = 512;

/// Random RBE₀ schemas via random shape graphs (Proposition 3.2): the full
/// basic-interval mix (`1 ? * +`), many outside `DetShEx₀⁻`, so the budget
/// squeezes pools, validate memos, and pair memos alike.
fn random_family(seed: u64, count: usize) -> Vec<Schema> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let shape = GraphGen::new(4, 3).out_degree(2.0).shape(&mut rng);
            Schema::from_shape_graph(&shape)
        })
        .collect()
}

fn budgeted(budget: u64) -> ContainmentEngine {
    ContainmentEngine::with_options(
        EngineOptions::builder()
            .search(tiny())
            .cache_budget(budget)
            .build(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core invariant: over a whole session of queries (every ordered
    /// pair, twice, so warm hits and evicted-then-rebuilt paths both occur),
    /// the tiny-budget engine answers exactly like the unbounded engine and
    /// the memo-free oracle, and never finishes a query with more accounted
    /// evictable bytes than its budget.
    #[test]
    fn tiny_budget_is_observationally_invisible(seed in 0u64..100_000) {
        let family = random_family(seed, 3);
        let opts = tiny();
        let unbounded = ContainmentEngine::with_search(opts.clone());
        let squeezed = budgeted(TINY_BUDGET);

        for round in 0..2usize {
            for (i, h) in family.iter().enumerate() {
                for (j, k) in family.iter().enumerate() {
                    let free = unbounded.shex0(h, k);
                    let tight = squeezed.shex0(h, k);
                    prop_assert!(
                        same_answer(&free, &tight),
                        "round {} pair [{}][{}]: unbounded {} vs budgeted {}",
                        round, i, j, free, tight
                    );
                    // Oracle agreement (Unknown compared by variant: the
                    // oracle does not model engine-side reasons).
                    let oracle = shex0_oracle(h, k, &opts);
                    match (&tight, &oracle) {
                        (Containment::Unknown(_), Containment::Unknown(_)) => {}
                        _ => prop_assert!(
                            same_answer(&tight, &oracle),
                            "pair [{}][{}]: budgeted {} vs oracle {}",
                            i, j, tight, oracle
                        ),
                    }
                    // The budget invariant holds at every query exit, not
                    // just at the end of the session.
                    let stats = squeezed.stats();
                    prop_assert!(
                        stats.evictable_bytes() <= TINY_BUDGET,
                        "evictable bytes exceed the budget mid-session: {}",
                        stats
                    );
                }
            }
        }

        // The unbounded control never sweeps; the squeezed engine did real
        // work under pressure and its ledger stayed coherent.
        prop_assert_eq!(unbounded.stats().evictions, 0);
        let stats = squeezed.stats();
        prop_assert!(stats.pinned_bytes > 0, "registered schemas are pinned");
        prop_assert_eq!(stats.cache_budget, Some(TINY_BUDGET));
    }
}

/// A deterministic workload that provably overflows a 512-byte budget: the
/// stats surface must show the sweeps happening and the freed bytes flowing
/// back, and a warm re-query must still match a fresh unbounded engine.
#[test]
fn eviction_counters_report_real_sweeps() {
    let texts = [
        "T -> p::L?\nL -> EMPTY\n",
        "T -> p::L*\nL -> EMPTY\n",
        "T -> p::L+\nL -> EMPTY\n",
        "T -> p::L, p::L?\nL -> EMPTY\n",
        "Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n",
    ];
    let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
    let reference = ContainmentEngine::with_search(tiny()).check_matrix(&schemas);

    let engine = budgeted(TINY_BUDGET);
    for round in 0..3usize {
        let matrix = engine.check_matrix(&schemas);
        for (i, (row, row_r)) in matrix.iter().zip(&reference).enumerate() {
            for (j, (cell, r)) in row.iter().zip(row_r).enumerate() {
                assert!(
                    same_answer(cell, r),
                    "round {round} cell [{i}][{j}]: budgeted {cell} vs unbounded {r}"
                );
            }
        }
        let stats = engine.stats();
        assert!(
            stats.evictable_bytes() <= TINY_BUDGET,
            "budget violated after round {round}: {stats}"
        );
    }

    let stats = engine.stats();
    assert!(stats.evictions > 0, "a 512 B budget must evict: {stats}");
    assert!(stats.sweeps > 0, "evictions happen inside sweeps: {stats}");
    assert!(
        stats.evicted_bytes > 0,
        "sweeps free accounted bytes: {stats}"
    );
    assert!(stats.pinned_bytes > 0, "schemas stay pinned: {stats}");
    // The Display line surfaces the bounded-memory counters.
    let line = format!("{stats}");
    assert!(line.contains("evictable"), "{line}");
    assert!(line.contains("budget 512 B"), "{line}");
}

/// Budget zero is legal: everything evictable is swept at every exit, the
/// engine degrades to recomputation, and answers still match.
#[test]
fn zero_budget_still_answers_correctly() {
    let family = random_family(0xD1CE, 3);
    let unbounded = ContainmentEngine::with_search(tiny());
    let stateless = budgeted(0);
    for h in &family {
        for k in &family {
            let free = unbounded.shex0(h, k);
            let bare = stateless.shex0(h, k);
            assert!(
                same_answer(&free, &bare),
                "zero-budget divergence: {free} vs {bare}"
            );
            assert_eq!(
                stateless.stats().evictable_bytes(),
                0,
                "a zero budget leaves nothing evictable resident"
            );
        }
    }
}
