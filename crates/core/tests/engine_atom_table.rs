//! The cross-schema atom table must be invisible in the answers: a shared
//! engine (one session-level interner and bag cache spanning every
//! registered schema) answers exactly like a fresh engine per pair (each
//! with its own private interner) — same verdicts, same witnesses. The
//! suite also pins the interner's deduplication: re-registering a schema
//! adds no atoms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::engine::ContainmentEngine;
use shapex_graph::generate::GraphGen;
use shapex_shex::Schema;

mod common;
use common::{same_answer, tiny};

/// Random RBE₀ schemas via random shape graphs, as in `engine_session`.
fn random_schema(rng: &mut StdRng, nodes: usize, labels: usize) -> Schema {
    let shape = GraphGen::new(nodes, labels).out_degree(2.0).shape(rng);
    Schema::from_shape_graph(&shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shared_atom_table_matrix_equals_fresh_engine_per_pair(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let family: Vec<Schema> = (0..3)
            .map(|i| random_schema(&mut rng, 4 + i % 2, 3))
            .collect();
        let opts = tiny();

        // One shared session: every schema's alphabet lands in the same
        // atom table, candidate bags are shared across schemas, and memo
        // keys are interned ids.
        let shared = ContainmentEngine::with_search(opts.clone());
        let matrix = shared.check_matrix(&family);
        prop_assert!(
            !shared.atom_table().is_empty(),
            "registering the family must populate the session atom table"
        );

        // The oracle: a fresh engine per pair, whose session context (and
        // therefore interner and bag cache) never sees any other schema.
        for (i, row) in matrix.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let fresh = ContainmentEngine::with_search(opts.clone())
                    .check(&family[i], &family[j]);
                prop_assert!(
                    same_answer(cell, &fresh),
                    "shared table changed matrix[{}][{}]: shared {} vs fresh {}",
                    i, j, cell, fresh
                );
            }
        }
    }

    #[test]
    fn atom_interning_is_idempotent_across_registrations(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng, 5, 3);
        let engine = ContainmentEngine::with_search(tiny());
        let _ = engine.register(&schema);
        let after_first = engine.atom_table().len();
        prop_assert!(after_first > 0, "a non-empty schema contributes atoms");
        // The same schema again: every atom is already interned, so the
        // table must not grow (structural equality across registrations).
        let _ = engine.register(&schema);
        prop_assert_eq!(
            engine.atom_table().len(),
            after_first,
            "re-registering the same schema must not mint new atom ids"
        );
    }
}
