//! Scaffolding shared by the `engine_session`, `engine_concurrency`, and
//! `arena_search` suites: the tiny search budget, structural witness
//! comparison, and the memo-free ShEx₀ oracle assembled from the retained
//! baseline pieces.

// Each suite uses its own subset of these helpers; unused ones in a given
// test binary are expected.
#![allow(dead_code)]

use shapex_core::baseline::search_counter_example_baseline;
use shapex_core::det::characterizing_graph;
use shapex_core::embedding::embeds;
use shapex_core::unfold::SearchOptions;
use shapex_core::Containment;
use shapex_graph::Graph;
use shapex_shex::Schema;

/// A small budget keeping each random case fast; equivalence must hold for
/// any budget, so tightness costs no coverage.
pub fn tiny() -> SearchOptions {
    SearchOptions {
        max_depth: 2,
        max_bags: 6,
        max_trees: 8,
        max_graph_nodes: 40,
        max_candidates: 120,
        random_samples: 30,
        ..SearchOptions::default()
    }
}

/// A structural rendering for witness comparison (node names are irrelevant
/// to validation, but the engine must return the *identical* candidate, so
/// names are included).
pub fn graph_key(g: &Graph) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for n in g.nodes() {
        let _ = writeln!(s, "{}", g.node_name(n));
    }
    for e in g.edges() {
        let _ = writeln!(
            s,
            "{} -{}-> {}",
            g.node_name(g.source(e)),
            g.label(e),
            g.node_name(g.target(e))
        );
    }
    s
}

/// Verdict equality with exact-witness comparison for `NotContained`.
pub fn same_answer(a: &Containment, b: &Containment) -> bool {
    match (a, b) {
        (Containment::Contained, Containment::Contained) => true,
        (Containment::NotContained(x), Containment::NotContained(y)) => {
            graph_key(x) == graph_key(y)
        }
        (Containment::Unknown(x), Containment::Unknown(y)) => x == y,
        _ => false,
    }
}

/// The ShEx₀ pipeline exactly as the paper (and the pre-engine code) runs
/// it, over the memo-free baseline search. Unknown answers carry a dummy
/// reason — the oracle does not model engine-side budget accounting, so
/// callers compare Unknowns by variant only.
pub fn shex0_oracle(h: &Schema, k: &Schema, options: &SearchOptions) -> Containment {
    assert!(h.is_rbe0() && k.is_rbe0(), "oracle is for ShEx0 pairs");
    let hg = h.to_shape_graph().expect("RBE0 schema has a shape graph");
    let kg = k.to_shape_graph().expect("RBE0 schema has a shape graph");
    if embeds(&hg, &kg).is_some() {
        return Containment::Contained;
    }
    if h.is_det_shex0_minus() && k.is_det_shex0_minus() {
        let witness = characterizing_graph(h).expect("checked DetShEx0-");
        return Containment::not_contained(witness);
    }
    match search_counter_example_baseline(h, k, options) {
        Some(witness) => Containment::not_contained(witness),
        None => Containment::budget_exhausted(0, 0),
    }
}
