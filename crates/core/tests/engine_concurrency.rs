//! Concurrency suite for the shared-state `ContainmentEngine`: the `&self`
//! refactor must be observationally invisible. Row-parallel `check_matrix`
//! at 1/2/8 workers must return verdicts identical to the serial engine and
//! to the memo-free oracle assembled from
//! `baseline::search_counter_example_baseline`; many threads hammering one
//! `Arc<ContainmentEngine>` must each see exactly the answers a serial
//! session computes; and racing registrations must agree on one handle.
//!
//! Run in release in CI (`cargo test -p shapex-core --release --test
//! engine_concurrency`) so the hammer test exercises real interleavings
//! rather than debug-build lockstep.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::engine::{ContainmentEngine, EngineOptions, SchemaId};
use shapex_core::Containment;
use shapex_graph::generate::GraphGen;
use shapex_shex::{parse_schema, Schema};

mod common;
use common::{same_answer, shex0_oracle, tiny};

/// CI sets `SHAPEX_CACHE_BUDGET` (bytes) to rerun the hammer with a
/// deliberately tiny cache budget, so eviction sweeps race live queries.
/// Unset or unparsable means the default unbounded engine.
fn cache_budget_from_env() -> Option<u64> {
    std::env::var("SHAPEX_CACHE_BUDGET")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
}

/// Random RBE₀ schemas via random shape graphs (Proposition 3.2): the
/// round-trip gives the full basic-interval mix (`1 ? * +`), many outside
/// `DetShEx₀⁻`, so every dispatch route of `check_matrix` gets exercised.
fn random_family(seed: u64, count: usize) -> Vec<Schema> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let shape = GraphGen::new(4, 3).out_degree(2.0).shape(&mut rng);
            Schema::from_shape_graph(&shape)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Row-parallel matrices at 1, 2, and 8 workers are cell-for-cell
    /// identical to the serial engine's matrix, which itself matches the
    /// baseline-backed oracle on every pair.
    #[test]
    fn parallel_matrix_matches_serial_and_oracle(seed in 0u64..100_000) {
        let family = random_family(seed, 4);
        let opts = tiny();
        let serial = ContainmentEngine::with_search(opts.clone()).check_matrix(&family);

        for workers in [1usize, 2, 8] {
            let options = EngineOptions::default()
                .with_search(opts.clone())
                .with_matrix_threads(workers);
            let parallel = ContainmentEngine::with_options(options).check_matrix(&family);
            for (i, (row_s, row_p)) in serial.iter().zip(&parallel).enumerate() {
                for (j, (s, p)) in row_s.iter().zip(row_p).enumerate() {
                    prop_assert!(
                        same_answer(s, p),
                        "matrix[{}][{}] at {} workers: serial {} vs parallel {}",
                        i, j, workers, s, p
                    );
                }
            }
        }

        // Every cell also agrees with the memo-free oracle (Unknown compared
        // by variant: the oracle does not model engine-side reasons).
        for (i, row) in serial.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let oracle = shex0_oracle(&family[i], &family[j], &opts);
                match (cell, &oracle) {
                    (Containment::Unknown(_), Containment::Unknown(_)) => {}
                    _ => prop_assert!(
                        same_answer(cell, &oracle),
                        "matrix[{}][{}]: engine {} vs oracle {}",
                        i, j, cell, oracle
                    ),
                }
            }
        }
    }
}

/// Many threads share one `Arc<ContainmentEngine>` and interleave queries,
/// registrations, matrix slices, and stats reads; every answer must equal
/// the serial reference, and the shared caches must stay coherent across
/// rounds.
#[test]
fn hammer_shared_engine_from_many_threads() {
    // A mixed family: DetShEx0-, plain ShEx0 (+ / duplicate labels), and
    // full ShEx (disjunction) — every dispatch route under contention.
    let texts = [
        "T -> p::L?\nL -> EMPTY\n",
        "T -> p::L*\nL -> EMPTY\n",
        "T -> p::L+\nL -> EMPTY\n",
        "T -> p::L, p::L?\nL -> EMPTY\n",
        "T -> p::L | (p::L, p::L)\nL -> EMPTY\n",
        "Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n",
    ];
    let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
    let opts = tiny();
    let reference = ContainmentEngine::with_search(opts.clone()).check_matrix(&schemas);

    // threads: 2 so the validation fan-out's scoped workers run *inside*
    // concurrently querying threads too. CI additionally reruns this hammer
    // with SHAPEX_CACHE_BUDGET set to a deliberately tiny byte budget, so
    // concurrent queries race the eviction sweeps as well.
    let mut builder = EngineOptions::builder()
        .search(opts)
        .threads(2)
        .parallel_threshold(4);
    if let Some(budget) = cache_budget_from_env() {
        builder = builder.cache_budget(budget);
    }
    let engine = Arc::new(ContainmentEngine::with_options(builder.build()));
    let ids: Vec<SchemaId> = schemas.iter().map(|s| engine.register(s)).collect();
    let n = schemas.len();

    std::thread::scope(|scope| {
        for worker in 0..8usize {
            let engine = &engine;
            let schemas = &schemas;
            let reference = &reference;
            let ids = &ids;
            scope.spawn(move || {
                for round in 0..3usize {
                    // Each worker sweeps all pairs from a different offset,
                    // so different cells are in flight simultaneously.
                    for step in 0..n * n {
                        let cell = (step + worker * 7 + round * 13) % (n * n);
                        let (i, j) = (cell / n, cell % n);
                        let answer = engine.check_ids(ids[i], ids[j]);
                        assert!(
                            same_answer(&answer, &reference[i][j]),
                            "worker {worker} round {round}: cell [{i}][{j}] answered {answer}, \
                             expected {}",
                            reference[i][j]
                        );
                    }
                    // Re-registration mid-flight must return the pinned ids.
                    for (s, &id) in schemas.iter().zip(ids) {
                        assert_eq!(engine.register(s), id);
                    }
                    // Stats snapshots must never tear below what a single
                    // completed query implies.
                    let stats = engine.stats();
                    assert_eq!(stats.schemas, n);
                }
            });
        }
    });

    // After the storm: the warmed shared engine still computes the exact
    // reference matrix, serially and row-parallel.
    let warm = engine.check_matrix(&schemas);
    for (row_w, row_r) in warm.iter().zip(&reference) {
        for (w, r) in row_w.iter().zip(row_r) {
            assert!(same_answer(w, r), "warm matrix diverged: {w} vs {r}");
        }
    }
    let misses_before = engine.stats().validate_misses;
    let parallel_rows = engine.check_matrix_ids(&ids);
    if cache_budget_from_env().is_none() {
        // With a tiny budget the sweeps evict memos by design, so the
        // zero-recomputation claim only holds for the unbounded default.
        assert_eq!(
            engine.stats().validate_misses,
            misses_before,
            "a fully warmed engine must answer matrices from the memo"
        );
    } else {
        // Budgeted rerun: the accounted evictable bytes must respect the
        // budget at every query exit, including after the storm.
        let stats = engine.stats();
        assert!(
            stats.evictable_bytes() <= cache_budget_from_env().unwrap(),
            "evictable bytes exceed the configured budget: {stats}"
        );
    }
    for (row_p, row_r) in parallel_rows.iter().zip(&reference) {
        for (p, r) in row_p.iter().zip(row_r) {
            assert!(same_answer(p, r), "warm id-matrix diverged: {p} vs {r}");
        }
    }
}

/// One-shot calls through throwaway engines agree with a long-lived shared
/// session queried from multiple threads at once — the service scenario.
#[test]
fn shared_session_matches_one_shot_calls_under_concurrency() {
    let family = random_family(0xBEEF, 5);
    let opts = tiny();
    let engine = Arc::new(ContainmentEngine::with_search(opts.clone()));
    std::thread::scope(|scope| {
        for (i, h) in family.iter().enumerate() {
            let engine = &engine;
            let family = &family;
            let opts = &opts;
            scope.spawn(move || {
                for (j, k) in family.iter().enumerate() {
                    let shared = engine.check(h, k);
                    let one_shot = ContainmentEngine::with_search(opts.clone()).check(h, k);
                    match (&shared, &one_shot) {
                        (Containment::Unknown(_), Containment::Unknown(_)) => {}
                        _ => assert!(
                            same_answer(&shared, &one_shot),
                            "pair [{i}][{j}]: shared {shared} vs one-shot {one_shot}"
                        ),
                    }
                }
            });
        }
    });
}
