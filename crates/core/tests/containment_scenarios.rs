//! Scenario tests for the containment procedures: schema-evolution style
//! changes, duality of answers, and consistency between the procedures.

use shapex_core::baseline::enumerate_counter_example;
use shapex_core::det::{characterizing_graph, det_containment};
use shapex_core::embedding::embeds;
use shapex_core::general::{general_containment, GeneralOptions};
use shapex_core::shex0::{shex0_containment, Shex0Options};
use shapex_core::unfold::{enumerate_members, SearchOptions};
use shapex_core::Containment;
use shapex_shex::typing::validates;
use shapex_shex::{parse_schema, Schema};

fn schema(text: &str) -> Schema {
    parse_schema(text).expect("schema parses")
}

const LIBRARY_V1: &str = "\
Book -> title::Literal, author::Author+, isbn::Literal?
Author -> name::Literal
Literal -> EMPTY
";

#[test]
fn widening_an_interval_is_backward_compatible() {
    let v1 = schema(LIBRARY_V1);
    // v2 allows books without authors (author* instead of author+).
    let v2 = schema(
        "Book -> title::Literal, author::Author*, isbn::Literal?\n\
         Author -> name::Literal\n\
         Literal -> EMPTY\n",
    );
    // `+` puts both schemas outside DetShEx0-, so use the ShEx0 procedure.
    let forward = shex0_containment(&v1, &v2, &Shex0Options::quick());
    assert!(forward.is_contained(), "v1 ⊆ v2 via embedding");
    let backward = shex0_containment(&v2, &v1, &Shex0Options::quick());
    let witness = backward.counter_example().expect("v2 ⊄ v1");
    assert!(validates(witness, &v2));
    assert!(!validates(witness, &v1));
}

#[test]
fn adding_a_mandatory_field_is_not_backward_compatible() {
    let v1 = schema(LIBRARY_V1);
    let v2 = schema(
        "Book -> title::Literal, author::Author+, isbn::Literal?, publisher::Literal\n\
         Author -> name::Literal\n\
         Literal -> EMPTY\n",
    );
    let result = shex0_containment(&v1, &v2, &Shex0Options::quick());
    let witness = result
        .counter_example()
        .expect("old books lack a publisher");
    assert!(validates(witness, &v1) && !validates(witness, &v2));
    // The new schema is contained in the old one after dropping the unknown
    // label... it is not, because v1 forbids the publisher edge entirely.
    let reverse = shex0_containment(&v2, &v1, &Shex0Options::quick());
    assert!(reverse.counter_example().is_some());
}

#[test]
fn renaming_a_type_preserves_the_language() {
    let original = schema(LIBRARY_V1);
    let renamed = schema(
        "Publication -> title::Literal, author::Writer+, isbn::Literal?\n\
         Writer -> name::Literal\n\
         Literal -> EMPTY\n",
    );
    assert!(shex0_containment(&original, &renamed, &Shex0Options::quick()).is_contained());
    assert!(shex0_containment(&renamed, &original, &Shex0Options::quick()).is_contained());
}

#[test]
fn det_containment_and_general_procedure_agree_on_fig1_variants() {
    let base = schema(
        "Bug -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    );
    let variants = [
        // email dropped from User: strictly smaller language.
        "Bug -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal\n\
         Employee -> name::Literal, email::Literal\n",
        // reproducedBy removed: also smaller.
        "Bug -> descr::Literal, reportedBy::User, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
        // related becomes mandatory-free: same as base (star unchanged).
        "Bug -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    ];
    for text in variants {
        let variant = schema(text);
        if !variant.is_det_shex0_minus() {
            continue;
        }
        for (h, k) in [(&base, &variant), (&variant, &base)] {
            let det = det_containment(h, k).unwrap();
            let gen = general_containment(h, k, &GeneralOptions::quick());
            // The exact procedure and the budgeted one must never contradict
            // each other.
            if det.is_contained() {
                assert!(!gen.is_not_contained());
            }
            if let Containment::NotContained(witness) = &det {
                assert!(validates(witness, h) && !validates(witness, k));
                assert!(!gen.is_contained());
            }
        }
    }
}

#[test]
fn baseline_agrees_with_det_containment_on_tiny_schemas() {
    let pairs = [
        ("A -> p::L\nL -> EMPTY\n", "A -> p::L?\nL -> EMPTY\n"),
        ("A -> p::L, q::L?\nL -> EMPTY\n", "A -> p::L\nL -> EMPTY\n"),
        ("A -> p::L*\nL -> EMPTY\n", "A -> p::L\nL -> EMPTY\n"),
        ("A -> p::A*\n", "A -> p::A?\n"),
    ];
    for (ht, kt) in pairs {
        let h = schema(ht);
        let k = schema(kt);
        let smart = shex0_containment(&h, &k, &Shex0Options::quick());
        let brute = enumerate_counter_example(&h, &k, 3, 3, 300_000);
        match (&smart, &brute) {
            (Containment::Contained, Some(witness)) => panic!(
                "procedure says contained but the baseline found a counter-example:\n{witness}\nfor H:\n{h}K:\n{k}"
            ),
            (Containment::NotContained(_), None) => {
                // The smart procedure may find larger counter-examples than
                // the baseline's tiny bound; verify the certificate instead.
                let witness = smart.counter_example().unwrap();
                assert!(validates(witness, &h) && !validates(witness, &k));
            }
            _ => {}
        }
    }
}

#[test]
fn characterizing_graph_distinguishes_interval_strength() {
    // H uses ? on a type referenced through *; strengthening or weakening the
    // interval in K flips containment exactly as Corollary 4.3 predicts.
    let h = schema("Root -> kids::Node*\nNode -> flag::Leaf?\nLeaf -> EMPTY\n");
    let g = characterizing_graph(&h).unwrap();
    for (k_text, contained) in [
        (
            "Root -> kids::Node*\nNode -> flag::Leaf?\nLeaf -> EMPTY\n",
            true,
        ),
        (
            "Root -> kids::Node*\nNode -> flag::Leaf*\nLeaf -> EMPTY\n",
            true,
        ),
        (
            "Root -> kids::Node*\nNode -> flag::Leaf\nLeaf -> EMPTY\n",
            false,
        ),
        ("Root -> kids::Node*\nNode -> EMPTY\nLeaf -> EMPTY\n", false),
        (
            "Root -> kids::Node*, extra::Leaf\nNode -> flag::Leaf?\nLeaf -> EMPTY\n",
            false,
        ),
    ] {
        let k = schema(k_text);
        let result = det_containment(&h, &k).unwrap();
        assert_eq!(result.is_contained(), contained, "K:\n{k}");
        // The characterizing graph alone already decides the answer.
        assert_eq!(
            validates(&g, &k),
            contained,
            "characterizing graph vs K:\n{k}"
        );
    }
}

#[test]
fn unfolding_enumeration_respects_budgets() {
    let s = schema("Root -> kids::Node*\nNode -> flag::Leaf?\nLeaf -> EMPTY\n");
    let root = s.find_type("Root").unwrap();
    let tight = SearchOptions {
        max_graph_nodes: 3,
        max_trees: 4,
        ..SearchOptions::quick()
    };
    let graphs = enumerate_members(&s, root, &tight);
    assert!(!graphs.is_empty());
    assert!(graphs.iter().all(|g| g.node_count() <= 3));
    assert!(graphs.iter().all(|g| validates(g, &s)));
}

#[test]
fn embeddings_compose_across_three_schemas() {
    // Lemma 3.3 + transitivity: H ≼ K and K ≼ L give H ⊆ L.
    let h = schema("T -> p::L\nL -> EMPTY\n");
    let k = schema("T -> p::L?\nL -> EMPTY\n");
    let l = schema("T -> p::L*\nL -> EMPTY\n");
    let hg = h.to_shape_graph().unwrap();
    let kg = k.to_shape_graph().unwrap();
    let lg = l.to_shape_graph().unwrap();
    assert!(embeds(&hg, &kg).is_some());
    assert!(embeds(&kg, &lg).is_some());
    assert!(embeds(&hg, &lg).is_some(), "embeddings compose");
    assert!(embeds(&lg, &kg).is_none());
}
