//! Engine-equivalence property suite: the worklist + bitset simulation
//! engine and the retained full-rescan fix-point of `baseline.rs` must
//! compute *identical* maximal simulations on random graph pairs — in both
//! the polynomial (all-basic-interval) regime and the backtracking-witness
//! regime of general intervals, and regardless of whether the parallel
//! initial pass is enabled.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shapex_core::baseline::max_simulation_baseline;
use shapex_core::simulation::{max_simulation_with, SimulationOptions};
use shapex_graph::generate::{sample_from_shape, GraphGen};
use shapex_graph::Graph;
use shapex_rbe::Interval;

/// Assert that all three engine configurations agree with the oracle.
fn engines_agree(g: &Graph, h: &Graph) {
    let oracle = max_simulation_baseline(g, h);
    let sequential = max_simulation_with(g, h, &SimulationOptions::sequential());
    assert_eq!(oracle, sequential, "worklist engine differs from baseline");
    let parallel = max_simulation_with(
        g,
        h,
        &SimulationOptions {
            threads: 3,
            parallel_threshold: 0,
        },
    );
    assert_eq!(oracle, parallel, "parallel initial pass differs");
}

/// A random graph with *general* intervals, the regime where the witness
/// check falls back to the backtracking solver.
fn general_graph(rng: &mut StdRng, nodes: usize, labels: usize, edges: usize) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<_> = (0..nodes).map(|i| g.node(&format!("v{i}"))).collect();
    for _ in 0..edges {
        let s = ids[rng.gen_range(0..ids.len())];
        let t = ids[rng.gen_range(0..ids.len())];
        let label = format!("p{}", rng.gen_range(0..labels));
        let occur = match rng.gen_range(0..6) {
            0 => Interval::ONE,
            1 => Interval::OPT,
            2 => Interval::STAR,
            3 => Interval::exactly(rng.gen_range(1..=3u64)),
            4 => {
                let lo = rng.gen_range(0..=2u64);
                Interval::bounded(lo, lo + rng.gen_range(0..=2u64))
            }
            _ => Interval::at_least(rng.gen_range(0..=2u64)),
        };
        g.add_edge_with(s, label.as_str(), occur, t);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engines_agree_on_random_shape_pairs(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = GraphGen::new(7, 3).out_degree(2.0).shape(&mut rng);
        let h = GraphGen::new(6, 3).out_degree(2.5).shape(&mut rng);
        engines_agree(&g, &h);
        // Reflexive pairs exercise dense relations with many survivors.
        engines_agree(&h, &h);
    }

    #[test]
    fn engines_agree_on_instances_vs_shapes(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = GraphGen::new(5, 3).out_degree(2.0).shape(&mut rng);
        let instance = sample_from_shape(&mut rng, &shape, 24);
        engines_agree(&instance, &shape);
        engines_agree(&shape, &instance);
    }

    #[test]
    fn engines_agree_on_general_interval_pairs(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = general_graph(&mut rng, 5, 3, 9);
        let h = general_graph(&mut rng, 5, 3, 9);
        engines_agree(&g, &h);
        engines_agree(&h, &g);
    }

    #[test]
    fn engines_agree_on_mixed_regimes(seed in 0u64..100_000) {
        // A basic-interval graph against a general-interval graph: per-pair
        // dispatch between the flow and the backtracking witness solver.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = GraphGen::new(6, 3).out_degree(2.0).simple(&mut rng);
        let h = general_graph(&mut rng, 5, 3, 8);
        engines_agree(&g, &h);
    }
}

#[test]
fn engines_agree_on_disconnected_and_degenerate_graphs() {
    let empty = Graph::new();
    let mut isolated = Graph::new();
    isolated.node("lonely");
    let mut rng = StdRng::seed_from_u64(7);
    let shape = GraphGen::new(4, 2).out_degree(2.0).shape(&mut rng);
    engines_agree(&empty, &shape);
    engines_agree(&shape, &empty);
    engines_agree(&isolated, &shape);
    engines_agree(&shape, &isolated);
    engines_agree(&empty, &empty);
}
