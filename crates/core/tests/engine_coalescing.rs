//! Single-flight coalescing suite: duplicate concurrent `(h, k)` checks must
//! collapse onto one computation — provably, via the engine's own counters —
//! and coalesced verdicts must be indistinguishable from the ones a fresh,
//! uncontended engine computes.
//!
//! Run in release in CI (`cargo test -p shapex-core --release --test
//! engine_coalescing`) so the hammer exercises real interleavings rather
//! than debug-build lockstep.

use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::unfold::SearchOptions;
use shapex_core::Containment;
use shapex_graph::generate::GraphGen;
use shapex_shex::{parse_schema, Schema};

mod common;
use common::{same_answer, shex0_oracle, tiny};

/// The bug-tracker schema of the paper's Figure 1 (deterministic).
fn bug_tracker() -> Schema {
    parse_schema(
        "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
         User -> name::Literal, email::Literal?\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("the Figure 1 schema parses")
}

/// The introduction's refactoring of Figure 1: `User` split into email-less
/// `User1` and email-ful `User2`, `Bug` split accordingly — same language,
/// no longer deterministic, so containment goes through the budgeted search.
fn bug_tracker_split() -> Schema {
    parse_schema(
        "Bug1 -> descr::Literal, reportedBy::User1, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
         Bug2 -> descr::Literal, reportedBy::User2, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
         User1 -> name::Literal\n\
         User2 -> name::Literal, email::Literal\n\
         Employee -> name::Literal, email::Literal\n",
    )
    .expect("the split schema parses")
}

/// A search budget big enough that the original-vs-split check exhausts it
/// over tens of milliseconds (it budget-exhausts at any size — the pair is
/// language-equal, so no counter-example exists). The computation must take
/// long enough that every hammer thread reaches the in-flight table while
/// the leader's search is still running, even under scheduler noise; with a
/// microsecond-fast check the followers could miss the flight and the
/// counter assertions below would flake.
fn heavy() -> SearchOptions {
    SearchOptions {
        max_candidates: 20_000,
        random_samples: 2_000,
        ..SearchOptions::default()
    }
}

/// Eight threads issue the identical check simultaneously; the engine's own
/// counters prove exactly one search ran: seven queries coalesced, and the
/// hammered engine did precisely the pool builds and validation misses of a
/// fresh engine answering the check once.
#[test]
fn eight_identical_checks_run_one_search() {
    let h = bug_tracker();
    let k = bug_tracker_split();

    // The uncontended reference: one engine, one check.
    let reference_engine =
        ContainmentEngine::with_options(EngineOptions::default().with_search(heavy()));
    let (rh, rk) = (reference_engine.register(&h), reference_engine.register(&k));
    let reference = reference_engine.check_ids(rh, rk);
    let reference_stats = reference_engine.stats();
    assert_eq!(reference_stats.coalesced_queries, 0, "no concurrency yet");
    assert!(
        matches!(reference, Containment::Unknown(_)),
        "the Figure 1 pair is language-equal; the search must exhaust its budget"
    );

    const THREADS: usize = 8;
    let engine = Arc::new(ContainmentEngine::with_options(
        EngineOptions::default().with_search(heavy()),
    ));
    let ids = (engine.register(&h), engine.register(&k));
    let barrier = Barrier::new(THREADS);
    let verdicts: Vec<Containment> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = &engine;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    engine.check_ids(ids.0, ids.1)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|t| t.join().expect("hammer thread panicked"))
            .collect()
    });

    for verdict in &verdicts {
        assert!(
            same_answer(verdict, &reference),
            "coalesced verdict diverged: {verdict} vs {reference}"
        );
    }
    let stats = engine.stats();
    assert_eq!(
        stats.coalesced_queries,
        THREADS as u64 - 1,
        "every follower must share the leader's flight: {stats}"
    );
    assert_eq!(
        stats.pools_built, reference_stats.pools_built,
        "eight concurrent checks must build pools exactly once: {stats}"
    );
    assert_eq!(
        stats.validate_misses, reference_stats.validate_misses,
        "eight concurrent checks must validate like a single check: {stats}"
    );
}

/// The same hammer with coalescing switched off: the verdicts still agree
/// (correctness never depended on the flight table), but no query coalesces.
#[test]
fn uncoalesced_hammer_agrees_without_sharing() {
    let h = bug_tracker();
    let k = bug_tracker_split();
    // The quick budget suffices here — no timing-sensitive counter claims.
    let engine = Arc::new(ContainmentEngine::with_options(
        EngineOptions::default()
            .with_search(SearchOptions::quick())
            .with_coalesce(false),
    ));
    let reference = ContainmentEngine::with_search(SearchOptions::quick()).check(&h, &k);
    let ids = (engine.register(&h), engine.register(&k));
    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let barrier = &barrier;
            let reference = &reference;
            scope.spawn(move || {
                barrier.wait();
                let verdict = engine.check_ids(ids.0, ids.1);
                assert!(
                    same_answer(&verdict, reference),
                    "uncoalesced verdict diverged: {verdict} vs {reference}"
                );
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(stats.coalesced_queries, 0, "knob-gated off: {stats}");
    assert_eq!(stats.coalesced_pools, 0, "knob-gated off: {stats}");
}

/// Random ShEx₀ pairs via the shape-graph round-trip, as in the concurrency
/// suite: the full basic-interval mix, many outside `DetShEx₀⁻`.
fn random_pair(seed: u64) -> (Schema, Schema) {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = Schema::from_shape_graph(&GraphGen::new(4, 3).out_degree(2.0).shape(&mut rng));
    let k = Schema::from_shape_graph(&GraphGen::new(4, 3).out_degree(2.0).shape(&mut rng));
    (h, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Four threads racing the identical random check through one coalescing
    /// engine answer exactly what a fresh serial engine answers — and both
    /// match the memo-free oracle (Unknown compared by variant: the oracle
    /// does not model engine-side budget accounting).
    #[test]
    fn coalesced_verdicts_equal_fresh_engine_verdicts(seed in 0u64..100_000) {
        let (h, k) = random_pair(seed);
        let opts = tiny();
        let fresh = ContainmentEngine::with_search(opts.clone()).check(&h, &k);

        let engine = Arc::new(ContainmentEngine::with_options(
            EngineOptions::default().with_search(opts.clone()),
        ));
        let ids = (engine.register(&h), engine.register(&k));
        let barrier = Barrier::new(4);
        let verdicts: Vec<Containment> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = &engine;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        engine.check_ids(ids.0, ids.1)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|t| t.join().expect("racer panicked"))
                .collect()
        });

        for verdict in &verdicts {
            prop_assert!(
                same_answer(verdict, &fresh),
                "seed {}: coalesced {} vs fresh {}",
                seed, verdict, fresh
            );
        }
        let oracle = shex0_oracle(&h, &k, &opts);
        match (&fresh, &oracle) {
            (Containment::Unknown(_), Containment::Unknown(_)) => {}
            _ => prop_assert!(
                same_answer(&fresh, &oracle),
                "seed {}: engine {} vs oracle {}",
                seed, fresh, oracle
            ),
        }
    }
}
