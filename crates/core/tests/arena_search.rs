//! Arena-equivalence suite: the arena-backed, deduplicating candidate
//! pipeline must be observationally identical to the retained memo-free
//! baseline — same witnesses node/edge-for-edge on random schema pairs, and
//! dedup/caps must interact exactly like the historical enumeration
//! (deduplication shares storage; it never drops a candidate the budget
//! would have admitted).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::baseline::search_counter_example_baseline;
use shapex_core::engine::ContainmentEngine;
use shapex_core::unfold::{enumerate_members, search_counter_example, SearchOptions, Unfolder};
use shapex_graph::generate::GraphGen;
use shapex_shex::typing::validates;
use shapex_shex::{parse_schema, Schema};

mod common;
use common::{graph_key, tiny};

/// Random RBE₀ schemas via random shape graphs (Proposition 3.2), the same
/// generator the session-equivalence suite uses.
fn random_schema(rng: &mut StdRng, nodes: usize, labels: usize) -> Schema {
    let shape = GraphGen::new(nodes, labels).out_degree(2.0).shape(rng);
    Schema::from_shape_graph(&shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: the arena-backed search (one-shot wrapper and
    /// warm engine alike) returns the *identical* witness graph —
    /// node-for-node, edge-for-edge, including node names — as the retained
    /// baseline, or agrees that none exists within the budget.
    #[test]
    fn arena_search_returns_the_baseline_witness(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_schema(&mut rng, 5, 3);
        let k = random_schema(&mut rng, 4, 3);
        let opts = tiny();
        for (a, b) in [(&h, &k), (&k, &h)] {
            let baseline = search_counter_example_baseline(a, b, &opts);
            let arena = search_counter_example(a, b, &opts);
            match (&baseline, &arena) {
                (None, None) => {}
                (Some(base), Some(found)) => {
                    prop_assert_eq!(graph_key(base), graph_key(found));
                    prop_assert!(validates(found, a));
                    prop_assert!(!validates(found, b));
                }
                _ => prop_assert!(
                    false,
                    "baseline found={} arena found={}",
                    baseline.is_some(),
                    arena.is_some()
                ),
            }
            // A warm engine (second identical query over filled pools and
            // memos) must return the same witness again.
            let engine = ContainmentEngine::with_search(opts.clone());
            let cold = engine.counter_example(a, b);
            let warm = engine.counter_example(a, b);
            prop_assert_eq!(
                cold.as_ref().map(graph_key),
                baseline.as_ref().map(graph_key)
            );
            prop_assert_eq!(
                warm.as_ref().map(graph_key),
                baseline.as_ref().map(graph_key)
            );
        }
    }

    /// Every enumerated pool member is a real member of `L(schema)` — the
    /// certified-by-construction fast path may never admit a non-member.
    #[test]
    fn enumerated_members_all_validate(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng, 5, 3);
        let opts = tiny();
        for root in schema.types() {
            for graph in enumerate_members(&schema, root, &opts) {
                prop_assert!(validates(&graph, &schema));
            }
        }
    }
}

/// Dedup shares storage between structurally identical subtrees; it must not
/// change *which* candidates a budget admits. With `max_candidates = M`, the
/// enumeration returns exactly the first `M` candidates of the uncapped
/// order — in particular the M-th (last) one is present, not dropped.
#[test]
fn dedup_never_drops_the_last_candidate_below_max_candidates() {
    // Four optional edges → 16 distinct member graphs of depth 1.
    let schema = parse_schema("Root -> a::L?, b::L?, c::L?, d::L?\nL -> EMPTY\n").unwrap();
    let root = schema.find_type("Root").unwrap();
    let uncapped = SearchOptions {
        max_depth: 2,
        max_candidates: 1_000,
        ..SearchOptions::default()
    };
    let full = enumerate_members(&schema, root, &uncapped);
    assert!(full.len() >= 16, "expected a rich pool, got {}", full.len());
    // Every candidate is distinct (the arena interns structurally identical
    // trees, so duplicates would collapse — there must be none to begin
    // with).
    let keys: Vec<String> = full.iter().map(graph_key).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), keys.len(), "enumeration produced duplicates");
    for cap in [1usize, 7, 15, 16] {
        let capped = enumerate_members(
            &schema,
            root,
            &SearchOptions {
                max_candidates: cap,
                ..uncapped.clone()
            },
        );
        assert_eq!(capped.len(), cap, "cap {cap} must be filled exactly");
        for (i, graph) in capped.iter().enumerate() {
            assert_eq!(
                graph_key(graph),
                keys[i],
                "candidate {i} under cap {cap} diverged from the uncapped order"
            );
        }
    }
}

/// The unfolder's memoisation is transparent: re-enumerating any
/// `(root, depth)` through a shared unfolder yields the same members as a
/// fresh one, and the shared arena grows only on first encounter.
#[test]
fn shared_unfolder_is_transparent_across_depths() {
    let schema = parse_schema("Root -> child::Mid*\nMid -> leaf::Leaf?\nLeaf -> EMPTY\n").unwrap();
    let root = schema.find_type("Root").unwrap();
    let mut shared = Unfolder::new();
    for depth in 1..=3usize {
        let opts = SearchOptions {
            max_depth: depth,
            ..SearchOptions::quick()
        };
        let from_shared: Vec<String> = shared
            .members(&schema, root, &opts)
            .iter()
            .map(|g| graph_key(g))
            .collect();
        let from_fresh: Vec<String> = enumerate_members(&schema, root, &opts)
            .iter()
            .map(graph_key)
            .collect();
        assert_eq!(from_shared, from_fresh, "depth {depth} members diverge");
    }
    let after_enumeration = shared.arena().len();
    // Asking for the deepest pool again must not intern anything new.
    let opts = SearchOptions {
        max_depth: 3,
        ..SearchOptions::quick()
    };
    let _ = shared.members(&schema, root, &opts);
    assert_eq!(shared.arena().len(), after_enumeration);
}
