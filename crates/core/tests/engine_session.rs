//! Session-equivalence property suite: the memoising
//! `ContainmentEngine` must answer exactly like the stateless paper
//! pipeline on random schema pairs — same verdicts *and* same witnesses —
//! whether the engine is cold, warm (second identical query), or running
//! its parallel candidate fan-out; and `check_matrix` must equal the N²
//! individual calls.
//!
//! The oracle is built from the retained memo-free pieces: `embeds` between
//! shape graphs, the `DetShEx₀⁻` characterizing-graph shortcut, and
//! `baseline::search_counter_example_baseline` (the original pooling-free
//! search), assembled exactly like `shex0_containment` before the engine
//! existed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_core::baseline::search_counter_example_baseline;
use shapex_core::engine::{ContainmentEngine, EngineOptions};
use shapex_core::general::general_containment;
use shapex_core::shex0::shex0_containment;
use shapex_core::Containment;
use shapex_core::UnknownReason;
use shapex_graph::generate::GraphGen;
use shapex_shex::{parse_schema, Schema};

mod common;
use common::{graph_key, same_answer, shex0_oracle, tiny};

/// Assert every engine configuration agrees with the oracle on a pair.
fn engines_agree(h: &Schema, k: &Schema) {
    let opts = tiny();
    let oracle = shex0_oracle(h, k, &opts);
    let one_shot = shex0_containment(h, k, &opts);

    // One-shot wrapper (throwaway engine) vs. the memo-free pipeline: the
    // verdict and, for NotContained, the exact witness must match. Unknown
    // reasons are engine-side information the oracle does not model, so they
    // are compared by variant only.
    match (&oracle, &one_shot) {
        (Containment::Unknown(_), Containment::Unknown(_)) => {}
        _ => assert!(
            same_answer(&oracle, &one_shot),
            "one-shot disagrees with the memo-free oracle:\n  oracle: {oracle}\n  engine: {one_shot}"
        ),
    }

    // A shared session answering the query twice: the warm pass must reuse
    // pools/memos and still answer identically.
    let session = ContainmentEngine::with_search(opts.clone());
    let cold = session.shex0(h, k);
    let misses_after_cold = session.stats().validate_misses;
    let warm = session.shex0(h, k);
    assert!(same_answer(&cold, &warm), "warm session changed its answer");
    assert_eq!(
        session.stats().validate_misses,
        misses_after_cold,
        "warm session re-validated a candidate"
    );
    assert!(
        same_answer(&one_shot, &cold),
        "session disagrees with one-shot"
    );

    // The parallel fan-out must not change anything.
    let parallel_opts = EngineOptions::builder()
        .search(opts)
        .threads(3)
        .parallel_threshold(1)
        .build();
    let parallel = ContainmentEngine::with_options(parallel_opts).shex0(h, k);
    assert!(
        same_answer(&cold, &parallel),
        "parallel candidate search changed the answer"
    );
}

/// Random RBE₀ schemas via random shape graphs (Proposition 3.2): the
/// round-trip gives schemas with the full basic-interval mix (`1 ? * +`),
/// many outside `DetShEx₀⁻`, so all three pipeline stages get exercised.
fn random_schema(rng: &mut StdRng, nodes: usize, labels: usize) -> Schema {
    let shape = GraphGen::new(nodes, labels).out_degree(2.0).shape(rng);
    Schema::from_shape_graph(&shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_oracle_on_random_pairs(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_schema(&mut rng, 5, 3);
        let k = random_schema(&mut rng, 4, 3);
        engines_agree(&h, &k);
        engines_agree(&k, &h);
        // Reflexive pairs resolve via embedding — the memoised fast path.
        engines_agree(&h, &h);
    }

    #[test]
    fn pooled_search_matches_baseline_search(seed in 0u64..100_000) {
        // The raw search entry point: same witness (or same absence), not
        // just the same verdict.
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_schema(&mut rng, 4, 2);
        let k = random_schema(&mut rng, 4, 2);
        let opts = tiny();
        let baseline = search_counter_example_baseline(&h, &k, &opts);
        let pooled = ContainmentEngine::with_search(opts.clone()).counter_example(&h, &k);
        match (&baseline, &pooled) {
            (None, None) => {}
            (Some(b), Some(p)) => prop_assert_eq!(graph_key(b), graph_key(p)),
            _ => prop_assert!(false, "baseline {:?} vs pooled {:?}", baseline.is_some(), pooled.is_some()),
        }
    }
}

#[test]
fn check_matrix_equals_individual_calls() {
    // A mixed family: DetShEx0-, plain ShEx0 (+ intervals), non-deterministic
    // ShEx0, and full ShEx (disjunction) — every dispatch route of `check`.
    let texts = [
        "T -> p::L?\nL -> EMPTY\n",
        "T -> p::L*\nL -> EMPTY\n",
        "T -> p::L+\nL -> EMPTY\n",
        "T -> p::L, p::L?\nL -> EMPTY\n",
        "T -> p::L | (p::L, p::L)\nL -> EMPTY\n",
    ];
    let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
    let opts = tiny();
    let matrix = ContainmentEngine::with_search(opts.clone()).check_matrix(&schemas);
    assert_eq!(matrix.len(), schemas.len());
    for (i, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), schemas.len());
        for (j, cell) in row.iter().enumerate() {
            // N² individual calls through fresh sessions...
            let fresh =
                ContainmentEngine::with_search(opts.clone()).check(&schemas[i], &schemas[j]);
            assert!(
                same_answer(cell, &fresh),
                "matrix[{i}][{j}] = {cell} but a fresh session answers {fresh}"
            );
            // ...and through the public one-shot function.
            let one_shot = general_containment(&schemas[i], &schemas[j], &opts);
            assert!(
                same_answer(cell, &one_shot),
                "matrix[{i}][{j}] = {cell} but general_containment answers {one_shot}"
            );
        }
    }
}

#[test]
fn unknown_reasons_distinguish_exhaustion_from_unexplorable_inputs() {
    let opts = tiny();
    // Contained non-deterministic pair without an embedding: every candidate
    // validates against k, so the budget runs dry with a positive count.
    let g = parse_schema("G -> a::Leaf*, b::Leaf*\nLeaf -> EMPTY\n").unwrap();
    let h = parse_schema(
        "H0 -> a::Leaf*\nH1 -> a::Leaf*, b::Leaf\nH2 -> a::Leaf*, b::Leaf, b::Leaf*\nLeaf -> EMPTY\n",
    )
    .unwrap();
    let exhausted = shex0_containment(&g, &h, &opts);
    match exhausted.unknown_reason() {
        Some(UnknownReason::BudgetExhausted { candidates, depth }) => {
            assert!(*candidates > 0);
            assert_eq!(*depth, opts.max_depth);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // Mandatory cycles everywhere (and a duplicated label keeping the pair
    // off the DetShEx0- shortcut): no type has a finite unfolding, so the
    // search inspects zero candidates. (`L(h)` still contains cyclic graphs
    // the unfolding search cannot reach, hence Unknown rather than
    // Contained.)
    let looped = parse_schema("T -> p::T, p::U\nU -> q::T\n").unwrap();
    let incomparable = parse_schema("T -> z::T\n").unwrap();
    let unexplorable = shex0_containment(&looped, &incomparable, &opts);
    assert_eq!(
        unexplorable.unknown_reason(),
        Some(&UnknownReason::NotSupported),
        "a searchless give-up must say NotSupported, got {unexplorable}"
    );
}

#[test]
fn session_reuses_pools_across_partners() {
    // The batch-workload claim behind check_matrix: h's unfolding pools are
    // built for the first partner and only *hit* for the second.
    let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
    let k1 = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
    let k2 = parse_schema("Root -> p::B, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
    let session = ContainmentEngine::with_search(tiny());
    let _ = session.shex0(&h, &k1);
    let built_after_first = session.stats().pools_built;
    assert!(built_after_first > 0);
    let _ = session.shex0(&h, &k2);
    assert_eq!(
        session.stats().pools_built,
        built_after_first,
        "the second partner must reuse h's pools"
    );
}
