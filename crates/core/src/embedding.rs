//! Simulations and embeddings between graphs (Section 3 of the paper).
//!
//! A binary relation `R ⊆ N_G × N_H` is a *simulation* of `G` in `H` when for
//! every `(n, m) ∈ R` there is a witness `λ : out_G(n) → out_H(m)` preserving
//! labels, relating targets by `R`, and satisfying the interval-sum condition
//! `⊕ {occur_G(e) | λ(e) = f} ⊆ occur_H(f)` for every `f ∈ out_H(m)`. An
//! *embedding* is a simulation whose domain covers all of `N_G`; we write
//! `G ≼ H`.
//!
//! Simulations are closed under union, so there is a unique maximal
//! simulation, computed by [`max_simulation`] — a thin wrapper over the
//! worklist + bitset engine in [`crate::simulation`].
//! The witness check is the interval-flow problem of `shapex_rbe::flow`:
//! polynomial when both neighbourhoods use basic intervals (Theorem 3.4) and
//! NP-complete for arbitrary intervals (Theorem 3.5), where a backtracking
//! search is used instead.

use std::collections::BTreeSet;

use shapex_graph::{Graph, NodeId};

pub use crate::simulation::Simulation;
use crate::simulation::{max_simulation_with, SimulationOptions};

/// An embedding of `G` in `H`: a maximal simulation whose domain is all of
/// `N_G` (Definition 3.1).
#[derive(Debug, Clone)]
pub struct Embedding {
    simulation: Simulation,
}

impl Embedding {
    /// The underlying (maximal) simulation.
    pub fn simulation(&self) -> &Simulation {
        &self.simulation
    }

    /// The nodes of `H` simulating `n` (never empty).
    pub fn images_of(&self, n: NodeId) -> &BTreeSet<NodeId> {
        self.simulation.simulators_of(n)
    }
}

/// Compute the maximal simulation of `G` in `H`.
///
/// Starting from the full relation `N_G × N_H`, pairs without a witness are
/// removed until no change occurs; since simulations are closed under union
/// the result is the unique maximal simulation. This is a thin wrapper over
/// the worklist + bitset engine of [`crate::simulation`] with default
/// options; the original full-rescan fix-point survives as the test oracle
/// [`crate::baseline::max_simulation_baseline`].
pub fn max_simulation(g: &Graph, h: &Graph) -> Simulation {
    max_simulation_with(g, h, &SimulationOptions::default())
}

/// Check whether `G` can be embedded in `H` (`G ≼ H`), returning the witness
/// embedding when it exists.
pub fn embeds(g: &Graph, h: &Graph) -> Option<Embedding> {
    let simulation = max_simulation(g, h);
    if simulation.is_embedding() {
        Some(Embedding { simulation })
    } else {
        None
    }
}

/// The language membership test of Section 3: a simple graph `G` belongs to
/// the language of a shape graph `H` iff `G ≼ H`.
pub fn graph_in_shape_language(g: &Graph, h: &Graph) -> bool {
    embeds(g, h).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_graph::parse_graph;
    use shapex_rbe::Interval;

    /// The shape graph H0 corresponding to the schema S0 of Figure 2.
    fn h0() -> Graph {
        parse_graph(
            "t0 -a-> t1\n\
             t1 -b-> t2\n\
             t1 -c-> t3\n\
             t2 -b[?]-> t2\n\
             t2 -c-> t3\n",
        )
        .unwrap()
    }

    /// The simple graph G0 of Figure 2.
    fn g0() -> Graph {
        parse_graph("n0 -a-> n1\nn1 -b-> n1\nn1 -c-> n2\n").unwrap()
    }

    #[test]
    fn figure_3_embedding() {
        let g = g0();
        let h = h0();
        let embedding = embeds(&g, &h).expect("G0 embeds in H0");
        let n0 = g.find_node("n0").unwrap();
        let n1 = g.find_node("n1").unwrap();
        let n2 = g.find_node("n2").unwrap();
        let t0 = h.find_node("t0").unwrap();
        let t1 = h.find_node("t1").unwrap();
        let t2 = h.find_node("t2").unwrap();
        let t3 = h.find_node("t3").unwrap();
        assert!(embedding.images_of(n0).contains(&t0));
        assert!(embedding.images_of(n1).contains(&t1));
        assert!(embedding.images_of(n1).contains(&t2));
        assert!(embedding.images_of(n2).contains(&t3));
        assert!(!embedding.images_of(n0).contains(&t3));
        // The reverse embedding does not hold: t0's mandatory a-edge targets a
        // node that needs both b and c edges, which n2 (no out-edges) lacks.
        assert!(embeds(&h, &g).is_none());
    }

    #[test]
    fn missing_mandatory_edge_blocks_simulation() {
        // H requires both a `descr` and a `reportedBy` edge.
        let h = parse_graph("Bug -descr-> Lit\nBug -reportedBy-> User\n").unwrap();
        let g_ok = parse_graph("b -descr-> l\nb -reportedBy-> u\n").unwrap();
        let g_missing = parse_graph("b -descr-> l\n").unwrap();
        assert!(embeds(&g_ok, &h).is_some());
        let sim = max_simulation(&g_missing, &h);
        let b = g_missing.find_node("b").unwrap();
        assert!(sim.simulators_of(b).is_empty());
        assert_eq!(sim.unsimulated_nodes(), vec![b]);
        assert!(embeds(&g_missing, &h).is_none());
    }

    #[test]
    fn upper_bounds_block_simulation() {
        // H allows at most one `p` edge (interval 1); G has two.
        let h = parse_graph("T -p-> U\n").unwrap();
        let g = parse_graph("x -p-> y1\nx -p-> y2\n").unwrap();
        assert!(embeds(&g, &h).is_none());
        // With a `*` interval both edges are fine.
        let h_star = parse_graph("T -p[*]-> U\n").unwrap();
        assert!(embeds(&g, &h_star).is_some());
        // With `?` a single edge is fine but two are not.
        let h_opt = parse_graph("T -p[?]-> U\n").unwrap();
        let g_one = parse_graph("x -p-> y\n").unwrap();
        assert!(embeds(&g_one, &h_opt).is_some());
        assert!(embeds(&g, &h_opt).is_none());
    }

    #[test]
    fn figure_4_embedding_holds_one_direction_only() {
        // G: a node with a* and b* edges. H: the "unfolded" variant where b*
        // is enumerated as ε | b | b⁺ across three nodes. L(G) = L(H), but
        // only H ≼ G holds; G ⋠ H (Figure 4 of the paper).
        let g = parse_graph("g -a[*]-> gleaf\ng -b[*]-> gleaf\n").unwrap();
        let h = parse_graph(
            "h0 -a[*]-> hleaf\n\
             h1 -a[*]-> hleaf\nh1 -b-> hleaf\n\
             h2 -a[*]-> hleaf\nh2 -b-> hleaf\nh2 -b[*]-> hleaf\n",
        )
        .unwrap();
        assert!(embeds(&h, &g).is_some(), "every H node is simulated by g");
        assert!(
            embeds(&g, &h).is_none(),
            "g is not simulated by any single H node"
        );
    }

    #[test]
    fn simulation_between_shape_graphs_with_general_intervals() {
        // Arbitrary intervals fall back to the backtracking witness search.
        let g = parse_graph("x -p[[2;2]]-> y\n").unwrap();
        let h_ok = parse_graph("T -p[[2;3]]-> U\n").unwrap();
        let h_bad = parse_graph("T -p[[3;4]]-> U\n").unwrap();
        assert!(embeds(&g, &h_ok).is_some());
        assert!(embeds(&g, &h_bad).is_none());
    }

    #[test]
    fn embedding_is_reflexive_and_composes() {
        let h = h0();
        assert!(embeds(&h, &h).is_some(), "every graph embeds in itself");
        let g = g0();
        // G0 ≼ H0 and H0 ≼ H0 ⊎ extra node: composition of embeddings.
        let mut h_extended = h0();
        let extra = h_extended.add_named_node("extra");
        let t0 = h_extended.find_node("t0").unwrap();
        h_extended.add_edge_with(extra, "z", Interval::STAR, t0);
        assert!(embeds(&h, &h_extended).is_some());
        assert!(embeds(&g, &h_extended).is_some());
    }

    #[test]
    fn empty_graph_embeds_everywhere() {
        let empty = Graph::new();
        let h = h0();
        assert!(embeds(&empty, &h).is_some());
        let sim = max_simulation(&empty, &h);
        assert!(sim.is_empty());
        assert!(sim.is_embedding(), "vacuously an embedding");
    }

    #[test]
    fn bug_tracker_instance_embeds_in_its_shape_graph() {
        let shape = parse_graph(
            "Bug -descr-> Literal\n\
             Bug -reportedBy-> User\n\
             Bug -reproducedBy[?]-> Employee\n\
             Bug -related[*]-> Bug\n\
             User -name-> Literal\n\
             User -email[?]-> Literal\n\
             Employee -name-> Literal\n\
             Employee -email-> Literal\n",
        )
        .unwrap();
        let instance = parse_graph(
            "bug1 -descr-> l1\nbug1 -reportedBy-> user1\nbug1 -related-> bug2\n\
             bug2 -descr-> l2\nbug2 -reportedBy-> user2\nbug2 -reproducedBy-> emp1\n\
             bug2 -related-> bug1\n\
             user1 -name-> l3\nuser2 -name-> l4\nuser2 -email-> l5\n\
             emp1 -name-> l6\nemp1 -email-> l7\n",
        )
        .unwrap();
        let embedding = embeds(&instance, &shape).expect("the Figure 1 instance is valid");
        let emp1 = instance.find_node("emp1").unwrap();
        let employee = shape.find_node("Employee").unwrap();
        let user = shape.find_node("User").unwrap();
        assert!(embedding.images_of(emp1).contains(&employee));
        assert!(embedding.images_of(emp1).contains(&user));
        // Remove a mandatory edge and the embedding disappears.
        let broken = parse_graph("bug1 -descr-> l1\n").unwrap();
        assert!(embeds(&broken, &shape).is_none());
    }
}
