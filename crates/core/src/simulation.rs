//! The worklist + bitset simulation engine.
//!
//! [`max_simulation_with`] computes the unique maximal simulation of `G` in
//! `H` (Section 3 of the paper). It replaces the naive fix-point of
//! [`crate::baseline::max_simulation_baseline`] — which rescans all
//! `|N_G| · |N_H|` pairs until nothing changes — with three structural
//! optimisations:
//!
//! * **Dense bitset relation.** The candidate relation is a row-major bitset
//!   (`⌈|N_H|/64⌉` words per `G`-node), so membership tests inside the
//!   witness check are single-word loads and the whole relation fits in
//!   cache for the workloads of the benchmark harness.
//! * **Interned labels end-to-end.** Both graphs' labels are mapped into one
//!   joint `u32` label space (via the per-graph interner of `shapex-graph`),
//!   so witness-candidate filtering is an integer compare, and a pair can be
//!   discarded without touching the flow solver when the out-label signature
//!   already rules a witness out: every out-label of `n` must appear on an
//!   out-edge of `m` (witnesses are total), and every mandatory out-label of
//!   `m` (lower bound ≥ 1) must appear on an out-edge of `n`.
//! * **Worklist refinement.** After the initial pass, removing a pair
//!   `(n, m)` only re-examines predecessor pairs `(n', m')` with
//!   `n' →ᵃ n` in `G` and `m' →ᵃ m` in `H` for a shared label `a` — the only
//!   pairs whose witness could have routed an edge onto `(n, m)` — instead
//!   of rescanning the full product. Pairs are deduplicated in the queue by
//!   a dirty bitset.
//!
//! Witness checks reuse one [`FlowScratch`] (or one per worker), so the
//! steady state performs no allocation. The initial pass over all candidate
//! pairs is embarrassingly parallel across `G`-rows;
//! [`SimulationOptions::threads`] gates a `std::thread` worker pool for it
//! (no external dependencies), and the result is identical regardless of the
//! thread count.

use std::collections::{BTreeSet, VecDeque};

use shapex_graph::{Graph, NodeId};
use shapex_rbe::{FlowScratch, Interval};

/// A simulation relation between the nodes of two graphs, stored as, for each
/// node of `G`, the set of nodes of `H` that simulate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Simulation {
    simulators: Vec<BTreeSet<NodeId>>,
}

impl Simulation {
    pub(crate) fn from_simulators(simulators: Vec<BTreeSet<NodeId>>) -> Simulation {
        Simulation { simulators }
    }

    /// The nodes of `H` that simulate `n`.
    pub fn simulators_of(&self, n: NodeId) -> &BTreeSet<NodeId> {
        &self.simulators[n.index()]
    }

    /// Whether the pair `(n, m)` belongs to the simulation.
    pub fn contains(&self, n: NodeId, m: NodeId) -> bool {
        self.simulators[n.index()].contains(&m)
    }

    /// Whether every node of `G` is simulated by at least one node of `H`,
    /// i.e. the simulation is an embedding.
    pub fn is_embedding(&self) -> bool {
        self.simulators.iter().all(|s| !s.is_empty())
    }

    /// The nodes of `G` that no node of `H` simulates.
    pub fn unsimulated_nodes(&self) -> Vec<NodeId> {
        self.simulators
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Total number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.simulators.iter().map(|s| s.len()).sum()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tuning knobs for [`max_simulation_with`].
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Worker threads for the initial candidate-pruning pass. `1` keeps the
    /// whole computation on the calling thread; the refinement loop is
    /// always sequential. The computed simulation does not depend on this.
    pub threads: usize,
    /// Minimum number of candidate pairs (`|N_G| · |N_H|`) before worker
    /// threads are actually spawned; below it the spawn overhead dominates.
    pub parallel_threshold: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            threads: 1,
            parallel_threshold: 4096,
        }
    }
}

impl SimulationOptions {
    /// Single-threaded engine (the default).
    pub fn sequential() -> SimulationOptions {
        SimulationOptions::default()
    }

    /// Use all available cores for the initial pass.
    pub fn parallel() -> SimulationOptions {
        SimulationOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..SimulationOptions::default()
        }
    }

    /// Use a fixed number of worker threads for the initial pass.
    pub fn with_threads(threads: usize) -> SimulationOptions {
        SimulationOptions {
            threads: threads.max(1),
            ..SimulationOptions::default()
        }
    }
}

/// A dense row-major bitset over `rows × cols` pairs.
///
/// The hot loops of the engine run on whole 64-pair words of this structure:
/// row scans skip all-set and all-clear words with a single compare, queue
/// deduplication tests and marks a pair with one word access, and row
/// cardinalities come from `count_ones` instead of bit-by-bit probes.
#[derive(Debug, Clone)]
struct BitRel {
    blocks: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl BitRel {
    fn empty(rows: usize, cols: usize) -> BitRel {
        let blocks = cols.div_ceil(64);
        BitRel {
            blocks,
            cols,
            bits: vec![0; rows * blocks],
        }
    }

    /// The valid-bit mask of a row's block: all ones except in the final
    /// block of a row, where the columns beyond `cols` are masked off.
    #[inline]
    fn block_mask(&self, block: usize) -> u64 {
        if block + 1 == self.blocks && self.cols % 64 != 0 {
            (1u64 << (self.cols % 64)) - 1
        } else {
            !0
        }
    }

    /// The words of row `n`.
    #[inline]
    fn row(&self, n: usize) -> &[u64] {
        &self.bits[n * self.blocks..(n + 1) * self.blocks]
    }

    #[inline]
    fn contains(&self, n: usize, m: usize) -> bool {
        self.bits[n * self.blocks + m / 64] & (1u64 << (m % 64)) != 0
    }

    /// Set the bit `(n, m)` if it is clear, with a single word access;
    /// returns whether the bit was newly set. The queue-deduplication
    /// primitive (the historical `contains` + `set` pair touched the word
    /// twice).
    #[inline]
    fn try_mark(&mut self, n: usize, m: usize) -> bool {
        let word = &mut self.bits[n * self.blocks + m / 64];
        let bit = 1u64 << (m % 64);
        if *word & bit != 0 {
            false
        } else {
            *word |= bit;
            true
        }
    }

    #[inline]
    fn remove(&mut self, n: usize, m: usize) {
        self.bits[n * self.blocks + m / 64] &= !(1u64 << (m % 64));
    }

    /// Number of set pairs in row `n` (`count_ones` per word, no bit scan).
    #[inline]
    fn row_count(&self, n: usize) -> usize {
        self.row(n).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the set columns of a row. All-clear words cost one compare.
    fn row_iter(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(n).iter().enumerate().flat_map(|(block, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(block * 64 + bit)
                }
            })
        })
    }

    /// Iterate the *clear* columns of a row (within `cols`). All-set words —
    /// the common case for the dense relations of the initial pass — cost
    /// one compare, so a mostly-full row is swept in `blocks` operations
    /// rather than `cols` bit probes.
    fn row_zeros(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(n)
            .iter()
            .enumerate()
            .flat_map(move |(block, &word)| {
                let mut zeros = !word & self.block_mask(block);
                std::iter::from_fn(move || {
                    if zeros == 0 {
                        None
                    } else {
                        let bit = zeros.trailing_zeros() as usize;
                        zeros &= zeros - 1;
                        Some(block * 64 + bit)
                    }
                })
            })
    }
}

/// A graph flattened into the joint label space: out-edges per node sorted by
/// label id, and in-edges per node grouped by label id, both in contiguous
/// arrays (no pointers to chase in the hot loops).
struct GraphIndex {
    node_count: usize,
    /// `node → [out_start[n], out_start[n+1])` slice of the `out_*` arrays.
    out_start: Vec<u32>,
    out_label: Vec<u32>,
    out_target: Vec<u32>,
    out_occur: Vec<Interval>,
    /// Whether all out-intervals of the node are basic (`1 ? + *`), choosing
    /// between the polynomial and the backtracking witness solver.
    all_basic: Vec<bool>,
    /// `node → [in_group_start[n], in_group_start[n+1])` slice of
    /// `in_groups`; each group is `(label, start, end)` into `in_source`.
    in_group_start: Vec<u32>,
    in_groups: Vec<(u32, u32, u32)>,
    in_source: Vec<u32>,
}

impl GraphIndex {
    fn build(graph: &Graph, joint: &[u32]) -> GraphIndex {
        let n = graph.node_count();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_label = Vec::with_capacity(graph.edge_count());
        let mut out_target = Vec::with_capacity(graph.edge_count());
        let mut out_occur = Vec::with_capacity(graph.edge_count());
        let mut all_basic = Vec::with_capacity(n);
        let mut slots: Vec<(u32, u32, Interval)> = Vec::new();
        out_start.push(0);
        for node in graph.nodes() {
            slots.clear();
            // The graph's grouped-adjacency cache is sorted by the graph's
            // own label ids; re-sort by joint id (a no-op for the `G` side,
            // whose local ids coincide with the joint ids).
            for (label, edges) in graph.out_groups(node) {
                let j = joint[label.index()];
                for &e in edges {
                    slots.push((j, graph.target(e).0, graph.occur(e)));
                }
            }
            slots.sort_unstable_by_key(|&(l, t, _)| (l, t));
            all_basic.push(slots.iter().all(|&(_, _, occur)| occur.is_basic()));
            for &(l, t, occur) in &slots {
                out_label.push(l);
                out_target.push(t);
                out_occur.push(occur);
            }
            out_start.push(out_label.len() as u32);
        }

        let mut in_group_start = Vec::with_capacity(n + 1);
        let mut in_groups: Vec<(u32, u32, u32)> = Vec::new();
        let mut in_source: Vec<u32> = Vec::with_capacity(graph.edge_count());
        let mut in_slots: Vec<(u32, u32)> = Vec::new();
        in_group_start.push(0);
        for node in graph.nodes() {
            in_slots.clear();
            for (label, edges) in graph.in_groups(node) {
                let j = joint[label.index()];
                for &e in edges {
                    in_slots.push((j, graph.source(e).0));
                }
            }
            in_slots.sort_unstable();
            let mut i = 0;
            while i < in_slots.len() {
                let label = in_slots[i].0;
                let start = in_source.len() as u32;
                while i < in_slots.len() && in_slots[i].0 == label {
                    in_source.push(in_slots[i].1);
                    i += 1;
                }
                in_groups.push((label, start, in_source.len() as u32));
            }
            in_group_start.push(in_groups.len() as u32);
        }

        GraphIndex {
            node_count: n,
            out_start,
            out_label,
            out_target,
            out_occur,
            all_basic,
            in_group_start,
            in_groups,
            in_source,
        }
    }

    #[inline]
    fn out_range(&self, node: usize) -> std::ops::Range<usize> {
        self.out_start[node] as usize..self.out_start[node + 1] as usize
    }

    fn in_groups_of(&self, node: usize) -> &[(u32, u32, u32)] {
        &self.in_groups[self.in_group_start[node] as usize..self.in_group_start[node + 1] as usize]
    }
}

/// Map both graphs' interned labels into one joint `u32` space: `G`'s ids
/// are reused verbatim and `H`-only labels get fresh ids, so string
/// comparisons happen once per distinct label instead of once per edge pair.
fn joint_label_maps(g: &Graph, h: &Graph) -> (Vec<u32>, Vec<u32>) {
    let g_map: Vec<u32> = (0..g.label_count() as u32).collect();
    let mut next = g.label_count() as u32;
    let h_map: Vec<u32> = h
        .label_ids()
        .map(|id| match g.find_label(h.label_of(id).as_str()) {
            Some(gid) => gid.0,
            None => {
                let fresh = next;
                next += 1;
                fresh
            }
        })
        .collect();
    (g_map, h_map)
}

/// The label-signature prune: `m` can only simulate `n` if every out-label
/// of `n` occurs on some out-edge of `m` (the witness is total on
/// `out_G(n)`), and every out-label of `m` carrying a lower bound ≥ 1 occurs
/// on some out-edge of `n` (a mandatory sink needs at least one source).
/// Both sides walk the label-sorted out slices in lockstep.
fn signature_allows(gi: &GraphIndex, hi: &GraphIndex, n: usize, m: usize) -> bool {
    let g_labels = &gi.out_label[gi.out_range(n)];
    let h_labels = &hi.out_label[hi.out_range(m)];
    let h_occurs = &hi.out_occur[hi.out_range(m)];
    // Every g-label must appear among the h-labels.
    let mut j = 0;
    let mut i = 0;
    while i < g_labels.len() {
        let label = g_labels[i];
        while j < h_labels.len() && h_labels[j] < label {
            j += 1;
        }
        if j == h_labels.len() || h_labels[j] != label {
            return false;
        }
        while i < g_labels.len() && g_labels[i] == label {
            i += 1;
        }
    }
    // Every mandatory h-label must appear among the g-labels.
    let mut i = 0;
    for (j, &label) in h_labels.iter().enumerate() {
        if h_occurs[j].lo() == 0 {
            continue;
        }
        while i < g_labels.len() && g_labels[i] < label {
            i += 1;
        }
        if i == g_labels.len() || g_labels[i] != label {
            return false;
        }
    }
    true
}

/// Whether `m` witnesses `n` with respect to `rel` (`None` stands for the
/// full relation of the initial pass, where every target pair is a
/// candidate).
fn has_witness(
    gi: &GraphIndex,
    hi: &GraphIndex,
    n: usize,
    m: usize,
    rel: Option<&BitRel>,
    scratch: &mut FlowScratch,
) -> bool {
    let gr = gi.out_range(n);
    let hr = hi.out_range(m);
    scratch.clear();
    scratch.sources.extend_from_slice(&gi.out_occur[gr.clone()]);
    scratch.sinks.extend_from_slice(&hi.out_occur[hr.clone()]);
    let g_label = &gi.out_label[gr.clone()];
    let g_target = &gi.out_target[gr];
    let h_label = &hi.out_label[hr.clone()];
    let h_target = &hi.out_target[hr];
    let compatible = |v: usize, u: usize| {
        g_label[v] == h_label[u]
            && match rel {
                None => true,
                Some(r) => r.contains(g_target[v] as usize, h_target[u] as usize),
            }
    };
    if gi.all_basic[n] && hi.all_basic[m] {
        scratch.solve_basic(compatible)
    } else {
        scratch.solve_general(compatible)
    }
}

/// One row of the initial pass: prune by label signature, then check the
/// witness against the full relation.
fn initial_row(
    gi: &GraphIndex,
    hi: &GraphIndex,
    n: usize,
    row: &mut [u64],
    scratch: &mut FlowScratch,
) {
    for m in 0..hi.node_count {
        if signature_allows(gi, hi, n, m) && has_witness(gi, hi, n, m, None, scratch) {
            row[m / 64] |= 1u64 << (m % 64);
        }
    }
}

/// Compute the maximal simulation of `G` in `H` with the worklist engine.
///
/// Algorithmically identical in outcome to the brute-force fix-point (the
/// maximal simulation is unique); see the module docs for what makes it
/// fast. `options` only affects how the initial pass is scheduled.
pub fn max_simulation_with(g: &Graph, h: &Graph, options: &SimulationOptions) -> Simulation {
    let (g_map, h_map) = joint_label_maps(g, h);
    let gi = GraphIndex::build(g, &g_map);
    let hi = GraphIndex::build(h, &h_map);
    let g_n = gi.node_count;
    let h_n = hi.node_count;

    let mut rel = BitRel::empty(g_n, h_n);
    let pairs = g_n * h_n;
    let threads = options.threads.min(g_n.max(1));
    if threads > 1 && pairs > 0 && pairs >= options.parallel_threshold {
        let blocks = rel.blocks;
        let rows_per_chunk = g_n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in rel.bits.chunks_mut(rows_per_chunk * blocks).enumerate() {
                let gi = &gi;
                let hi = &hi;
                scope.spawn(move || {
                    let mut scratch = FlowScratch::new();
                    for (offset, row) in chunk.chunks_mut(blocks).enumerate() {
                        let n = chunk_index * rows_per_chunk + offset;
                        initial_row(gi, hi, n, row, &mut scratch);
                    }
                });
            }
        });
    } else {
        let mut scratch = FlowScratch::new();
        let blocks = rel.blocks;
        for n in 0..g_n {
            let row = &mut rel.bits[n * blocks..(n + 1) * blocks];
            initial_row(&gi, &hi, n, row, &mut scratch);
        }
    }

    // Worklist refinement: whenever a pair (n, m) is found removed, the only
    // pairs whose witness may have depended on it are (n0, m0) with
    // n0 →ᵃ n and m0 →ᵃ m for a shared label a.
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    let mut dirty = BitRel::empty(g_n, h_n);
    let enqueue_predecessors =
        |rel: &BitRel, dirty: &mut BitRel, queue: &mut VecDeque<(u32, u32)>, n: usize, m: usize| {
            let g_groups = gi.in_groups_of(n);
            let h_groups = hi.in_groups_of(m);
            let mut j = 0;
            for &(label, gs, ge) in g_groups {
                while j < h_groups.len() && h_groups[j].0 < label {
                    j += 1;
                }
                if j == h_groups.len() {
                    break;
                }
                let (h_label, hs, he) = h_groups[j];
                if h_label != label {
                    continue;
                }
                for &n0 in &gi.in_source[gs as usize..ge as usize] {
                    let n0 = n0 as usize;
                    // Hoist the row: a drained G-row (no simulators left)
                    // skips its whole m0 sweep on a handful of word compares.
                    let rel_row = rel.row(n0);
                    if rel_row.iter().all(|&w| w == 0) {
                        continue;
                    }
                    for &m0 in &hi.in_source[hs as usize..he as usize] {
                        let m0 = m0 as usize;
                        if rel_row[m0 / 64] & (1u64 << (m0 % 64)) != 0 && dirty.try_mark(n0, m0) {
                            queue.push_back((n0 as u32, m0 as u32));
                        }
                    }
                }
            }
        };

    for n in 0..g_n {
        for m in rel.row_zeros(n) {
            enqueue_predecessors(&rel, &mut dirty, &mut queue, n, m);
        }
    }

    let mut scratch = FlowScratch::new();
    while let Some((n, m)) = queue.pop_front() {
        let (n, m) = (n as usize, m as usize);
        dirty.remove(n, m);
        if !rel.contains(n, m) {
            continue;
        }
        if !has_witness(&gi, &hi, n, m, Some(&rel), &mut scratch) {
            rel.remove(n, m);
            enqueue_predecessors(&rel, &mut dirty, &mut queue, n, m);
        }
    }

    let simulators: Vec<BTreeSet<NodeId>> = (0..g_n)
        .map(|n| {
            if rel.row_count(n) == 0 {
                BTreeSet::new()
            } else {
                rel.row_iter(n).map(|m| NodeId(m as u32)).collect()
            }
        })
        .collect();
    Simulation { simulators }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::max_simulation_baseline;
    use shapex_graph::parse_graph;

    fn engines_agree(g: &Graph, h: &Graph) -> Simulation {
        let baseline = max_simulation_baseline(g, h);
        let sequential = max_simulation_with(g, h, &SimulationOptions::sequential());
        assert_eq!(baseline, sequential, "worklist engine disagrees");
        let parallel = max_simulation_with(
            g,
            h,
            &SimulationOptions {
                threads: 4,
                parallel_threshold: 0,
            },
        );
        assert_eq!(baseline, parallel, "parallel initial pass disagrees");
        sequential
    }

    #[test]
    fn bitrel_word_kernels_respect_the_tail_mask() {
        // 70 columns: two blocks, 6 valid bits in the tail block.
        let mut rel = BitRel::empty(2, 70);
        for m in (0..70).filter(|m| m % 3 != 0) {
            assert!(rel.try_mark(0, m), "first mark of ({m}) must be new");
        }
        assert!(!rel.try_mark(0, 1), "re-marking a set bit reports not-new");
        let zeros: Vec<usize> = rel.row_zeros(0).collect();
        assert_eq!(zeros, (0..70).step_by(3).collect::<Vec<_>>());
        assert_eq!(rel.row_count(0), 70 - zeros.len());
        assert_eq!(
            rel.row_iter(0).collect::<Vec<_>>().len(),
            rel.row_count(0),
            "row_iter and count_ones agree"
        );
        // An untouched row: every valid column is a zero, none beyond cols.
        assert_eq!(rel.row_count(1), 0);
        assert_eq!(rel.row_zeros(1).count(), 70);
        rel.remove(0, 2);
        assert!(!rel.contains(0, 2));
        assert!(rel.contains(0, 4));
    }

    #[test]
    fn figure_2_simulation_matches_baseline() {
        let h =
            parse_graph("t0 -a-> t1\nt1 -b-> t2\nt1 -c-> t3\nt2 -b[?]-> t2\nt2 -c-> t3\n").unwrap();
        let g = parse_graph("n0 -a-> n1\nn1 -b-> n1\nn1 -c-> n2\n").unwrap();
        let sim = engines_agree(&g, &h);
        assert!(sim.is_embedding());
        assert!(sim.contains(g.find_node("n1").unwrap(), h.find_node("t2").unwrap()));
        // And the reverse direction, which is not an embedding.
        let reverse = engines_agree(&h, &g);
        assert!(!reverse.is_embedding());
    }

    #[test]
    fn label_signature_prune_is_only_a_prune() {
        // m has an extra optional label: still simulates.
        let g = parse_graph("x -p-> y\n").unwrap();
        let h = parse_graph("T -p-> U\nT -q[?]-> U\n").unwrap();
        let sim = engines_agree(&g, &h);
        assert!(sim.contains(g.find_node("x").unwrap(), h.find_node("T").unwrap()));
        // A mandatory extra label kills the pair.
        let h2 = parse_graph("T -p-> U\nT -q-> U\n").unwrap();
        let sim2 = engines_agree(&g, &h2);
        assert!(!sim2.contains(g.find_node("x").unwrap(), h2.find_node("T").unwrap()));
        // A g-label absent from m kills the pair even with interval ?.
        let g3 = parse_graph("x -p-> y\nx -r-> y\n").unwrap();
        let sim3 = engines_agree(&g3, &h);
        assert!(!sim3.contains(g3.find_node("x").unwrap(), h.find_node("T").unwrap()));
    }

    #[test]
    fn general_intervals_take_the_backtracking_path() {
        let g = parse_graph("x -p[[2;2]]-> y\n").unwrap();
        let h_ok = parse_graph("T -p[[2;3]]-> U\n").unwrap();
        let h_bad = parse_graph("T -p[[3;4]]-> U\n").unwrap();
        assert!(engines_agree(&g, &h_ok).is_embedding());
        assert!(!engines_agree(&g, &h_bad).is_embedding());
    }

    #[test]
    fn cyclic_refinement_terminates() {
        // A cycle whose pairs must be refined repeatedly.
        let g = parse_graph("a -p-> b\nb -p-> c\nc -p-> a\nc -q-> d\n").unwrap();
        let h = parse_graph("T -p-> T\nT -q[?]-> U\n").unwrap();
        let sim = engines_agree(&g, &h);
        assert!(sim.is_embedding());
        // Remove the q capability from H: the whole cycle must drain.
        let h2 = parse_graph("T -p-> T\n").unwrap();
        let sim2 = engines_agree(&g, &h2);
        assert!(!sim2.is_embedding());
        assert_eq!(sim2.unsimulated_nodes().len(), 4, "the removal propagates");
    }

    #[test]
    fn empty_graphs() {
        let empty = Graph::new();
        let h = parse_graph("T -p-> U\n").unwrap();
        assert!(engines_agree(&empty, &h).is_embedding());
        let sim = engines_agree(&h, &empty);
        assert!(!sim.is_embedding());
        assert!(engines_agree(&empty, &empty).is_embedding());
    }
}
