//! Cooperative cancellation and deadline tokens for long-running searches.
//!
//! The paper's decision procedures are intrinsically expensive (EXP-complete
//! for ShEx₀, coNEXP-hard in general), so every long-running loop in the
//! stack — candidate enumeration in [`crate::unfold`], the engine's
//! counter-example search, matrix row fan-out, the typing fixpoints of
//! `shapex-shex`, and the Presburger disjunct workers of
//! `shapex-presburger` — polls a [`CancelToken`] at bounded checkpoint
//! intervals. An expired deadline therefore surfaces as
//! [`crate::UnknownReason::DeadlineExceeded`] within one checkpoint interval
//! instead of wedging a worker for the rest of its search budget.
//!
//! The token is cooperative and purely advisory: firing it never corrupts
//! engine state. Memoised caches only ever record *completed* verdicts, so a
//! cancelled query leaves behind exactly the cache entries an uncancelled
//! prefix of the same search would have — observationally invisible, the
//! same argument that makes eviction safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shapex_presburger::CancelCheck;

/// A shareable cancellation/deadline token.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same flag, so a
/// token handed to a query can be fired from another thread, and a deadline
/// expiry observed by any worker latches the flag for every other worker
/// polling the same token.
///
/// Two trigger paths, checked in this order by [`CancelToken::fired`]:
///
/// 1. **Explicit cancellation** — [`CancelToken::cancel`] sets the flag; a
///    relaxed atomic load makes every subsequent poll observe it.
/// 2. **Deadline expiry** — when a deadline is set and the clock passes it,
///    the first poll that notices *latches the flag*, downgrading every
///    later poll (on any thread) to the cheap flag-only path.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    started: Instant,
}

impl CancelToken {
    /// A token with no deadline: it fires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::build(None)
    }

    /// A token that fires once the wall clock reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::build(Some(deadline))
    }

    /// A token that fires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        let now = Instant::now();
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: now.checked_add(timeout),
                started: now,
            }),
        }
    }

    fn build(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline,
                started: Instant::now(),
            }),
        }
    }

    /// Fire the token explicitly. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is already set (explicitly or by a previously
    /// observed deadline expiry). Never reads the clock — this is the cheap
    /// check for per-iteration polling.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }

    /// Whether the token has fired: the flag is set, or the deadline has
    /// passed (in which case the flag is latched so subsequent polls — on
    /// any thread — skip the clock read).
    pub fn fired(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Wall-clock time since the token was created (the query's age; this is
    /// the `elapsed` reported by
    /// [`crate::UnknownReason::DeadlineExceeded`]).
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// A borrowed [`CancelCheck`] over this token's flag and deadline, the
    /// form the `shapex-presburger` solver and `shapex-shex` typing seams
    /// poll. Expiry observed inside the solver latches this token's flag.
    pub fn check(&self) -> CancelCheck<'_> {
        match self.inner.deadline {
            Some(d) => CancelCheck::with_deadline(&self.inner.flag, d),
            None => CancelCheck::new(&self.inner.flag),
        }
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.fired());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.fired());
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_latches_the_flag() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert!(!token.is_cancelled(), "flag is only set once observed");
        assert!(token.fired());
        assert!(token.is_cancelled(), "expiry latches the flag");
    }

    #[test]
    fn distant_deadline_does_not_fire() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.fired());
        assert!(token.deadline().is_some());
    }

    #[test]
    fn solver_check_shares_the_flag() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        let check = token.check();
        assert!(check.fired(), "deadline visible through the solver view");
        assert!(token.is_cancelled(), "solver-side expiry latches the token");
    }
}
