//! `ContainmentEngine` — a memoising, parallel query session over the
//! containment procedures.
//!
//! The decision procedures of this crate ([`crate::det`], [`crate::shex0`],
//! [`crate::general`]) are exposed as stateless one-shot functions; called in
//! a loop — the batch schema-evolution workload, pairwise matrices over a
//! schema corpus, repeated queries from a service — every call re-derives
//! shape graphs, re-classifies schemas, re-enumerates candidate unfoldings,
//! and re-validates thousands of candidate graphs from scratch. The engine
//! is the session layer that keeps all of that:
//!
//! * **Schema registry.** [`ContainmentEngine::register`] interns a schema by
//!   a structural fingerprint and computes its [`SchemaClass`] and shape
//!   graph once; the registered copy's atom labels are re-interned through
//!   the engine's [`shapex_graph::LabelTable`], so every registered schema
//!   (and every candidate graph unfolded from one) shares one allocation per
//!   distinct predicate label.
//! * **Per-schema caches.** The characterizing graph (Lemma 4.2), the
//!   exhaustive per-type bag enumeration of the general sufficient check,
//!   and the enumerated/sampled unfolding pools — keyed by `(type, depth)`
//!   under the engine's fixed search budget — are each built once and reused
//!   across every partner schema.
//! * **Verdict memos.** `validates(candidate, S)` verdicts are memoised per
//!   registered schema under a structural fingerprint of the candidate
//!   graph, and shape-graph embedding verdicts per ordered schema pair. The
//!   depth-cumulative systematic search re-encounters the same candidates at
//!   every depth, so even a single one-shot query through a throwaway engine
//!   validates each distinct candidate once.
//! * **Parallel candidate search.** With [`EngineOptions::threads`] > 1 the
//!   memoised validate-against-`K` step fans each uncached pool slice across
//!   a `std::thread` worker pool (the same dependency-free scoped-thread
//!   pattern as the simulation engine's initial pass). Verdicts are
//!   deterministic, so the answers do not depend on the thread count.
//!
//! The one-shot functions still exist and behave identically — they
//! construct a throwaway engine — and the candidate order of the search is
//! exactly that of [`crate::baseline::search_counter_example_baseline`], the
//! retained memo-free reference, so witnesses are reproducible.
//!
//! ```
//! use shapex_core::engine::ContainmentEngine;
//! use shapex_shex::parse_schema;
//!
//! let v1 = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
//! let v2 = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
//! let mut engine = ContainmentEngine::new();
//! let matrix = engine.check_matrix(&[v1, v2]);
//! assert!(matrix[0][1].is_contained(), "? widens to *");
//! assert!(matrix[1][0].is_not_contained(), "* does not narrow to ?");
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_graph::{Graph, LabelTable};
use shapex_rbe::Bag;
use shapex_shex::typing::validates;
use shapex_shex::{Atom, Schema, SchemaClass, TypeId};

use crate::det::{characterizing_graph, NotDetShex0Minus};
use crate::embedding::embeds;
use crate::general::{exhaustive_bags, type_simulation_with_bags};
use crate::unfold::{enumerate_members_with, sample_member_with, SearchOptions};
use crate::Containment;

/// Tuning knobs for a [`ContainmentEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Budget of the counter-example search (depth, pool sizes, sample
    /// count, seed). Fixed for the lifetime of the engine so that cached
    /// unfolding pools remain valid for every query.
    pub search: SearchOptions,
    /// Worker threads for the candidate-validation fan-out. `1` keeps the
    /// whole search on the calling thread; answers do not depend on this.
    pub threads: usize,
    /// Minimum number of uncached candidates in a pool slice before worker
    /// threads are actually spawned; below it the spawn overhead dominates.
    pub parallel_threshold: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            search: SearchOptions::default(),
            threads: 1,
            parallel_threshold: 16,
        }
    }
}

impl EngineOptions {
    /// Single-threaded engine with the default search budget.
    pub fn sequential() -> EngineOptions {
        EngineOptions::default()
    }

    /// Use all available cores for candidate validation.
    pub fn parallel() -> EngineOptions {
        EngineOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..EngineOptions::default()
        }
    }

    /// Use a fixed number of worker threads for candidate validation.
    pub fn with_threads(threads: usize) -> EngineOptions {
        EngineOptions {
            threads: threads.max(1),
            ..EngineOptions::default()
        }
    }

    /// The smaller [`SearchOptions::quick`] budget, single-threaded.
    pub fn quick() -> EngineOptions {
        EngineOptions {
            search: SearchOptions::quick(),
            ..EngineOptions::default()
        }
    }

    /// Replace the search budget, keeping the threading configuration.
    pub fn with_search(self, search: SearchOptions) -> EngineOptions {
        EngineOptions { search, ..self }
    }
}

/// A handle to a schema registered with a [`ContainmentEngine`].
///
/// Handles are only meaningful for the engine that issued them; passing a
/// handle to a different engine panics (out of range) or silently refers to
/// whatever schema that engine registered under the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaId(u32);

impl SchemaId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cache-effectiveness counters of a [`ContainmentEngine`], for diagnostics
/// and tests. All counters are cumulative over the engine's lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Distinct schemas registered.
    pub schemas: usize,
    /// Candidate-validation verdicts answered from the memo.
    pub validate_hits: u64,
    /// Candidate-validation verdicts actually computed.
    pub validate_misses: u64,
    /// Shape-graph embedding verdicts answered from the memo.
    pub embed_hits: u64,
    /// Unfolding pools (enumerated or sampled) answered from the cache.
    pub pool_hits: u64,
    /// Unfolding pools built.
    pub pools_built: u64,
}

/// A registered schema plus everything derived from it once.
#[derive(Debug)]
struct SchemaEntry {
    schema: Schema,
    class: SchemaClass,
    /// Present iff the schema is RBE₀ (Proposition 3.2).
    shape_graph: Option<Graph>,
    /// The characterizing graph of Lemma 4.2, built on first demand
    /// (`DetShEx₀⁻` schemas only).
    characterizing: Option<Graph>,
}

/// An immutable, shareable pool of candidate member graphs.
type Pool = Arc<Vec<Graph>>;

/// Per-schema memo of `validates(candidate, schema)` verdicts, keyed by the
/// structural fingerprint of the candidate.
type ValidateMemo = BTreeMap<String, bool>;

/// The cached exhaustive bag enumeration of one schema (`None` = some
/// definition's language is infinite or too large, so the sufficient check
/// is never attempted for it).
type CachedBags = Option<Arc<Vec<Vec<Bag<Atom>>>>>;

/// What the bounded search learned about a pair.
struct SearchOutcome {
    witness: Option<Graph>,
    /// Candidate graphs actually validated against the right-hand schema.
    candidates: usize,
    depth: usize,
}

impl SearchOutcome {
    fn into_containment(self) -> Containment {
        match self.witness {
            Some(witness) => Containment::not_contained(witness),
            None if self.candidates == 0 => Containment::not_supported(),
            None => Containment::budget_exhausted(self.candidates, self.depth),
        }
    }
}

/// A reusable containment query session; see the [module docs](self) for
/// what is cached and when to hold one.
#[derive(Debug, Default)]
pub struct ContainmentEngine {
    options: EngineOptions,
    labels: LabelTable,
    schemas: Vec<SchemaEntry>,
    by_fingerprint: BTreeMap<String, SchemaId>,
    /// Indexed like `schemas`.
    validate_memo: Vec<ValidateMemo>,
    /// `(schema, root type, depth) → pool` of systematic unfoldings.
    enumerated: BTreeMap<(u32, TypeId, usize), Pool>,
    /// `schema → pool` of the ordered randomized-phase samples.
    sampled: BTreeMap<u32, Pool>,
    /// `schema → exhaustive per-type bag enumeration` (`None` = infinite).
    bags: BTreeMap<u32, CachedBags>,
    /// `(h, k) → whether the shape graph of h embeds in the one of k`.
    embeds_memo: BTreeMap<(u32, u32), bool>,
    /// `(h, k) → whether the general sufficient condition holds`.
    sufficient_memo: BTreeMap<(u32, u32), bool>,
    stats: EngineStats,
}

impl ContainmentEngine {
    /// An engine with the default options (default search budget,
    /// single-threaded).
    pub fn new() -> ContainmentEngine {
        ContainmentEngine::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: EngineOptions) -> ContainmentEngine {
        ContainmentEngine {
            options,
            ..ContainmentEngine::default()
        }
    }

    /// An engine with the given search budget (single-threaded) — the
    /// configuration the one-shot wrappers use.
    pub fn with_search(search: SearchOptions) -> ContainmentEngine {
        ContainmentEngine::with_options(EngineOptions::default().with_search(search))
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// A snapshot of the cache-effectiveness counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            schemas: self.schemas.len(),
            ..self.stats
        }
    }

    /// The shared predicate-label table (one allocation per distinct label
    /// across every registered schema).
    pub fn label_table(&self) -> &LabelTable {
        &self.labels
    }

    /// Register a schema with the session, returning its handle.
    ///
    /// Schemas are interned by a structural fingerprint (type names plus the
    /// full expression trees, so distinct expressions that merely render
    /// alike stay distinct): registering an identical schema again (even a
    /// different instance) returns the same handle and shares every cache.
    /// Registration clones the schema — the caller keeps ownership — adopts
    /// the clone's atom labels into the session's shared table, and computes
    /// the classification and shape graph, once.
    pub fn register(&mut self, schema: &Schema) -> SchemaId {
        let fingerprint = schema_fingerprint(schema);
        if let Some(&id) = self.by_fingerprint.get(&fingerprint) {
            return id;
        }
        let mut owned = schema.clone();
        owned.adopt_labels(&mut self.labels);
        let class = owned.classify_cached();
        let shape_graph = owned.shape_graph_cached().cloned();
        let id = SchemaId(self.schemas.len() as u32);
        self.schemas.push(SchemaEntry {
            schema: owned,
            class,
            shape_graph,
            characterizing: None,
        });
        self.validate_memo.push(ValidateMemo::new());
        self.by_fingerprint.insert(fingerprint, id);
        id
    }

    /// The engine's copy of a registered schema.
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()].schema
    }

    /// Decide `L(H) ⊆ L(K)` with the strongest applicable procedure — the
    /// session equivalent of [`crate::general::general_containment`].
    pub fn check(&mut self, h: &Schema, k: &Schema) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        self.check_ids(h, k)
    }

    /// [`ContainmentEngine::check`] for already-registered schemas.
    pub fn check_ids(&mut self, h: SchemaId, k: SchemaId) -> Containment {
        self.general_ids(h, k)
    }

    /// Batch pairwise containment: `matrix[i][j]` answers
    /// `L(schemas[i]) ⊆ L(schemas[j])` for every ordered pair, including the
    /// diagonal.
    ///
    /// This is the schema-evolution workload the session layer exists for:
    /// each schema's shape graph, classification, unfolding pools, and
    /// validation verdicts are built once and reused across all `N - 1`
    /// partners, instead of once per pair as `N²` one-shot calls would. The
    /// answers are identical to the `N²` individual [`ContainmentEngine::check`]
    /// calls (and to the one-shot functions).
    pub fn check_matrix(&mut self, schemas: &[Schema]) -> Vec<Vec<Containment>> {
        let ids: Vec<SchemaId> = schemas.iter().map(|s| self.register(s)).collect();
        ids.iter()
            .map(|&h| ids.iter().map(|&k| self.check_ids(h, k)).collect())
            .collect()
    }

    /// The session equivalent of [`crate::shex0::shex0_containment`].
    pub fn shex0(&mut self, h: &Schema, k: &Schema) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        self.shex0_ids(h, k)
    }

    /// The session equivalent of [`crate::general::general_containment`].
    pub fn general(&mut self, h: &Schema, k: &Schema) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        self.general_ids(h, k)
    }

    /// The session equivalent of [`crate::det::det_containment`]: polynomial
    /// containment for `DetShEx₀⁻` (Corollary 4.4).
    pub fn det(&mut self, h: &Schema, k: &Schema) -> Result<Containment, NotDetShex0Minus> {
        let h = self.register(h);
        let k = self.register(k);
        self.det_ids(h, k)
    }

    /// [`ContainmentEngine::det`] for already-registered schemas.
    pub fn det_ids(&mut self, h: SchemaId, k: SchemaId) -> Result<Containment, NotDetShex0Minus> {
        self.require_det_minus(h)?;
        self.require_det_minus(k)?;
        if self.embeds_cached(h, k) {
            Ok(Containment::Contained)
        } else {
            let witness = self.characterizing(h)?;
            debug_assert!(
                embeds(
                    &witness,
                    self.schemas[h.index()]
                        .shape_graph
                        .as_ref()
                        .expect("DetShEx0- schemas are RBE0")
                )
                .is_some(),
                "characterizing graph must belong to L(H)"
            );
            Ok(Containment::not_contained(witness))
        }
    }

    /// Search for a certified counter-example to `L(H) ⊆ L(K)` — the
    /// session equivalent of [`crate::unfold::search_counter_example`], with
    /// pooled unfoldings, memoised validation, and the optional parallel
    /// fan-out.
    pub fn counter_example(&mut self, h: &Schema, k: &Schema) -> Option<Graph> {
        let h = self.register(h);
        let k = self.register(k);
        self.search_ids(h, k).witness
    }

    fn require_det_minus(&self, id: SchemaId) -> Result<(), NotDetShex0Minus> {
        let entry = &self.schemas[id.index()];
        if entry.class == SchemaClass::DetShEx0Minus {
            Ok(())
        } else {
            Err(NotDetShex0Minus {
                violations: entry.schema.det_shex0_minus_violations(),
            })
        }
    }

    /// The `ShEx₀` procedure over registered schemas (Section 5 pipeline:
    /// embedding, characterizing-graph shortcut, bounded search).
    fn shex0_ids(&mut self, h: SchemaId, k: SchemaId) -> Containment {
        let (hc, kc) = (self.schemas[h.index()].class, self.schemas[k.index()].class);
        if hc == SchemaClass::ShEx || kc == SchemaClass::ShEx {
            return self.general_ids(h, k);
        }
        if self.embeds_cached(h, k) {
            return Containment::Contained;
        }
        if hc == SchemaClass::DetShEx0Minus && kc == SchemaClass::DetShEx0Minus {
            let witness = self.characterizing(h).expect("checked DetShEx0-");
            return Containment::not_contained(witness);
        }
        self.search_ids(h, k).into_containment()
    }

    /// The general procedure over registered schemas (Section 6 pipeline:
    /// delegation to ShEx₀, type-simulation sufficient check, bounded
    /// search).
    fn general_ids(&mut self, h: SchemaId, k: SchemaId) -> Containment {
        let both_rbe0 = self.schemas[h.index()].class != SchemaClass::ShEx
            && self.schemas[k.index()].class != SchemaClass::ShEx;
        if both_rbe0 {
            return self.shex0_ids(h, k);
        }
        if self.sufficient_cached(h, k) {
            return Containment::Contained;
        }
        self.search_ids(h, k).into_containment()
    }

    /// Whether the shape graph of `h` embeds in the shape graph of `k`
    /// (memoised). Both schemas must be RBE₀.
    fn embeds_cached(&mut self, h: SchemaId, k: SchemaId) -> bool {
        if let Some(&v) = self.embeds_memo.get(&(h.0, k.0)) {
            self.stats.embed_hits += 1;
            return v;
        }
        let hg = self.schemas[h.index()]
            .shape_graph
            .as_ref()
            .expect("RBE0 schema has a shape graph");
        let kg = self.schemas[k.index()]
            .shape_graph
            .as_ref()
            .expect("RBE0 schema has a shape graph");
        let v = embeds(hg, kg).is_some();
        self.embeds_memo.insert((h.0, k.0), v);
        v
    }

    /// The characterizing graph of a registered `DetShEx₀⁻` schema, built
    /// once.
    fn characterizing(&mut self, h: SchemaId) -> Result<Graph, NotDetShex0Minus> {
        if self.schemas[h.index()].characterizing.is_none() {
            let g = characterizing_graph(&self.schemas[h.index()].schema)?;
            self.schemas[h.index()].characterizing = Some(g);
        }
        Ok(self.schemas[h.index()]
            .characterizing
            .clone()
            .expect("filled above"))
    }

    /// Whether the general sufficient condition holds for `(h, k)`
    /// (memoised), with the exhaustive bag enumeration of `h` cached across
    /// partners.
    fn sufficient_cached(&mut self, h: SchemaId, k: SchemaId) -> bool {
        if let Some(&v) = self.sufficient_memo.get(&(h.0, k.0)) {
            return v;
        }
        let v = match self.exhaustive_bags_cached(h) {
            None => false,
            Some(bags) => type_simulation_with_bags(
                &self.schemas[h.index()].schema,
                &bags,
                &self.schemas[k.index()].schema,
            ),
        };
        self.sufficient_memo.insert((h.0, k.0), v);
        v
    }

    fn exhaustive_bags_cached(&mut self, h: SchemaId) -> CachedBags {
        if let Some(v) = self.bags.get(&h.0) {
            return v.clone();
        }
        let v = exhaustive_bags(&self.schemas[h.index()].schema).map(Arc::new);
        self.bags.insert(h.0, v.clone());
        v
    }

    /// The bounded counter-example search over registered schemas.
    ///
    /// Candidate order — and therefore the returned witness — is exactly
    /// that of [`crate::baseline::search_counter_example_baseline`]:
    /// systematic unfoldings per root and depth under the shared `examined`
    /// budget, then the ordered randomized samples.
    fn search_ids(&mut self, h: SchemaId, k: SchemaId) -> SearchOutcome {
        let opts = self.options.search.clone();
        let parallel = self.options.threads > 1;
        let mut examined = 0usize;
        let mut checked = 0usize;
        let roots: Vec<TypeId> = self.schemas[h.index()].schema.types().collect();

        // Systematic phase.
        for &root in &roots {
            for depth in 1..=opts.max_depth {
                let pool = self.enumerated_pool(h, root, depth, &opts);
                // The baseline increments `examined` per candidate and
                // abandons the pool once the count exceeds the budget, so at
                // most this many candidates of the pool get validated:
                let limit = pool.len().min(opts.max_candidates.saturating_sub(examined));
                let mut verdicts = parallel.then(|| vec![None; limit]);
                for (i, graph) in pool.iter().enumerate() {
                    examined += 1;
                    if examined > opts.max_candidates {
                        break;
                    }
                    let ok = match &mut verdicts {
                        Some(v) => self.verdict_at(k, &pool, v, i),
                        None => self.validate_one(k, graph),
                    };
                    checked += 1;
                    if !ok {
                        return SearchOutcome {
                            witness: Some(graph.clone()),
                            candidates: checked,
                            depth: opts.max_depth,
                        };
                    }
                }
            }
        }

        // Randomized phase (skipped entirely when the schema has no types,
        // like the baseline).
        if !roots.is_empty() {
            let pool = self.sampled_pool(h, &opts);
            let mut verdicts = parallel.then(|| vec![None; pool.len()]);
            for (i, graph) in pool.iter().enumerate() {
                let ok = match &mut verdicts {
                    Some(v) => self.verdict_at(k, &pool, v, i),
                    None => self.validate_one(k, graph),
                };
                checked += 1;
                if !ok {
                    return SearchOutcome {
                        witness: Some(graph.clone()),
                        candidates: checked,
                        depth: opts.max_depth,
                    };
                }
            }
        }
        SearchOutcome {
            witness: None,
            candidates: checked,
            depth: opts.max_depth,
        }
    }

    /// The parallel-mode verdict for `pool[i]`: if it is not resolved yet,
    /// fan out one *stripe* of following candidates
    /// (`threads × parallel_threshold`, clipped to `verdicts.len()`, the
    /// consumable prefix of the pool) across the workers. Striping bounds
    /// the eagerness: a witness at index `i` costs at most one stripe of
    /// extra validations instead of the whole pool.
    fn verdict_at(
        &mut self,
        k: SchemaId,
        pool: &[Graph],
        verdicts: &mut [Option<bool>],
        i: usize,
    ) -> bool {
        if let Some(v) = verdicts[i] {
            return v;
        }
        let stripe = (self.options.threads * self.options.parallel_threshold.max(1)).max(1);
        let end = (i + stripe).min(verdicts.len());
        for (offset, v) in self
            .validate_slice(k, &pool[i..end])
            .into_iter()
            .enumerate()
        {
            verdicts[i + offset] = Some(v);
        }
        verdicts[i].expect("stripe covers i")
    }

    /// The pool of valid members of `h` unfolded from `root` up to `depth` —
    /// [`crate::unfold::enumerate_members`] with the member-validation step
    /// routed through the memo, cached per `(schema, root, depth)`.
    fn enumerated_pool(
        &mut self,
        h: SchemaId,
        root: TypeId,
        depth: usize,
        opts: &SearchOptions,
    ) -> Pool {
        if let Some(pool) = self.enumerated.get(&(h.0, root, depth)) {
            self.stats.pool_hits += 1;
            return pool.clone();
        }
        self.stats.pools_built += 1;
        let scoped = SearchOptions {
            max_depth: depth,
            ..opts.clone()
        };
        let entry = &self.schemas[h.index()];
        let memo = &mut self.validate_memo[h.index()];
        let stats = &mut self.stats;
        let graphs = enumerate_members_with(&entry.schema, root, &scoped, &mut |g| {
            validate_memoised(&entry.schema, memo, stats, g)
        });
        let pool: Pool = Arc::new(graphs);
        self.enumerated.insert((h.0, root, depth), pool.clone());
        pool
    }

    /// The ordered randomized-sample pool of `h` —
    /// [`crate::unfold::sample_member`] over the baseline's exact RNG
    /// sequence, with the member-validation step routed through the memo,
    /// cached per schema.
    fn sampled_pool(&mut self, h: SchemaId, opts: &SearchOptions) -> Pool {
        if let Some(pool) = self.sampled.get(&h.0) {
            self.stats.pool_hits += 1;
            return pool.clone();
        }
        self.stats.pools_built += 1;
        let entry = &self.schemas[h.index()];
        let memo = &mut self.validate_memo[h.index()];
        let stats = &mut self.stats;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let roots: Vec<TypeId> = entry.schema.types().collect();
        let mut graphs = Vec::new();
        if !roots.is_empty() {
            let mut is_member = |g: &Graph| validate_memoised(&entry.schema, memo, stats, g);
            for _ in 0..opts.random_samples {
                let root = roots[rng.gen_range(0..roots.len())];
                if let Some(graph) =
                    sample_member_with(&entry.schema, root, &mut rng, opts, &mut is_member)
                {
                    graphs.push(graph);
                }
            }
        }
        let pool: Pool = Arc::new(graphs);
        self.sampled.insert(h.0, pool.clone());
        pool
    }

    /// One memoised `validates(graph, k)` verdict.
    fn validate_one(&mut self, k: SchemaId, graph: &Graph) -> bool {
        let entry = &self.schemas[k.index()];
        validate_memoised(
            &entry.schema,
            &mut self.validate_memo[k.index()],
            &mut self.stats,
            graph,
        )
    }

    /// Memoised verdicts for one stripe of candidates, with the uncached
    /// ones fanned across the engine's worker threads when there are enough
    /// of them (below `parallel_threshold` the spawn overhead dominates and
    /// the stripe is validated inline).
    fn validate_slice(&mut self, k: SchemaId, pool: &[Graph]) -> Vec<bool> {
        let entry = &self.schemas[k.index()];
        let memo = &mut self.validate_memo[k.index()];
        let mut keys: Vec<String> = pool.iter().map(candidate_key).collect();
        let mut verdicts: Vec<Option<bool>> =
            keys.iter().map(|key| memo.get(key).copied()).collect();
        let missing: Vec<usize> = verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| i)
            .collect();
        self.stats.validate_hits += (pool.len() - missing.len()) as u64;
        self.stats.validate_misses += missing.len() as u64;
        if !missing.is_empty() {
            let schema = &entry.schema;
            let workers = self.options.threads.min(missing.len());
            if workers > 1 && missing.len() >= self.options.parallel_threshold.max(1) {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = missing
                        .chunks(missing.len().div_ceil(workers))
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|&i| (i, validates(&pool[i], schema)))
                                    .collect::<Vec<(usize, bool)>>()
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (i, v) in handle.join().expect("validation worker panicked") {
                            verdicts[i] = Some(v);
                        }
                    }
                });
            } else {
                for &i in &missing {
                    verdicts[i] = Some(validates(&pool[i], schema));
                }
            }
            for &i in &missing {
                memo.insert(
                    std::mem::take(&mut keys[i]),
                    verdicts[i].expect("filled above"),
                );
            }
        }
        verdicts
            .into_iter()
            .map(|v| v.expect("resolved above"))
            .collect()
    }
}

/// A structural fingerprint of a schema: every type's name plus the `Debug`
/// rendering of its full expression tree. Unlike the `Display` rendering,
/// this keeps degenerate wrappers distinct — `Disj([e])` or `Concat([])`
/// print like plain `e` / `Disj([])` but denote different classes or
/// languages — so two schemas are interned together only when their
/// definitions are structurally identical.
fn schema_fingerprint(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}#", schema.type_count());
    for t in schema.types() {
        let _ = write!(out, "{}:{:?};", schema.type_name(t), schema.def(t));
    }
    out
}

/// A structural fingerprint of a candidate graph: node count plus every edge
/// as `source-label>target`. Validation semantics are independent of node
/// names, so structurally identical candidates (the same unfolding reached
/// at different depths or from different samples) share one memo slot.
fn candidate_key(graph: &Graph) -> String {
    let mut key = String::with_capacity(8 + graph.edge_count() * 12);
    let _ = write!(key, "{};", graph.node_count());
    for e in graph.edges() {
        let _ = write!(
            key,
            "{}-{}>{};",
            graph.source(e).0,
            graph.label(e),
            graph.target(e).0
        );
    }
    key
}

/// The memoised validation verdict, with split borrows so callers can hold
/// the schema entry and its memo at once.
fn validate_memoised(
    schema: &Schema,
    memo: &mut ValidateMemo,
    stats: &mut EngineStats,
    graph: &Graph,
) -> bool {
    let key = candidate_key(graph);
    if let Some(&v) = memo.get(&key) {
        stats.validate_hits += 1;
        return v;
    }
    stats.validate_misses += 1;
    let v = validates(graph, schema);
    memo.insert(key, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    fn quick_engine() -> ContainmentEngine {
        ContainmentEngine::with_options(EngineOptions::quick())
    }

    #[test]
    fn registration_interns_by_content() {
        let a = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let a_again = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let b = parse_schema("T -> p::L\nL -> EMPTY\n").unwrap();
        let mut engine = quick_engine();
        let ia = engine.register(&a);
        assert_eq!(engine.register(&a_again), ia);
        assert_ne!(engine.register(&b), ia);
        assert_eq!(engine.stats().schemas, 2);
        assert_eq!(engine.schema(ia).type_count(), 2);
    }

    #[test]
    fn registration_shares_label_allocations_across_schemas() {
        // Two independently parsed schemas use the same predicates; after
        // registration the engine's copies share one allocation per label.
        let a = parse_schema("T -> name::L, email::L?\nL -> EMPTY\n").unwrap();
        let b = parse_schema("S -> name::L, name::L\nL -> EMPTY\n").unwrap();
        let mut engine = quick_engine();
        let ia = engine.register(&a);
        let ib = engine.register(&b);
        let label_of = |s: &Schema, ty: &str| {
            let t = s.find_type(ty).unwrap();
            s.def(t).to_rbe0().unwrap().atoms()[0].0.label.clone()
        };
        let name_a = label_of(engine.schema(ia), "T");
        let name_b = label_of(engine.schema(ib), "S");
        assert_eq!(name_a.as_str(), "name");
        assert!(
            name_a.ptr_eq(&name_b),
            "registered schemas must share the session's label allocations"
        );
    }

    #[test]
    fn structurally_distinct_schemas_are_not_interned_together() {
        use shapex_rbe::Rbe;
        use shapex_shex::Atom;
        // `Disj([symbol])` renders like the bare symbol but is full ShEx
        // (outside RBE0); the fingerprint must keep the two entries apart so
        // `det` still rejects the wrapped one.
        let mut plain = Schema::new();
        let t = plain.add_type("T");
        let l = plain.add_type("L");
        plain.define(t, Rbe::symbol(Atom::new("p", l)));
        let mut wrapped = Schema::new();
        let t2 = wrapped.add_type("T");
        let l2 = wrapped.add_type("L");
        // Raw variant construction: the `Rbe::disj` smart constructor would
        // collapse the unary case.
        wrapped.define(t2, Rbe::Disj(vec![Rbe::symbol(Atom::new("p", l2))]));
        assert_eq!(format!("{plain}"), format!("{wrapped}"), "same rendering");
        let mut engine = quick_engine();
        let ip = engine.register(&plain);
        let iw = engine.register(&wrapped);
        assert_ne!(ip, iw, "distinct structure must get distinct entries");
        assert!(engine.det(&plain, &plain).is_ok());
        assert!(engine.det(&wrapped, &wrapped).is_err(), "not RBE0");
    }

    #[test]
    fn repeated_queries_hit_the_caches() {
        // A contained-but-unknown pair: the search exhausts its budget, so
        // the second identical query must be answered from warm pools and
        // memos without a single fresh validation.
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let mut engine = quick_engine();
        let first = engine.shex0(&h, &k);
        let after_first = engine.stats();
        assert!(after_first.validate_misses > 0);
        let second = engine.shex0(&h, &k);
        let after_second = engine.stats();
        assert_eq!(
            after_second.validate_misses, after_first.validate_misses,
            "warm session must not validate anything again"
        );
        assert!(after_second.pool_hits > after_first.pool_hits);
        assert_eq!(format!("{first}"), format!("{second}"));
    }

    #[test]
    fn matrix_matches_individual_checks() {
        let texts = [
            "T -> p::L?\nL -> EMPTY\n",
            "T -> p::L*\nL -> EMPTY\n",
            "T -> p::L\nL -> EMPTY\n",
        ];
        let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let mut engine = quick_engine();
        let matrix = engine.check_matrix(&schemas);
        for (i, row) in matrix.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let mut fresh = quick_engine();
                let one_shot = fresh.check(&schemas[i], &schemas[j]);
                assert_eq!(
                    format!("{cell}"),
                    format!("{one_shot}"),
                    "matrix[{i}][{j}] disagrees with the one-shot answer"
                );
            }
        }
        // Diagonal is always contained for these schemas.
        for (i, row) in matrix.iter().enumerate() {
            assert!(row[i].is_contained(), "matrix[{i}][{i}]");
        }
    }

    #[test]
    fn parallel_engine_answers_identically() {
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let sequential = quick_engine().shex0(&h, &k);
        let mut options = EngineOptions::quick();
        options.threads = 4;
        options.parallel_threshold = 1;
        let parallel = ContainmentEngine::with_options(options).shex0(&h, &k);
        assert_eq!(format!("{sequential}"), format!("{parallel}"));
        assert!(parallel.is_not_contained());
    }

    #[test]
    fn unknown_answers_carry_budget_reasons() {
        use crate::UnknownReason;
        // The Figure-1 original-vs-split pair: semantically contained, no
        // embedding, split is not DetShEx0-, no counter-example exists — the
        // budget runs dry.
        let original = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
             User -> name::Literal, email::Literal?\n",
        )
        .unwrap();
        let split = parse_schema(
            "Bug1 -> descr::Literal, reportedBy::User1, related::Bug1*, related::Bug2*\n\
             Bug2 -> descr::Literal, reportedBy::User2, related::Bug1*, related::Bug2*\n\
             User1 -> name::Literal\n\
             User2 -> name::Literal, email::Literal\n",
        )
        .unwrap();
        let answer = quick_engine().shex0(&original, &split);
        assert!(answer.is_unknown());
        match answer.unknown_reason().unwrap() {
            UnknownReason::BudgetExhausted { candidates, depth } => {
                assert!(*candidates > 0);
                assert_eq!(*depth, SearchOptions::quick().max_depth);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
