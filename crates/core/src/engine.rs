//! `ContainmentEngine` — a memoising, shared-state, parallel query session
//! over the containment procedures.
//!
//! The decision procedures of this crate ([`crate::det`], [`crate::shex0`],
//! [`crate::general`]) are exposed as stateless one-shot functions; called in
//! a loop — the batch schema-evolution workload, pairwise matrices over a
//! schema corpus, repeated queries from a service — every call re-derives
//! shape graphs, re-classifies schemas, re-enumerates candidate unfoldings,
//! and re-validates thousands of candidate graphs from scratch. The engine
//! is the session layer that keeps all of that:
//!
//! * **Schema registry.** [`ContainmentEngine::register`] interns a schema by
//!   a structural fingerprint and computes its [`SchemaClass`] and shape
//!   graph once; the registered copy's atom labels are re-interned through
//!   the engine's [`shapex_graph::SharedLabelTable`], so every registered
//!   schema (and every candidate graph unfolded from one) shares one
//!   allocation per distinct predicate label.
//! * **Per-schema caches.** The characterizing graph (Lemma 4.2), the
//!   exhaustive per-type bag enumeration of the general sufficient check,
//!   and the enumerated/sampled unfolding pools — keyed by `(type, depth)`
//!   under the engine's fixed search budget — are each built once and reused
//!   across every partner schema.
//! * **Verdict memos.** `validates(candidate, S)` verdicts are memoised per
//!   registered schema under a structural fingerprint of the candidate
//!   graph, and shape-graph embedding verdicts per ordered schema pair. The
//!   depth-cumulative systematic search re-encounters the same candidates at
//!   every depth, so even a single one-shot query through a throwaway engine
//!   validates each distinct candidate once.
//!
//! # Shared state and concurrency
//!
//! All of the above is logically read-mostly shared state — the procedures
//! are pure functions over registered schemas — so every query method takes
//! `&self`: the registry is an `RwLock`-guarded append-only vector of
//! [`Arc`]ed entries, per-schema caches sit behind `OnceLock`s and
//! `RwLock`ed maps inside each entry, pair memos live in sharded `RwLock`
//! maps, the label table is a lock-free-read interner, and the
//! [`EngineStats`] counters are atomics. A `ContainmentEngine` is therefore
//! `Send + Sync` (compile-time asserted): wrap it in an `Arc` and query it
//! from as many threads as you like — verdicts are deterministic, caches
//! only ever fill in with deterministic values, and a race at worst computes
//! a verdict twice before one copy wins the cache slot.
//!
//! Two parallel modes build on that:
//!
//! * **Parallel candidate search.** With [`EngineOptions::threads`] > 1 the
//!   memoised validate-against-`K` step fans each uncached pool slice across
//!   a `std::thread` worker pool (the same dependency-free scoped-thread
//!   pattern as the simulation engine's initial pass).
//! * **Parallel matrix rows.** With [`EngineOptions::matrix_threads`] > 1,
//!   [`ContainmentEngine::check_matrix`] fans its rows across a scoped
//!   worker pool over the shared caches (row workers validate inline so the
//!   two pools do not multiply). Verdicts are bit-identical to the serial
//!   engine in either mode.
//!
//! # Bounded memory
//!
//! Left alone, every cache above grows for the engine's lifetime — fine for
//! a batch job, fatal for a long-lived multi-tenant service. With
//! [`EngineOptions::cache_budget`] set, the engine keeps an accounted-byte
//! ledger (the [`crate::budget::CacheBudget`]/[`crate::budget::Weigh`]
//! seam): enumerated pools, validation memos, the pair memos, and the
//! per-schema unfolding arenas are size-accounted and stamped with an LRU
//! clock on every hit, and whenever the evictable total exceeds the budget
//! an epoch-LRU sweep drops the least-recently-used entries until the total
//! is back under half the budget. Eviction is **observationally invisible**
//! — every cache is a pure memo of a deterministic function, so a dropped
//! entry costs a recomputation, never a different verdict or witness (the
//! `engine_eviction` suite pins this against the unbounded engine and the
//! memo-free baseline). One-shot `OnceLock` caches (characterizing graphs,
//! sampled pools, exhaustive bag enumerations) and the registered schemas
//! are exempt but counted, so [`EngineStats`] reports the full footprint:
//! per-cache resident bytes, evictions, and bytes freed, next to the hit
//! ratios — the capacity-planning surface of a service deployment. The
//! default budget is `None` (unbounded): existing workloads pay only a few
//! atomic increments.
//!
//! The one-shot functions still exist and behave identically — they
//! construct a throwaway engine — and the candidate order of the search is
//! exactly that of [`crate::baseline::search_counter_example_baseline`], the
//! retained memo-free reference, so witnesses are reproducible.
//!
//! ```
//! use shapex_core::engine::ContainmentEngine;
//! use shapex_shex::parse_schema;
//!
//! let v1 = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
//! let v2 = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
//! let engine = ContainmentEngine::new();
//! let matrix = engine.check_matrix(&[v1, v2]);
//! assert!(matrix[0][1].is_contained(), "? widens to *");
//! assert!(matrix[1][0].is_not_contained(), "* does not narrow to ?");
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Duration;

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_graph::{Graph, Label, SharedLabelTable};
use shapex_presburger::SolverOptions;
use shapex_rbe::{Bag, Rbe};
use shapex_shex::typing::{validates_with, SolverTelemetry, ValidateScratch};
use shapex_shex::{Atom, Schema, SchemaClass, TypeId};

use crate::budget::{CacheBudget, CacheKind, Weigh};
use crate::cancel::CancelToken;
use crate::det::{characterizing_graph, NotDetShex0Minus};
use crate::embedding::embeds;
use crate::faults;
use crate::general::{exhaustive_bags, type_simulation_with_bags};
use crate::sync::{lock_or_recover, read_or_recover, write_or_recover};
use crate::unfold::{SearchOptions, SessionContext, Unfolder};
use crate::Containment;

pub use crate::matrix::ContainmentMatrix;

// The engine is shared across matrix-row workers, validation fan-outs, and
// service clients by `&self` / `Arc`; this is the compile-time statement of
// that contract (see the module docs).
shapex_graph::assert_send_sync!(ContainmentEngine, EngineOptions, EngineStats, SchemaId);

/// Tuning knobs for a [`ContainmentEngine`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`EngineOptions::builder`] (or start from [`EngineOptions::default`] and
/// mutate fields) so adding a knob is never a breaking change for
/// downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Budget of the counter-example search (depth, pool sizes, sample
    /// count, seed). Fixed for the lifetime of the engine so that cached
    /// unfolding pools remain valid for every query.
    pub search: SearchOptions,
    /// Worker threads for the candidate-validation fan-out. `1` keeps the
    /// whole search on the calling thread; answers do not depend on this.
    pub threads: usize,
    /// Minimum number of uncached candidates in a pool slice before worker
    /// threads are actually spawned; below it the spawn overhead dominates.
    pub parallel_threshold: usize,
    /// Worker threads for [`ContainmentEngine::check_matrix`] rows. `1`
    /// computes the matrix on the calling thread; above it, rows are fanned
    /// across a scoped pool sharing all caches (and the per-cell validation
    /// fan-out is disabled so the two pools do not multiply). Answers do not
    /// depend on this.
    pub matrix_threads: usize,
    /// Accounted-byte budget for the engine's evictable caches (enumerated
    /// pools, validation memos, pair memos, unfolding arenas). `None`
    /// (default) keeps every cache for the engine's lifetime; `Some(bytes)`
    /// triggers an epoch-LRU sweep whenever the evictable total exceeds the
    /// budget. Verdicts and witnesses do not depend on this — see the
    /// [module docs](self). Weights are documented approximations of heap
    /// footprint, not allocator ground truth.
    pub cache_budget: Option<u64>,
    /// Per-entry admission ceiling for the evictable caches: a single cache
    /// entry (one enumerated pool, one validation record, …) weighing more
    /// accounted bytes than this is used but never cached, so one oversized
    /// entry cannot evict the whole working set. `None` (default) admits
    /// everything. Verdicts do not depend on this.
    pub max_entry_bytes: Option<u64>,
    /// Coalesce duplicate concurrent queries: while one thread computes the
    /// verdict for a pair `(h, k)`, other threads asking the same ordered
    /// pair block on that computation and share its verdict instead of
    /// re-running the search (and cold enumerated pools are built once, not
    /// once per racer). Verdicts are deterministic, so coalescing is
    /// observationally invisible; `true` by default. [`EngineStats`] counts
    /// the wins in `coalesced_queries` / `coalesced_pools`.
    pub coalesce: bool,
    /// Presburger solver configuration for every acceptance check the
    /// engine's queries reach (the general sufficient condition and the
    /// arena's local-acceptance memo). The default honours the
    /// `SOLVER_THREADS` environment variable and stays serial without it.
    /// Verdicts do not depend on this.
    pub solver: SolverOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            search: SearchOptions::default(),
            threads: 1,
            parallel_threshold: 16,
            matrix_threads: 1,
            cache_budget: None,
            max_entry_bytes: None,
            coalesce: true,
            solver: SolverOptions::from_env(),
        }
    }
}

/// Builder for [`EngineOptions`] — the forward-compatible way to construct
/// options now that the struct is `#[non_exhaustive]`.
///
/// ```
/// use shapex_core::engine::EngineOptions;
///
/// let options = EngineOptions::builder()
///     .threads(4)
///     .matrix_threads(4)
///     .cache_budget(64 << 20) // 64 MiB across all evictable caches
///     .build();
/// assert_eq!(options.threads, 4);
/// assert_eq!(options.cache_budget, Some(64 << 20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineOptionsBuilder {
    options: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Replace the counter-example search budget.
    pub fn search(mut self, search: SearchOptions) -> Self {
        self.options.search = search;
        self
    }

    /// Worker threads for the candidate-validation fan-out (min 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads.max(1);
        self
    }

    /// Minimum uncached candidates before validation workers spawn (min 1).
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.options.parallel_threshold = threshold.max(1);
        self
    }

    /// Worker threads for matrix rows (min 1).
    pub fn matrix_threads(mut self, matrix_threads: usize) -> Self {
        self.options.matrix_threads = matrix_threads.max(1);
        self
    }

    /// Bound the evictable caches to an accounted-byte budget.
    pub fn cache_budget(mut self, bytes: u64) -> Self {
        self.options.cache_budget = Some(bytes);
        self
    }

    /// Remove the cache budget (the default): caches grow unboundedly.
    pub fn unbounded_cache(mut self) -> Self {
        self.options.cache_budget = None;
        self
    }

    /// Refuse to cache any single entry heavier than `bytes` accounted
    /// bytes (the admission policy of the cache budget).
    pub fn max_entry_bytes(mut self, bytes: u64) -> Self {
        self.options.max_entry_bytes = Some(bytes);
        self
    }

    /// Enable or disable single-flight coalescing of duplicate concurrent
    /// queries (enabled by default).
    pub fn coalesce(mut self, coalesce: bool) -> Self {
        self.options.coalesce = coalesce;
        self
    }

    /// Replace the Presburger solver configuration.
    pub fn solver(mut self, solver: SolverOptions) -> Self {
        self.options.solver = solver;
        self
    }

    /// Finish, yielding the configured [`EngineOptions`].
    pub fn build(self) -> EngineOptions {
        self.options
    }
}

impl EngineOptions {
    /// A builder over the default options.
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder::default()
    }

    /// Single-threaded engine with the default search budget.
    pub fn sequential() -> EngineOptions {
        EngineOptions::default()
    }

    /// Use all available cores — for the candidate-validation fan-out of
    /// single queries and for the matrix rows of
    /// [`ContainmentEngine::check_matrix`] (which runs its cells with inline
    /// validation, so the two pools never multiply).
    pub fn parallel() -> EngineOptions {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineOptions {
            threads: cores,
            matrix_threads: cores,
            ..EngineOptions::default()
        }
    }

    /// Use a fixed number of worker threads for candidate validation.
    pub fn with_threads(threads: usize) -> EngineOptions {
        EngineOptions {
            threads: threads.max(1),
            ..EngineOptions::default()
        }
    }

    /// The smaller [`SearchOptions::quick`] budget, single-threaded.
    pub fn quick() -> EngineOptions {
        EngineOptions {
            search: SearchOptions::quick(),
            ..EngineOptions::default()
        }
    }

    /// Replace the search budget, keeping the threading configuration.
    pub fn with_search(self, search: SearchOptions) -> EngineOptions {
        EngineOptions { search, ..self }
    }

    /// Replace the matrix-row worker count, keeping everything else.
    pub fn with_matrix_threads(self, matrix_threads: usize) -> EngineOptions {
        EngineOptions {
            matrix_threads: matrix_threads.max(1),
            ..self
        }
    }

    /// Replace the evictable-cache byte budget, keeping everything else.
    pub fn with_cache_budget(self, bytes: u64) -> EngineOptions {
        EngineOptions {
            cache_budget: Some(bytes),
            ..self
        }
    }

    /// Replace the Presburger solver configuration, keeping everything else.
    pub fn with_solver(self, solver: SolverOptions) -> EngineOptions {
        EngineOptions { solver, ..self }
    }

    /// Replace the coalescing knob, keeping everything else.
    pub fn with_coalesce(self, coalesce: bool) -> EngineOptions {
        EngineOptions { coalesce, ..self }
    }

    /// Replace the per-entry admission ceiling, keeping everything else.
    pub fn with_max_entry_bytes(self, bytes: u64) -> EngineOptions {
        EngineOptions {
            max_entry_bytes: Some(bytes),
            ..self
        }
    }
}

/// A handle to a schema registered with a [`ContainmentEngine`].
///
/// Handles are only meaningful for the engine that issued them; passing a
/// handle to a different engine panics (out of range) or silently refers to
/// whatever schema that engine registered under the same slot. Use
/// [`ContainmentEngine::is_registered`] to range-check foreign handles at a
/// service boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaId(u32);

impl SchemaId {
    fn index(self) -> usize {
        self.0 as usize
    }

    /// A handle from a raw registry slot — test-internal; the public way
    /// to obtain a handle is [`ContainmentEngine::register`].
    #[cfg(test)]
    pub(crate) fn from_index(index: u32) -> SchemaId {
        SchemaId(index)
    }
}

/// Cache-effectiveness and memory-footprint counters of a
/// [`ContainmentEngine`], for diagnostics and tests: an immutable snapshot
/// taken by [`ContainmentEngine::stats`] from the engine's internal
/// atomics. Hit/miss/eviction counters are cumulative over the engine's
/// lifetime; the `*_bytes` fields are the accounted resident footprint at
/// snapshot time. The [`fmt::Display`] impl renders per-memo hit/miss
/// ratios plus the memory line, the metrics a service surfaces.
///
/// `#[non_exhaustive]`: downstream crates read fields but cannot construct
/// the struct, so adding a counter is never a breaking change.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Distinct schemas registered.
    pub schemas: usize,
    /// Candidate-validation verdicts answered from the memo.
    pub validate_hits: u64,
    /// Candidate-validation verdicts actually computed.
    pub validate_misses: u64,
    /// Shape-graph embedding verdicts answered from the memo.
    pub embed_hits: u64,
    /// Shape-graph embedding verdicts actually computed.
    pub embed_misses: u64,
    /// Unfolding pools (enumerated or sampled) answered from the cache.
    pub pool_hits: u64,
    /// Unfolding pools built.
    pub pools_built: u64,
    /// Duplicate concurrent queries answered by waiting on another thread's
    /// in-flight computation of the same ordered pair instead of re-running
    /// the search (single-flight coalescing wins).
    pub coalesced_queries: u64,
    /// Duplicate concurrent pool enumerations that adopted another thread's
    /// in-flight build instead of building (or re-looking-up) the pool.
    pub coalesced_pools: u64,
    /// The configured evictable-cache budget (`None` = unbounded).
    pub cache_budget: Option<u64>,
    /// The configured per-entry admission ceiling (`None` = admit all).
    pub max_entry_bytes: Option<u64>,
    /// Cache entries refused by the admission policy (computed and used,
    /// but never cached, because they weighed more than `max_entry_bytes`).
    pub admission_rejections: u64,
    /// Accounted bytes resident in the enumerated-pool caches.
    pub pool_bytes: u64,
    /// Accounted bytes resident in the candidate-validation memos.
    pub validate_bytes: u64,
    /// Accounted bytes resident in the embeds/sufficient pair memos.
    pub pair_bytes: u64,
    /// Accounted bytes resident in the per-schema unfolding arenas.
    pub unfolder_bytes: u64,
    /// Accounted bytes resident in the session-wide shared candidate-bag
    /// cache.
    pub bag_bytes: u64,
    /// Accounted bytes in the pinned (counted, never evicted) caches:
    /// registered schemas, characterizing graphs, sampled pools, bag
    /// enumerations, and the session atom table.
    pub pinned_bytes: u64,
    /// Accounted bytes of the session-wide atom table — a subset of
    /// `pinned_bytes`, broken out because it is the one pinned cache that
    /// grows with the *union* of registered alphabets rather than with any
    /// single schema.
    pub atom_bytes: u64,
    /// Cache entries dropped by eviction sweeps.
    pub evictions: u64,
    /// Accounted bytes freed by eviction sweeps.
    pub evicted_bytes: u64,
    /// Eviction sweeps run (including sweeps that found nothing old).
    pub sweeps: u64,
    /// Queries that returned [`crate::UnknownReason::DeadlineExceeded`]
    /// because their cancellation token fired before the search reached a
    /// sound answer.
    pub deadline_exceeded: u64,
    /// Search branches (candidate loops, pool builds, sampled phases)
    /// abandoned at a cancellation checkpoint.
    pub cancelled_branches: u64,
    /// Presburger solver invocations (the RBE₀ fast paths never enter the
    /// solver and are not counted).
    pub solver_calls: u64,
    /// Cumulative solver search nodes across all invocations.
    pub solver_search_nodes: u64,
    /// Cumulative solver branches pruned by constraint propagation.
    pub solver_pruned_branches: u64,
}

impl EngineStats {
    /// Total accounted bytes in the evictable caches — the quantity the
    /// budget bounds.
    pub fn evictable_bytes(&self) -> u64 {
        self.pool_bytes
            + self.validate_bytes
            + self.pair_bytes
            + self.unfolder_bytes
            + self.bag_bytes
    }

    /// Total accounted bytes resident, evictable and pinned.
    pub fn resident_bytes(&self) -> u64 {
        self.evictable_bytes() + self.pinned_bytes
    }
}

/// `hits / (hits + misses)` as a percentage, `0` when nothing was asked.
fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schemas; validate memo {} hits / {} misses ({:.1}% hit); \
             embed memo {} hits / {} misses ({:.1}% hit); \
             pools {} hits / {} built ({:.1}% hit)",
            self.schemas,
            self.validate_hits,
            self.validate_misses,
            hit_rate(self.validate_hits, self.validate_misses),
            self.embed_hits,
            self.embed_misses,
            hit_rate(self.embed_hits, self.embed_misses),
            self.pool_hits,
            self.pools_built,
            hit_rate(self.pool_hits, self.pools_built),
        )?;
        write!(
            f,
            "; coalesced {} queries + {} pools",
            self.coalesced_queries, self.coalesced_pools,
        )?;
        write!(
            f,
            "; resident {} B evictable (pools {}, validate {}, pairs {}, unfolder {}, bags {}) \
             + {} B pinned ({} B atoms); budget {}; {} evictions freed {} B in {} sweeps",
            self.evictable_bytes(),
            self.pool_bytes,
            self.validate_bytes,
            self.pair_bytes,
            self.unfolder_bytes,
            self.bag_bytes,
            self.pinned_bytes,
            self.atom_bytes,
            match self.cache_budget {
                Some(limit) => format!("{limit} B"),
                None => "unbounded".to_string(),
            },
            self.evictions,
            self.evicted_bytes,
            self.sweeps,
        )?;
        if self.max_entry_bytes.is_some() || self.admission_rejections > 0 {
            write!(
                f,
                "; admission ceiling {}; {} entries refused",
                match self.max_entry_bytes {
                    Some(ceiling) => format!("{ceiling} B"),
                    None => "none".to_string(),
                },
                self.admission_rejections,
            )?;
        }
        if self.deadline_exceeded > 0 || self.cancelled_branches > 0 {
            write!(
                f,
                "; {} deadlines exceeded ({} branches cancelled)",
                self.deadline_exceeded, self.cancelled_branches,
            )?;
        }
        write!(
            f,
            "; presburger {} calls ({} nodes searched, {} branches pruned)",
            self.solver_calls, self.solver_search_nodes, self.solver_pruned_branches,
        )
    }
}

/// The engine's live counters: atomics, so `&self` queries from any number
/// of threads can tick them. [`ContainmentEngine::stats`] snapshots them
/// into the public [`EngineStats`]. Relaxed ordering is enough — counters
/// carry no synchronisation duty.
#[derive(Debug, Default)]
struct EngineCounters {
    validate_hits: AtomicU64,
    validate_misses: AtomicU64,
    embed_hits: AtomicU64,
    embed_misses: AtomicU64,
    pool_hits: AtomicU64,
    pools_built: AtomicU64,
    coalesced_queries: AtomicU64,
    coalesced_pools: AtomicU64,
    deadline_exceeded: AtomicU64,
    cancelled_branches: AtomicU64,
}

impl EngineCounters {
    fn tick(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self, schemas: usize, budget: &CacheBudget) -> EngineStats {
        EngineStats {
            schemas,
            validate_hits: self.validate_hits.load(Ordering::Relaxed),
            validate_misses: self.validate_misses.load(Ordering::Relaxed),
            embed_hits: self.embed_hits.load(Ordering::Relaxed),
            embed_misses: self.embed_misses.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pools_built: self.pools_built.load(Ordering::Relaxed),
            coalesced_queries: self.coalesced_queries.load(Ordering::Relaxed),
            coalesced_pools: self.coalesced_pools.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cancelled_branches: self.cancelled_branches.load(Ordering::Relaxed),
            cache_budget: budget.limit(),
            max_entry_bytes: budget.max_entry_bytes(),
            admission_rejections: budget.admission_rejections(),
            pool_bytes: budget.resident(CacheKind::Pools),
            validate_bytes: budget.resident(CacheKind::Validate),
            pair_bytes: budget.resident(CacheKind::Pairs),
            unfolder_bytes: budget.resident(CacheKind::Unfolder),
            bag_bytes: budget.resident(CacheKind::Bags),
            pinned_bytes: budget.resident(CacheKind::Pinned),
            atom_bytes: 0,
            evictions: budget.evictions(),
            evicted_bytes: budget.evicted_bytes(),
            sweeps: budget.sweeps(),
            solver_calls: 0,
            solver_search_nodes: 0,
            solver_pruned_branches: 0,
        }
    }
}

/// An immutable, shareable pool of candidate member graphs. The graphs
/// themselves are `Arc`ed: the unfolder builds one graph per distinct
/// candidate tree, and every pool (and every returned witness) shares those
/// allocations instead of materialising its own copies.
type Pool = Arc<Vec<Arc<Graph>>>;

/// One cached enumerated pool: the pool itself plus its accounting — the
/// bytes charged to the ledger at insertion (credited back verbatim on
/// eviction) and the LRU stamp refreshed on every hit.
#[derive(Debug)]
struct PoolSlot {
    pool: Pool,
    bytes: u64,
    stamp: AtomicU64,
}

/// The accounted weight of a pool: spine plus every member graph. Graphs
/// are `Arc`-shared with the unfolder and overlapping pools, so summing
/// full graph weights over-counts shared allocations — deliberately: the
/// budget bounds a conservative upper estimate, never an under-estimate.
fn pool_weight(pool: &[Arc<Graph>]) -> u64 {
    let spine = std::mem::size_of::<Vec<Arc<Graph>>>() + std::mem::size_of_val(pool);
    spine as u64 + pool.iter().map(|g| g.as_ref().weight_bytes()).sum::<u64>()
}

/// Per-schema memo of `validates(candidate, schema)` verdicts, keyed by a
/// 64-bit structural hash of the candidate with full structural comparison
/// on every bucket hit — lookups allocate nothing (the historical
/// implementation rendered a `String` key per lookup), and a hash collision
/// can only cost a comparison, never a wrong verdict. Each record carries
/// its charged bytes and LRU stamp for the eviction sweep.
#[derive(Debug, Default)]
struct ValidateMemo {
    buckets: HashMap<u64, Vec<ValidateRecord>>,
}

/// One memoised validation verdict plus its accounting.
#[derive(Debug)]
struct ValidateRecord {
    key: CandidateKey,
    verdict: bool,
    bytes: u64,
    stamp: AtomicU64,
}

/// The accounted weight of one validation record: the record itself, the
/// key's edge vector, and an allowance for the hash-bucket entry.
fn validate_record_weight(key: &CandidateKey) -> u64 {
    (std::mem::size_of::<ValidateRecord>()
        + key.edges.capacity() * std::mem::size_of::<(u32, Label, u32)>()
        + 16) as u64
}

/// The exact structural identity of a memoised candidate: node count plus
/// every edge as `(source, label, target)`. Node names are irrelevant to
/// validation, so structurally identical candidates share one slot.
#[derive(Debug)]
struct CandidateKey {
    nodes: u32,
    edges: Vec<(u32, Label, u32)>,
}

impl CandidateKey {
    fn of(graph: &Graph) -> CandidateKey {
        CandidateKey {
            nodes: graph.node_count() as u32,
            edges: graph
                .edges()
                .map(|e| (graph.source(e).0, graph.label(e).clone(), graph.target(e).0))
                .collect(),
        }
    }

    fn matches(&self, graph: &Graph) -> bool {
        self.nodes as usize == graph.node_count()
            && self.edges.len() == graph.edge_count()
            && graph.edges().zip(&self.edges).all(|(e, (s, label, t))| {
                graph.source(e).0 == *s && graph.target(e).0 == *t && graph.label(e) == label
            })
    }
}

/// The structural hash behind [`ValidateMemo`] lookups.
fn candidate_hash(graph: &Graph) -> u64 {
    let mut hasher = DefaultHasher::new();
    graph.node_count().hash(&mut hasher);
    for e in graph.edges() {
        graph.source(e).0.hash(&mut hasher);
        graph.label(e).hash(&mut hasher);
        graph.target(e).0.hash(&mut hasher);
    }
    hasher.finish()
}

impl ValidateMemo {
    /// A memoised verdict, refreshing the record's LRU stamp on a hit.
    fn get(&self, hash: u64, graph: &Graph, budget: &CacheBudget) -> Option<bool> {
        let record = self
            .buckets
            .get(&hash)?
            .iter()
            .find(|record| record.key.matches(graph))?;
        record.stamp.store(budget.touch(), Ordering::Relaxed);
        Some(record.verdict)
    }

    /// Insert a verdict, charging the ledger only when the insertion wins
    /// (a racing thread may have stored the same verdict first).
    fn insert(&mut self, hash: u64, graph: &Graph, verdict: bool, budget: &CacheBudget) {
        let bucket = self.buckets.entry(hash).or_default();
        if bucket.iter().any(|record| record.key.matches(graph)) {
            return; // a racing thread computed the same verdict first
        }
        let key = CandidateKey::of(graph);
        let bytes = validate_record_weight(&key);
        if !budget.admits(bytes) {
            return; // oversized record: use the verdict, skip the memo
        }
        bucket.push(ValidateRecord {
            key,
            verdict,
            bytes,
            stamp: AtomicU64::new(budget.touch()),
        });
        budget.charge(CacheKind::Validate, bytes);
    }

    /// Drop every record whose key matches `graph`'s structure, crediting
    /// the ledger; returns the bytes freed. The targeted-invalidation path
    /// for evolving graphs — one candidate leaves, the rest stay warm.
    fn remove(&mut self, hash: u64, graph: &Graph, budget: &CacheBudget) -> u64 {
        let Some(bucket) = self.buckets.get_mut(&hash) else {
            return 0;
        };
        let mut freed = 0u64;
        bucket.retain(|record| {
            if record.key.matches(graph) {
                freed += record.bytes;
                false
            } else {
                true
            }
        });
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        budget.credit(CacheKind::Validate, freed);
        freed
    }
}

/// The cached exhaustive bag enumeration of one schema (`None` = some
/// definition's language is infinite or too large, so the sufficient check
/// is never attempted for it).
type CachedBags = Option<Arc<Vec<Vec<Bag<Atom>>>>>;

/// The accounted weight of a cached bag enumeration: spines plus a
/// per-distinct-atom allowance for each bag's count map.
fn bags_weight(bags: &[Vec<Bag<Atom>>]) -> u64 {
    let per_type: usize = bags
        .iter()
        .map(|per_type| {
            std::mem::size_of::<Vec<Bag<Atom>>>()
                + per_type
                    .iter()
                    .map(|bag| {
                        std::mem::size_of::<Bag<Atom>>()
                            + bag.distinct() * (std::mem::size_of::<(Atom, u64)>() + 32)
                    })
                    .sum::<usize>()
        })
        .sum();
    (std::mem::size_of::<Vec<Vec<Bag<Atom>>>>() + per_type) as u64
}

/// A registered schema plus everything derived from it — the derivations
/// computed at registration are plain fields (immutable thereafter), the
/// on-demand ones live behind their own synchronisation so partner queries
/// on different threads fill them without an exclusive engine borrow.
#[derive(Debug)]
struct SchemaEntry {
    schema: Arc<Schema>,
    class: SchemaClass,
    /// Present iff the schema is RBE₀ (Proposition 3.2).
    shape_graph: Option<Graph>,
    /// The characterizing graph of Lemma 4.2, built on first demand
    /// (`DetShEx₀⁻` schemas only).
    characterizing: OnceLock<Graph>,
    /// `validates(candidate, schema)` verdicts (read-mostly; see
    /// [`validate_memoised`]).
    validate_memo: RwLock<ValidateMemo>,
    /// The schema's arena-backed unfolding session: hash-consed trees,
    /// memoised `(type, depth)` enumerations, one shared graph per distinct
    /// candidate. Pool builders hold this lock for the duration of one pool
    /// construction; every other engine path stays off it.
    unfolder: Mutex<Unfolder>,
    /// The unfolder's accounted bytes as last charged to the ledger —
    /// builders re-measure after every use and charge/credit the delta
    /// (while holding the unfolder lock, so updates serialise).
    unfolder_bytes: AtomicU64,
    /// `(root type, depth) → pool` of systematic unfoldings, stamped and
    /// weighed for the eviction sweep.
    enumerated: RwLock<BTreeMap<(TypeId, usize), PoolSlot>>,
    /// In-flight `(root, depth)` pool builds: concurrent demanders of one
    /// cold pool coalesce onto a single construction instead of queueing on
    /// the unfolder lock to each rebuild (and race-adopt) the same pool.
    pool_flights: SingleFlight<(TypeId, usize), Pool>,
    /// The ordered randomized-phase sample pool.
    sampled: OnceLock<Pool>,
    /// The exhaustive per-type bag enumeration (`None` = infinite).
    bags: OnceLock<CachedBags>,
}

/// The append-only schema registry behind one lock: ids index `schemas`,
/// and `by_fingerprint` interns structurally identical registrations onto
/// one entry (hash buckets, verified by full structural comparison — a
/// collision can never conflate distinct schemas). Guarded writes only
/// append, so a [`SchemaId`] handed out once stays valid for the engine's
/// lifetime.
#[derive(Debug, Default)]
struct Registry {
    schemas: Vec<Arc<SchemaEntry>>,
    by_fingerprint: HashMap<u64, Vec<SchemaId>>,
}

impl Registry {
    /// The interned id of a structurally identical schema, if any.
    fn find(&self, hash: u64, schema: &Schema) -> Option<SchemaId> {
        self.by_fingerprint
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| same_schema_structure(&self.schemas[id.index()].schema, schema))
    }
}

/// Shard count of [`ShardedPairMap`]; a power of two, sized so matrix-row
/// workers rarely contend on the same shard.
const PAIR_SHARDS: usize = 16;

/// One memoised pair verdict plus its LRU stamp. The accounted weight is
/// the flat [`PAIR_ENTRY_BYTES`] — key, slot, and tree-node allowance.
#[derive(Debug)]
struct PairSlot {
    verdict: bool,
    stamp: AtomicU64,
}

/// Accounted bytes per pair-memo entry: key + slot + `BTreeMap` node
/// allowance. A flat approximation — pair entries are tiny and uniform.
const PAIR_ENTRY_BYTES: u64 = 64;

/// A `(SchemaId, SchemaId) → bool` verdict memo sharded across
/// independently locked maps, so concurrent queries for different pairs
/// proceed without contending on one lock.
#[derive(Debug)]
struct ShardedPairMap {
    shards: [RwLock<BTreeMap<(u32, u32), PairSlot>>; PAIR_SHARDS],
}

impl ShardedPairMap {
    fn new() -> ShardedPairMap {
        ShardedPairMap {
            shards: std::array::from_fn(|_| RwLock::new(BTreeMap::new())),
        }
    }

    fn shard(&self, key: (u32, u32)) -> &RwLock<BTreeMap<(u32, u32), PairSlot>> {
        let spread = key.0.wrapping_mul(31).wrapping_add(key.1) as usize;
        &self.shards[spread % PAIR_SHARDS]
    }

    fn get(&self, key: (u32, u32), budget: &CacheBudget) -> Option<bool> {
        let shard = read_or_recover(self.shard(key));
        let slot = shard.get(&key)?;
        slot.stamp.store(budget.touch(), Ordering::Relaxed);
        Some(slot.verdict)
    }

    fn insert(&self, key: (u32, u32), verdict: bool, budget: &CacheBudget) {
        use std::collections::btree_map::Entry;
        if !budget.admits(PAIR_ENTRY_BYTES) {
            return; // a sub-64-byte admission ceiling refuses even these
        }
        let mut shard = write_or_recover(self.shard(key));
        if let Entry::Vacant(slot) = shard.entry(key) {
            slot.insert(PairSlot {
                verdict,
                stamp: AtomicU64::new(budget.touch()),
            });
            budget.charge(CacheKind::Pairs, PAIR_ENTRY_BYTES);
        }
    }
}

/// The lifecycle of one in-flight computation: the leader flips
/// `Running → Done` on success; the panic guard flips `Running → Abandoned`
/// if the leader unwinds, so followers retry instead of waiting forever.
#[derive(Debug)]
enum FlightState<V> {
    Running,
    Done(V),
    Abandoned,
}

/// One in-flight computation that followers can block on.
#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Flight<V> {
        Flight {
            state: Mutex::new(FlightState::Running),
            ready: Condvar::new(),
        }
    }

    /// Publish the terminal state and wake every follower.
    fn publish(&self, state: FlightState<V>) {
        *lock_or_recover(&self.state) = state;
        self.ready.notify_all();
    }
}

/// A sharded single-flight table: [`SingleFlight::run`] executes `compute`
/// at most once per key among *concurrent* callers — the first caller (the
/// leader) computes; everyone else arriving while the flight is up blocks
/// and shares the leader's value. The entry is removed at publish time, so
/// the table never grows into a verdict memo: a caller arriving after the
/// leader landed starts a fresh flight (and typically recomputes warm, off
/// the underlying memos).
///
/// Correctness leans on determinism: every computation routed through one
/// key must produce the same value, so handing a follower the leader's copy
/// is observationally invisible.
#[derive(Debug)]
struct SingleFlight<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<Flight<V>>>>>,
}

impl<K: Eq + Hash + Copy, V: Clone> SingleFlight<K, V> {
    fn new(shards: usize) -> SingleFlight<K, V> {
        SingleFlight {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<Flight<V>>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    /// Run `compute` for `key`, coalescing with any concurrent caller of the
    /// same key: the leader computes, followers wait and receive a clone of
    /// the leader's value (ticking `coalesced` once per follower). `compute`
    /// runs outside every flight lock and must not re-enter this table (a
    /// nested `run` on the same table could deadlock on its own flight).
    fn run(&self, key: K, compute: impl FnOnce() -> V, coalesced: &AtomicU64) -> V {
        use std::collections::hash_map::Entry;
        let flight = {
            let mut shard = lock_or_recover(self.shard(&key));
            match shard.entry(key) {
                Entry::Occupied(slot) => Some(Arc::clone(slot.get())),
                Entry::Vacant(slot) => {
                    slot.insert(Arc::new(Flight::new()));
                    None
                }
            }
        };
        match flight {
            Some(flight) => {
                // Follower: block until the leader publishes.
                let mut state = lock_or_recover(&flight.state);
                loop {
                    match &*state {
                        FlightState::Running => {
                            state = flight
                                .ready
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                        FlightState::Done(value) => {
                            EngineCounters::tick(coalesced);
                            return value.clone();
                        }
                        // The leader unwound without a value; compute
                        // directly rather than racing to lead a new flight.
                        FlightState::Abandoned => break,
                    }
                }
                drop(state);
                compute()
            }
            None => {
                // Leader: compute outside the locks, then publish. The
                // guard abandons the flight if `compute` unwinds.
                let mut guard = FlightGuard {
                    table: self,
                    key,
                    armed: true,
                };
                let value = compute();
                // Retire the entry first so late arrivals start a fresh
                // flight instead of adopting a finished one, then wake the
                // followers already holding the Arc.
                if let Some(flight) = lock_or_recover(self.shard(&key)).remove(&key) {
                    flight.publish(FlightState::Done(value.clone()));
                }
                guard.armed = false;
                value
            }
        }
    }
}

/// Panic guard of a single-flight leader: if `compute` unwinds, retire the
/// table entry and mark the flight `Abandoned` so followers stop waiting.
struct FlightGuard<'a, K: Eq + Hash + Copy, V: Clone> {
    table: &'a SingleFlight<K, V>,
    key: K,
    /// Disarmed by the success path once the flight has been published.
    armed: bool,
}

impl<K: Eq + Hash + Copy, V: Clone> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Recover even a poisoned shard: an abandoned flight must always be
        // retired, or followers would wait on it forever.
        let mut shard = lock_or_recover(self.table.shard(&self.key));
        if let Some(flight) = shard.remove(&self.key) {
            flight.publish(FlightState::Abandoned);
        }
    }
}

/// What the bounded search learned about a pair.
struct SearchOutcome {
    witness: Option<Graph>,
    /// Candidate graphs actually validated against the right-hand schema.
    candidates: usize,
    depth: usize,
    /// How long the query had run when its cancellation token fired, if it
    /// did. A found witness still stands (it was certified before the
    /// expiry was observed); otherwise the answer is
    /// [`crate::UnknownReason::DeadlineExceeded`] rather than a claim about
    /// the exhausted budget.
    cancelled: Option<Duration>,
}

impl SearchOutcome {
    fn into_containment(self) -> Containment {
        match (self.witness, self.cancelled) {
            (Some(witness), _) => Containment::not_contained(witness),
            (None, Some(elapsed)) => Containment::deadline_exceeded(elapsed),
            (None, None) if self.candidates == 0 => Containment::not_supported(),
            (None, None) => Containment::budget_exhausted(self.candidates, self.depth),
        }
    }
}

/// A reusable, shareable containment query session; see the
/// [module docs](self) for what is cached and the concurrency contract.
/// Every query method takes `&self`, so one engine (typically behind an
/// [`Arc`]) serves any number of threads at once.
#[derive(Debug)]
pub struct ContainmentEngine {
    options: EngineOptions,
    labels: SharedLabelTable,
    registry: RwLock<Registry>,
    /// `(h, k) → whether the shape graph of h embeds in the one of k`.
    embeds_memo: ShardedPairMap,
    /// `(h, k) → whether the general sufficient condition holds`.
    sufficient_memo: ShardedPairMap,
    /// In-flight `(h, k)` verdict computations (single-flight coalescing,
    /// [`EngineOptions::coalesce`]): sharded like the pair memos so
    /// concurrent queries for different pairs never contend. Full verdicts
    /// are deliberately *not* memoised — the bounded search re-runs per call
    /// over warm memos — so coalescing duplicate concurrent checks is what
    /// keeps a thundering herd of identical queries from multiplying that
    /// warm re-walk.
    query_flights: SingleFlight<(u32, u32), Containment>,
    counters: EngineCounters,
    /// The accounted-byte ledger and eviction bookkeeping behind
    /// [`EngineOptions::cache_budget`] — `Arc`ed because the session context
    /// (and through it every unfolder's shared bag cache) charges the same
    /// ledger.
    budget: Arc<CacheBudget>,
    /// The atom-table bytes last charged to [`CacheKind::Pinned`]; the
    /// delta-accounting swap point for [`ContainmentEngine::sync_atom_bytes`].
    atom_bytes: AtomicU64,
    /// Cross-schema session state: the shared atom table, the candidate-bag
    /// cache, the solver configuration, and the solver telemetry. Cloned
    /// into every schema entry's unfolder (and restored on eviction
    /// rebuilds), so interning survives cache sweeps.
    session: SessionContext,
}

impl Default for ContainmentEngine {
    fn default() -> Self {
        ContainmentEngine::with_options(EngineOptions::default())
    }
}

impl ContainmentEngine {
    /// An engine with the default options (default search budget,
    /// single-threaded).
    pub fn new() -> ContainmentEngine {
        ContainmentEngine::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: EngineOptions) -> ContainmentEngine {
        let budget = Arc::new(CacheBudget::with_admission(
            options.cache_budget,
            options.max_entry_bytes,
        ));
        let session = SessionContext {
            solver: options.solver,
            telemetry: Some(Arc::new(SolverTelemetry::new())),
            budget: Some(Arc::clone(&budget)),
            ..SessionContext::default()
        };
        ContainmentEngine {
            options,
            labels: SharedLabelTable::new(),
            registry: RwLock::new(Registry::default()),
            embeds_memo: ShardedPairMap::new(),
            sufficient_memo: ShardedPairMap::new(),
            query_flights: SingleFlight::new(PAIR_SHARDS),
            counters: EngineCounters::default(),
            budget,
            atom_bytes: AtomicU64::new(0),
            session,
        }
    }

    /// An engine with the given search budget (single-threaded) — the
    /// configuration the one-shot wrappers use.
    pub fn with_search(search: SearchOptions) -> ContainmentEngine {
        ContainmentEngine::with_options(EngineOptions::default().with_search(search))
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// A snapshot of the cache-effectiveness counters and the accounted
    /// memory footprint.
    pub fn stats(&self) -> EngineStats {
        let schemas = read_or_recover(&self.registry).schemas.len();
        let mut stats = self.counters.snapshot(schemas, &self.budget);
        stats.atom_bytes = self.session.atoms.approx_heap_bytes() as u64;
        if let Some(telemetry) = &self.session.telemetry {
            let solver = telemetry.snapshot();
            stats.solver_calls = telemetry.calls();
            stats.solver_search_nodes = solver.search_nodes;
            stats.solver_pruned_branches = solver.pruned_branches;
        }
        stats
    }

    /// Cumulative Presburger solver counters for this session.
    pub fn solver_telemetry(&self) -> &SolverTelemetry {
        self.session
            .telemetry
            .as_deref()
            .expect("engine always owns solver telemetry")
    }

    /// The cross-schema atom table shared by every registered schema.
    pub fn atom_table(&self) -> &Arc<shapex_shex::AtomTable> {
        &self.session.atoms
    }

    /// The shared predicate-label table (one allocation per distinct label
    /// across every registered schema; reads are lock-free).
    pub fn label_table(&self) -> &SharedLabelTable {
        &self.labels
    }

    /// Number of schemas registered so far.
    pub fn schema_count(&self) -> usize {
        read_or_recover(&self.registry).schemas.len()
    }

    /// Whether `id` is a handle this engine has issued — the range check a
    /// service boundary performs before trusting a client-supplied handle.
    pub fn is_registered(&self, id: SchemaId) -> bool {
        id.index() < self.schema_count()
    }

    /// Register a schema with the session, returning its handle.
    ///
    /// Schemas are interned by a structural fingerprint (type names plus the
    /// full expression trees, so distinct expressions that merely render
    /// alike stay distinct): registering an identical schema again (even a
    /// different instance, even from another thread) returns the same handle
    /// and shares every cache. Registration clones the schema — the caller
    /// keeps ownership — adopts the clone's atom labels into the session's
    /// shared table, and computes the classification and shape graph, once.
    /// The derivation runs outside the registry lock; concurrent racing
    /// registrations of the same schema agree on the winner's entry.
    pub fn register(&self, schema: &Schema) -> SchemaId {
        let fingerprint = schema_hash(schema);
        if let Some(id) = read_or_recover(&self.registry).find(fingerprint, schema) {
            return id;
        }
        // Derive everything outside the write lock; a racing thread may do
        // the same work, but only the first insertion wins the slot.
        let mut owned = schema.clone();
        owned.adopt_labels_shared(&self.labels);
        let class = owned.classify_cached();
        let shape_graph = owned.shape_graph_cached().cloned();
        // Intern the schema's alphabet in the session-wide atom table once,
        // at registration, so every later memo lookup (in any schema entry)
        // finds its ids already present.
        for t in owned.types() {
            for atom in owned.def(t).alphabet() {
                self.session.atoms.intern(&atom);
            }
        }
        self.sync_atom_bytes();
        let entry = Arc::new(SchemaEntry {
            schema: Arc::new(owned),
            class,
            shape_graph,
            characterizing: OnceLock::new(),
            validate_memo: RwLock::new(ValidateMemo::default()),
            unfolder: Mutex::new(Unfolder::with_context(self.session.clone())),
            unfolder_bytes: AtomicU64::new(0),
            enumerated: RwLock::new(BTreeMap::new()),
            pool_flights: SingleFlight::new(1),
            sampled: OnceLock::new(),
            bags: OnceLock::new(),
        });
        // The registered schema (its cached shape graph included — derived
        // above, so `approx_heap_bytes` sees it) plus the entry shell is
        // pinned footprint: counted, never evicted.
        let pinned = std::mem::size_of::<SchemaEntry>() as u64 + entry.schema.weight_bytes();
        let mut registry = write_or_recover(&self.registry);
        if let Some(id) = registry.find(fingerprint, schema) {
            return id; // lost the race; adopt the winner's entry
        }
        let id = SchemaId(registry.schemas.len() as u32);
        registry.schemas.push(entry);
        registry
            .by_fingerprint
            .entry(fingerprint)
            .or_default()
            .push(id);
        self.budget.charge(CacheKind::Pinned, pinned);
        id
    }

    /// The engine's copy of a registered schema (shared, cheap to clone).
    pub fn schema(&self, id: SchemaId) -> Arc<Schema> {
        self.entry(id).schema.clone()
    }

    /// The entry behind a handle; panics on a foreign (out-of-range) id.
    fn entry(&self, id: SchemaId) -> Arc<SchemaEntry> {
        read_or_recover(&self.registry).schemas[id.index()].clone()
    }

    /// The entries behind several handles under one registry lock
    /// acquisition — the matrix path prefetches all rows/columns this way so
    /// its cells touch the registry lock not at all.
    fn entries(&self, ids: &[SchemaId]) -> Vec<Arc<SchemaEntry>> {
        let registry = read_or_recover(&self.registry);
        ids.iter()
            .map(|id| registry.schemas[id.index()].clone())
            .collect()
    }

    /// Decide `L(H) ⊆ L(K)` with the strongest applicable procedure — the
    /// session equivalent of [`crate::general::general_containment`].
    pub fn check(&self, h: &Schema, k: &Schema) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        self.check_ids(h, k)
    }

    /// [`ContainmentEngine::check`] for already-registered schemas.
    pub fn check_ids(&self, h: SchemaId, k: SchemaId) -> Containment {
        let entries = self.entries(&[h, k]);
        self.coalesced_entries(h, k, &entries[0], &entries[1], true)
    }

    /// [`ContainmentEngine::check`] under a wall-clock deadline.
    ///
    /// The query threads a cancellation token through every long-running
    /// loop it reaches — pool enumeration, per-candidate validation, the
    /// typing fixpoints, the Presburger disjunct workers — and polls it at
    /// bounded checkpoint intervals. Once `timeout` elapses the search
    /// abandons its current branch and returns
    /// [`crate::UnknownReason::DeadlineExceeded`] instead of wedging a
    /// worker for the rest of its budget. A counter-example certified
    /// before the expiry was observed still stands. Caches only ever record
    /// completed verdicts, so concurrent undeadlined queries are
    /// bit-identical to an engine that never saw a deadline.
    pub fn check_deadline(&self, h: &Schema, k: &Schema, timeout: Duration) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        self.check_ids_deadline(h, k, timeout)
    }

    /// [`ContainmentEngine::check_deadline`] for already-registered schemas.
    pub fn check_ids_deadline(&self, h: SchemaId, k: SchemaId, timeout: Duration) -> Containment {
        self.check_ids_cancellable(h, k, &CancelToken::with_timeout(timeout))
    }

    /// [`ContainmentEngine::check_ids`] under an externally owned
    /// [`CancelToken`] — fire the token from another thread (or give it a
    /// deadline) and the query returns
    /// [`crate::UnknownReason::DeadlineExceeded`] within one checkpoint
    /// interval.
    ///
    /// Cancellable queries bypass the single-flight query coalescing: a
    /// follower must never inherit another caller's deadline verdict, and a
    /// leader's expiry must never become a follower's answer.
    pub fn check_ids_cancellable(
        &self,
        h: SchemaId,
        k: SchemaId,
        cancel: &CancelToken,
    ) -> Containment {
        let entries = self.entries(&[h, k]);
        let verdict = self.general_entries(h, k, &entries[0], &entries[1], true, Some(cancel));
        self.count_deadline(verdict)
    }

    /// Tick the deadline counter when a verdict reports an expired deadline.
    fn count_deadline(&self, verdict: Containment) -> Containment {
        if matches!(
            verdict.unknown_reason(),
            Some(crate::UnknownReason::DeadlineExceeded { .. })
        ) {
            EngineCounters::tick(&self.counters.deadline_exceeded);
        }
        verdict
    }

    /// Batch pairwise containment: `matrix[i][j]` answers
    /// `L(schemas[i]) ⊆ L(schemas[j])` for every ordered pair, including the
    /// diagonal.
    ///
    /// This is the schema-evolution workload the session layer exists for:
    /// each schema's shape graph, classification, unfolding pools, and
    /// validation verdicts are built once and reused across all `N - 1`
    /// partners, instead of once per pair as `N²` one-shot calls would. With
    /// [`EngineOptions::matrix_threads`] > 1 the rows are fanned across a
    /// scoped worker pool over those shared caches. Either way the answers
    /// are identical to the `N²` individual [`ContainmentEngine::check`]
    /// calls (and to the one-shot functions).
    pub fn check_matrix(&self, schemas: &[Schema]) -> ContainmentMatrix {
        let ids: Vec<SchemaId> = schemas.iter().map(|s| self.register(s)).collect();
        self.check_matrix_ids(&ids)
    }

    /// [`ContainmentEngine::check_matrix`] for already-registered schemas
    /// (the service's batch entry point).
    pub fn check_matrix_ids(&self, ids: &[SchemaId]) -> ContainmentMatrix {
        self.matrix_ids_with(ids, None)
    }

    /// [`ContainmentEngine::check_matrix`] under one wall-clock deadline for
    /// the whole matrix. Every row worker shares the token: once it fires,
    /// in-flight cells abandon their searches at the next checkpoint and
    /// every remaining cell answers
    /// [`crate::UnknownReason::DeadlineExceeded`] immediately — the matrix
    /// always comes back fully populated, never hangs on a straggler row.
    pub fn check_matrix_deadline(
        &self,
        schemas: &[Schema],
        timeout: Duration,
    ) -> ContainmentMatrix {
        let ids: Vec<SchemaId> = schemas.iter().map(|s| self.register(s)).collect();
        self.check_matrix_ids_deadline(&ids, timeout)
    }

    /// [`ContainmentEngine::check_matrix_deadline`] for already-registered
    /// schemas.
    pub fn check_matrix_ids_deadline(
        &self,
        ids: &[SchemaId],
        timeout: Duration,
    ) -> ContainmentMatrix {
        self.matrix_ids_with(ids, Some(&CancelToken::with_timeout(timeout)))
    }

    /// The matrix engine behind both entry points: `cancel` is threaded into
    /// every cell (row workers included); cancellable cells skip query
    /// coalescing like [`ContainmentEngine::check_ids_cancellable`].
    fn matrix_ids_with(&self, ids: &[SchemaId], cancel: Option<&CancelToken>) -> ContainmentMatrix {
        // One registry lock acquisition for the whole matrix; the N² cells
        // work off these prefetched entries.
        let entries = self.entries(ids);
        let cell = |i: usize, j: usize, fan_out: bool| match cancel {
            None => self.coalesced_entries(ids[i], ids[j], &entries[i], &entries[j], fan_out),
            Some(token) if token.fired() => {
                self.count_deadline(Containment::deadline_exceeded(token.elapsed()))
            }
            Some(_) => {
                let verdict =
                    self.general_entries(ids[i], ids[j], &entries[i], &entries[j], fan_out, cancel);
                self.count_deadline(verdict)
            }
        };
        let workers = self.options.matrix_threads.max(1).min(ids.len().max(1));
        if workers <= 1 {
            let cells = (0..ids.len())
                .flat_map(|i| (0..ids.len()).map(move |j| (i, j)))
                .map(|(i, j)| cell(i, j, true))
                .collect();
            return ContainmentMatrix::new(ids.to_vec(), cells);
        }
        // Row-parallel: contiguous row chunks per worker, cells validated
        // inline (fan_out = false) so the two thread pools do not multiply.
        // All caches are shared through &self; verdicts are deterministic,
        // so the matrix is identical to the serial one.
        let row_indices: Vec<usize> = (0..ids.len()).collect();
        let rows_per_worker = ids.len().div_ceil(workers);
        let cells = std::thread::scope(|scope| {
            let handles: Vec<_> = row_indices
                .chunks(rows_per_worker)
                .map(|rows| {
                    let cell = &cell;
                    scope.spawn(move || {
                        rows.iter()
                            .flat_map(|&i| {
                                (0..ids.len())
                                    .map(|j| cell(i, j, false))
                                    .collect::<Vec<Containment>>()
                            })
                            .collect::<Vec<Containment>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("matrix row worker panicked"))
                .collect()
        });
        ContainmentMatrix::new(ids.to_vec(), cells)
    }

    /// The session equivalent of [`crate::shex0::shex0_containment`].
    pub fn shex0(&self, h: &Schema, k: &Schema) -> Containment {
        // Routed through the same coalesced dispatcher as `check`: the two
        // pipelines delegate to each other on class mismatch, so for every
        // pair they compute the identical verdict and may share one flight.
        let h = self.register(h);
        let k = self.register(k);
        let entries = self.entries(&[h, k]);
        self.coalesced_entries(h, k, &entries[0], &entries[1], true)
    }

    /// The session equivalent of [`crate::general::general_containment`].
    pub fn general(&self, h: &Schema, k: &Schema) -> Containment {
        let h = self.register(h);
        let k = self.register(k);
        let entries = self.entries(&[h, k]);
        self.coalesced_entries(h, k, &entries[0], &entries[1], true)
    }

    /// The session equivalent of [`crate::det::det_containment`]: polynomial
    /// containment for `DetShEx₀⁻` (Corollary 4.4).
    pub fn det(&self, h: &Schema, k: &Schema) -> Result<Containment, NotDetShex0Minus> {
        let h = self.register(h);
        let k = self.register(k);
        self.det_ids(h, k)
    }

    /// [`ContainmentEngine::det`] for already-registered schemas.
    pub fn det_ids(&self, h: SchemaId, k: SchemaId) -> Result<Containment, NotDetShex0Minus> {
        let entries = self.entries(&[h, k]);
        let (h_entry, k_entry) = (&entries[0], &entries[1]);
        require_det_minus(h_entry)?;
        require_det_minus(k_entry)?;
        if self.embeds_cached(h, k, h_entry, k_entry) {
            Ok(Containment::Contained)
        } else {
            let witness = self.characterizing(h_entry)?;
            debug_assert!(
                embeds(
                    &witness,
                    h_entry
                        .shape_graph
                        .as_ref()
                        .expect("DetShEx0- schemas are RBE0")
                )
                .is_some(),
                "characterizing graph must belong to L(H)"
            );
            Ok(Containment::not_contained(witness))
        }
    }

    /// Search for a certified counter-example to `L(H) ⊆ L(K)` — the
    /// session equivalent of [`crate::unfold::search_counter_example`], with
    /// pooled unfoldings, memoised validation, and the optional parallel
    /// fan-out.
    pub fn counter_example(&self, h: &Schema, k: &Schema) -> Option<Graph> {
        let h = self.register(h);
        let k = self.register(k);
        let entries = self.entries(&[h, k]);
        self.search_ids(&entries[0], &entries[1], true, None)
            .witness
    }

    /// The single-flight seam of every `(h, k)` verdict query: while one
    /// thread runs the dispatch chain for an ordered pair, duplicate
    /// concurrent queries for the same pair block on that computation and
    /// share its verdict ([`EngineStats::coalesced_queries`] counts them).
    /// Sound because verdicts are deterministic functions of the registered
    /// pair — and because [`ContainmentEngine::shex0_entries`] and
    /// [`ContainmentEngine::general_entries`] delegate to each other on
    /// class mismatch, every public query route computes the same verdict
    /// for a given pair, so one flight key serves them all. `fan_out` only
    /// shapes parallelism, never the answer. Disabled (straight
    /// pass-through) when [`EngineOptions::coalesce`] is off.
    fn coalesced_entries(
        &self,
        h: SchemaId,
        k: SchemaId,
        h_entry: &Arc<SchemaEntry>,
        k_entry: &Arc<SchemaEntry>,
        fan_out: bool,
    ) -> Containment {
        if !self.options.coalesce {
            return self.general_entries(h, k, h_entry, k_entry, fan_out, None);
        }
        self.query_flights.run(
            (h.0, k.0),
            || self.general_entries(h, k, h_entry, k_entry, fan_out, None),
            &self.counters.coalesced_queries,
        )
    }

    /// The `ShEx₀` procedure over registered schemas (Section 5 pipeline:
    /// embedding, characterizing-graph shortcut, bounded search). The
    /// caller supplies the already-fetched entries — the dispatch chain
    /// touches the registry lock once per query, not once per hop —
    /// and `fan_out` gates the per-cell validation worker pool (disabled
    /// inside matrix row workers).
    fn shex0_entries(
        &self,
        h: SchemaId,
        k: SchemaId,
        h_entry: &Arc<SchemaEntry>,
        k_entry: &Arc<SchemaEntry>,
        fan_out: bool,
        cancel: Option<&CancelToken>,
    ) -> Containment {
        if h_entry.class == SchemaClass::ShEx || k_entry.class == SchemaClass::ShEx {
            return self.general_entries(h, k, h_entry, k_entry, fan_out, cancel);
        }
        if self.embeds_cached(h, k, h_entry, k_entry) {
            return Containment::Contained;
        }
        if h_entry.class == SchemaClass::DetShEx0Minus
            && k_entry.class == SchemaClass::DetShEx0Minus
        {
            let witness = self.characterizing(h_entry).expect("checked DetShEx0-");
            return Containment::not_contained(witness);
        }
        self.search_ids(h_entry, k_entry, fan_out, cancel)
            .into_containment()
    }

    /// The general procedure over registered schemas (Section 6 pipeline:
    /// delegation to ShEx₀, type-simulation sufficient check, bounded
    /// search), over caller-fetched entries like
    /// [`ContainmentEngine::shex0_entries`].
    fn general_entries(
        &self,
        h: SchemaId,
        k: SchemaId,
        h_entry: &Arc<SchemaEntry>,
        k_entry: &Arc<SchemaEntry>,
        fan_out: bool,
        cancel: Option<&CancelToken>,
    ) -> Containment {
        if cancel.is_some_and(|t| t.fired()) {
            // An already-expired deadline skips even the cheap pipeline
            // stages: the caller asked for an answer by a time that has
            // passed.
            return Containment::deadline_exceeded(cancel.expect("checked above").elapsed());
        }
        let both_rbe0 = h_entry.class != SchemaClass::ShEx && k_entry.class != SchemaClass::ShEx;
        if both_rbe0 {
            return self.shex0_entries(h, k, h_entry, k_entry, fan_out, cancel);
        }
        if self.sufficient_cached(h, k, h_entry, k_entry) {
            return Containment::Contained;
        }
        self.search_ids(h_entry, k_entry, fan_out, cancel)
            .into_containment()
    }

    /// Whether the shape graph of `h` embeds in the shape graph of `k`
    /// (memoised). Both schemas must be RBE₀.
    fn embeds_cached(
        &self,
        h: SchemaId,
        k: SchemaId,
        h_entry: &SchemaEntry,
        k_entry: &SchemaEntry,
    ) -> bool {
        if let Some(v) = self.embeds_memo.get((h.0, k.0), &self.budget) {
            EngineCounters::tick(&self.counters.embed_hits);
            return v;
        }
        EngineCounters::tick(&self.counters.embed_misses);
        let hg = h_entry
            .shape_graph
            .as_ref()
            .expect("RBE0 schema has a shape graph");
        let kg = k_entry
            .shape_graph
            .as_ref()
            .expect("RBE0 schema has a shape graph");
        let v = embeds(hg, kg).is_some();
        self.embeds_memo.insert((h.0, k.0), v, &self.budget);
        self.maybe_evict();
        v
    }

    /// The characterizing graph of a registered `DetShEx₀⁻` schema, built
    /// once (`OnceLock`: concurrent demanders block on one construction).
    fn characterizing(&self, entry: &SchemaEntry) -> Result<Graph, NotDetShex0Minus> {
        require_det_minus(entry)?;
        let mut built_here = false;
        let graph = entry.characterizing.get_or_init(|| {
            built_here = true;
            characterizing_graph(&entry.schema).expect("class-checked DetShEx0- schema")
        });
        if built_here {
            self.budget.charge(CacheKind::Pinned, graph.weight_bytes());
        }
        Ok(graph.clone())
    }

    /// Whether the general sufficient condition holds for `(h, k)`
    /// (memoised), with the exhaustive bag enumeration of `h` cached across
    /// partners.
    fn sufficient_cached(
        &self,
        h: SchemaId,
        k: SchemaId,
        h_entry: &SchemaEntry,
        k_entry: &SchemaEntry,
    ) -> bool {
        if let Some(v) = self.sufficient_memo.get((h.0, k.0), &self.budget) {
            return v;
        }
        let v = match self.exhaustive_bags_cached(h_entry) {
            None => false,
            Some(bags) => type_simulation_with_bags(
                &h_entry.schema,
                &bags,
                &k_entry.schema,
                self.session.solver,
                self.session.telemetry.as_deref(),
            ),
        };
        self.sufficient_memo.insert((h.0, k.0), v, &self.budget);
        self.maybe_evict();
        v
    }

    fn exhaustive_bags_cached(&self, entry: &SchemaEntry) -> CachedBags {
        let mut built_here = false;
        let bags = entry
            .bags
            .get_or_init(|| {
                built_here = true;
                exhaustive_bags(&entry.schema).map(Arc::new)
            })
            .clone();
        if built_here {
            if let Some(bags) = &bags {
                self.budget.charge(CacheKind::Pinned, bags_weight(bags));
            }
        }
        bags
    }

    /// The bounded counter-example search over registered schemas.
    ///
    /// Candidate order — and therefore the returned witness — is exactly
    /// that of [`crate::baseline::search_counter_example_baseline`]:
    /// systematic unfoldings per root and depth under the shared `examined`
    /// budget, then the ordered randomized samples.
    fn search_ids(
        &self,
        h: &Arc<SchemaEntry>,
        k: &Arc<SchemaEntry>,
        fan_out: bool,
        cancel: Option<&CancelToken>,
    ) -> SearchOutcome {
        let outcome = self.search_ids_inner(h, k, fan_out, cancel);
        // Whatever validation memos the (sequential or sampled) phases just
        // grew, bring the evictable total back under budget before the
        // query returns.
        self.maybe_evict();
        outcome
    }

    fn search_ids_inner(
        &self,
        h: &Arc<SchemaEntry>,
        k: &Arc<SchemaEntry>,
        fan_out: bool,
        cancel: Option<&CancelToken>,
    ) -> SearchOutcome {
        let opts = self.options.search.clone();
        let parallel = fan_out && self.options.threads > 1;
        let mut examined = 0usize;
        let mut checked = 0usize;
        let mut scratch = ValidateScratch::new();
        let roots: Vec<TypeId> = h.schema.types().collect();
        let expired = |checked: usize, token: &CancelToken| SearchOutcome {
            witness: None,
            candidates: checked,
            depth: opts.max_depth,
            cancelled: Some(token.elapsed()),
        };

        // Systematic phase.
        for &root in &roots {
            for depth in 1..=opts.max_depth {
                let Some(pool) = self.enumerated_pool(h, root, depth, &opts, cancel) else {
                    // The pool build itself observed the expired token.
                    return expired(checked, cancel.expect("only a token cancels a build"));
                };
                // The baseline increments `examined` per candidate and
                // abandons the pool once the count exceeds the budget, so at
                // most this many candidates of the pool get validated:
                let limit = pool.len().min(opts.max_candidates.saturating_sub(examined));
                let mut verdicts = parallel.then(|| vec![None; limit]);
                for (i, graph) in pool.iter().enumerate() {
                    // The per-candidate cancellation checkpoint: one poll
                    // (and one armed fault site) per candidate bounds the
                    // interval between an expiry and its observation by one
                    // stripe of validations.
                    faults::trigger(faults::site::SOLVER_BRANCH);
                    if let Some(token) = cancel {
                        if token.fired() {
                            EngineCounters::tick(&self.counters.cancelled_branches);
                            return expired(checked, token);
                        }
                    }
                    examined += 1;
                    if examined > opts.max_candidates {
                        break;
                    }
                    let ok = match &mut verdicts {
                        Some(v) => self.verdict_at(k, &pool, v, i),
                        None => self.validate_one(k, graph, &mut scratch),
                    };
                    checked += 1;
                    if !ok {
                        return SearchOutcome {
                            witness: Some(Graph::clone(graph)),
                            candidates: checked,
                            depth: opts.max_depth,
                            cancelled: None,
                        };
                    }
                }
            }
        }

        // Randomized phase (skipped entirely when the schema has no types,
        // like the baseline).
        if !roots.is_empty() {
            let Some(pool) = self.sampled_pool(h, &opts, cancel) else {
                return expired(checked, cancel.expect("only a token cancels a build"));
            };
            let mut verdicts = parallel.then(|| vec![None; pool.len()]);
            for (i, graph) in pool.iter().enumerate() {
                faults::trigger(faults::site::SOLVER_BRANCH);
                if let Some(token) = cancel {
                    if token.fired() {
                        EngineCounters::tick(&self.counters.cancelled_branches);
                        return expired(checked, token);
                    }
                }
                let ok = match &mut verdicts {
                    Some(v) => self.verdict_at(k, &pool, v, i),
                    None => self.validate_one(k, graph, &mut scratch),
                };
                checked += 1;
                if !ok {
                    return SearchOutcome {
                        witness: Some(Graph::clone(graph)),
                        candidates: checked,
                        depth: opts.max_depth,
                        cancelled: None,
                    };
                }
            }
        }
        SearchOutcome {
            witness: None,
            candidates: checked,
            depth: opts.max_depth,
            cancelled: None,
        }
    }

    /// The parallel-mode verdict for `pool[i]`: if it is not resolved yet,
    /// fan out one *stripe* of following candidates
    /// (`threads × parallel_threshold`, clipped to `verdicts.len()`, the
    /// consumable prefix of the pool) across the workers. Striping bounds
    /// the eagerness: a witness at index `i` costs at most one stripe of
    /// extra validations instead of the whole pool.
    fn verdict_at(
        &self,
        k: &SchemaEntry,
        pool: &[Arc<Graph>],
        verdicts: &mut [Option<bool>],
        i: usize,
    ) -> bool {
        if let Some(v) = verdicts[i] {
            return v;
        }
        let stripe = (self.options.threads * self.options.parallel_threshold.max(1)).max(1);
        let end = (i + stripe).min(verdicts.len());
        for (offset, v) in self
            .validate_slice(k, &pool[i..end])
            .into_iter()
            .enumerate()
        {
            verdicts[i + offset] = Some(v);
        }
        verdicts[i].expect("stripe covers i")
    }

    /// The pool of valid members of `h` unfolded from `root` up to `depth` —
    /// the entry's arena-backed [`Unfolder`] with the fallback
    /// member-validation step routed through the memo, cached per
    /// `(root, depth)` in the entry. The unfolder's `(type, depth)` tree
    /// memos make the depth-cumulative pool family share every subtree and
    /// every candidate graph; certified members (in practice: all of them)
    /// skip validation entirely. Concurrent builders of the same key
    /// serialise on the unfolder lock; the first insertion wins and everyone
    /// shares that pool.
    fn enumerated_pool(
        &self,
        h: &Arc<SchemaEntry>,
        root: TypeId,
        depth: usize,
        opts: &SearchOptions,
        cancel: Option<&CancelToken>,
    ) -> Option<Pool> {
        if let Some(slot) = read_or_recover(&h.enumerated).get(&(root, depth)) {
            EngineCounters::tick(&self.counters.pool_hits);
            slot.stamp.store(self.budget.touch(), Ordering::Relaxed);
            return Some(slot.pool.clone());
        }
        if cancel.is_some() || !self.options.coalesce {
            // Cancellable builders skip the pool flight: a cancelled leader
            // has no pool to hand its followers, and a follower must not
            // block on a leader whose deadline differs from its own.
            return self.build_enumerated_pool(h, root, depth, opts, cancel);
        }
        // Cold pool: coalesce concurrent demanders onto one construction.
        // Without the flight they would all queue on the unfolder lock and
        // each rebuild the pool only to race-adopt the first insertion.
        Some(h.pool_flights.run(
            (root, depth),
            || {
                // A flight that landed between our cache miss and our
                // leadership may have filled the slot already.
                if let Some(slot) = read_or_recover(&h.enumerated).get(&(root, depth)) {
                    EngineCounters::tick(&self.counters.pool_hits);
                    slot.stamp.store(self.budget.touch(), Ordering::Relaxed);
                    return slot.pool.clone();
                }
                self.build_enumerated_pool(h, root, depth, opts, None)
                    .expect("an uncancelled pool build cannot be cancelled")
            },
            &self.counters.coalesced_pools,
        ))
    }

    /// Actually build (and cache, admission permitting) one enumerated
    /// pool — the cold path behind [`ContainmentEngine::enumerated_pool`].
    /// `None` = the cancellation token fired mid-enumeration; the partial
    /// pool is discarded uncached (completed subtree memos inside the arena
    /// stay — they are identical to an uncancelled prefix's).
    fn build_enumerated_pool(
        &self,
        h: &Arc<SchemaEntry>,
        root: TypeId,
        depth: usize,
        opts: &SearchOptions,
        cancel: Option<&CancelToken>,
    ) -> Option<Pool> {
        EngineCounters::tick(&self.counters.pools_built);
        let scoped = SearchOptions {
            max_depth: depth,
            ..opts.clone()
        };
        let graphs = {
            let mut scratch = ValidateScratch::new();
            let mut unfolder = lock_or_recover(&h.unfolder);
            let graphs = unfolder.try_members_with(
                &h.schema,
                root,
                &scoped,
                &mut |g| validate_memoised(h, &self.counters, &self.budget, g, &mut scratch),
                cancel.map(|t| t.check()),
            );
            self.sync_unfolder_bytes(h, &unfolder);
            graphs
        };
        let Some(graphs) = graphs else {
            EngineCounters::tick(&self.counters.cancelled_branches);
            return None;
        };
        let pool: Pool = Arc::new(graphs);
        let bytes = pool_weight(&pool);
        let shared = {
            use std::collections::btree_map::Entry;
            let mut pools = write_or_recover(&h.enumerated);
            match pools.entry((root, depth)) {
                // A racing builder won the slot; adopt its pool, charge
                // nothing (the winner charged).
                Entry::Occupied(slot) => slot.get().pool.clone(),
                // Oversized pools are used but not cached (admission
                // policy): refusing up front beats letting one giant pool
                // evict the whole working set.
                Entry::Vacant(_) if !self.budget.admits(bytes) => pool,
                Entry::Vacant(slot) => {
                    slot.insert(PoolSlot {
                        pool: pool.clone(),
                        bytes,
                        stamp: AtomicU64::new(self.budget.touch()),
                    });
                    self.budget.charge(CacheKind::Pools, bytes);
                    pool
                }
            }
        };
        self.maybe_evict();
        Some(shared)
    }

    /// The ordered randomized-sample pool of `h` — the entry's [`Unfolder`]
    /// over the baseline's exact RNG sequence, with the fallback
    /// member-validation step routed through the memo, built once per schema
    /// (`OnceLock`). `None` = the cancellation token fired mid-build; a
    /// partial pool is never published to the `OnceLock`.
    fn sampled_pool(
        &self,
        h: &Arc<SchemaEntry>,
        opts: &SearchOptions,
        cancel: Option<&CancelToken>,
    ) -> Option<Pool> {
        if let Some(token) = cancel {
            // Cancellable cold build: bypass the `OnceLock` so a cancelled
            // (partial) pool can never be published, and so this builder
            // never blocks behind — or wedges — an uncancellable one. A
            // build that *completes* is offered to the slot; losing that
            // race adopts the winner (bit-identical: same seed, same draw).
            if let Some(pool) = h.sampled.get() {
                EngineCounters::tick(&self.counters.pool_hits);
                return Some(pool.clone());
            }
            EngineCounters::tick(&self.counters.pools_built);
            let Some(graphs) = self.draw_sampled_graphs(h, opts, Some(token)) else {
                EngineCounters::tick(&self.counters.cancelled_branches);
                return None;
            };
            let pool: Pool = Arc::new(graphs);
            if h.sampled.set(pool.clone()).is_ok() {
                // `OnceLock`-cached for the engine's lifetime: pinned.
                self.budget.charge(CacheKind::Pinned, pool_weight(&pool));
                return Some(pool);
            }
            return Some(h.sampled.get().expect("set raced a winner").clone());
        }
        // Exactly one of pool_hits / pools_built ticks per call: a thread
        // losing the init race still counts its request as a hit.
        let mut built_here = false;
        let pool = h
            .sampled
            .get_or_init(|| {
                built_here = true;
                EngineCounters::tick(&self.counters.pools_built);
                Arc::new(
                    self.draw_sampled_graphs(h, opts, None)
                        .expect("an uncancelled sample draw cannot be cancelled"),
                )
            })
            .clone();
        if built_here {
            // `OnceLock`-cached for the engine's lifetime: pinned footprint.
            self.budget.charge(CacheKind::Pinned, pool_weight(&pool));
        } else {
            EngineCounters::tick(&self.counters.pool_hits);
        }
        Some(pool)
    }

    /// The randomized-phase sample draw shared by the cached and the
    /// deadline-bypassed builds of [`ContainmentEngine::sampled_pool`].
    /// `None` = the token fired mid-draw.
    fn draw_sampled_graphs(
        &self,
        h: &Arc<SchemaEntry>,
        opts: &SearchOptions,
        cancel: Option<&CancelToken>,
    ) -> Option<Vec<Arc<Graph>>> {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let roots: Vec<TypeId> = h.schema.types().collect();
        let mut graphs = Vec::new();
        if !roots.is_empty() {
            let mut scratch = ValidateScratch::new();
            let mut unfolder = lock_or_recover(&h.unfolder);
            let mut is_member =
                |g: &Graph| validate_memoised(h, &self.counters, &self.budget, g, &mut scratch);
            for _ in 0..opts.random_samples {
                if cancel.is_some_and(|t| t.fired()) {
                    self.sync_unfolder_bytes(h, &unfolder);
                    return None;
                }
                let root = roots[rng.gen_range(0..roots.len())];
                match unfolder.sample_with(
                    &h.schema,
                    root,
                    &mut rng,
                    opts,
                    &mut is_member,
                    cancel.map(|t| t.check()),
                ) {
                    Some(graph) => graphs.push(graph),
                    // A `None` draw is ambiguous — no valid sample (the
                    // historical meaning) or cancelled mid-draw; the token
                    // tells the cases apart.
                    None if cancel.is_some_and(|t| t.is_cancelled()) => {
                        self.sync_unfolder_bytes(h, &unfolder);
                        return None;
                    }
                    None => {}
                }
            }
            self.sync_unfolder_bytes(h, &unfolder);
        }
        Some(graphs)
    }

    /// One memoised `validates(graph, k)` verdict.
    fn validate_one(&self, k: &SchemaEntry, graph: &Graph, scratch: &mut ValidateScratch) -> bool {
        validate_memoised(k, &self.counters, &self.budget, graph, scratch)
    }

    /// Memoised verdicts for one stripe of candidates, with the uncached
    /// ones fanned across the engine's worker threads when there are enough
    /// of them (below `parallel_threshold` the spawn overhead dominates and
    /// the stripe is validated inline). Lookups go through the hashed memo
    /// keys, so a fully warm stripe allocates nothing.
    fn validate_slice(&self, k: &SchemaEntry, pool: &[Arc<Graph>]) -> Vec<bool> {
        let hashes: Vec<u64> = pool.iter().map(|g| candidate_hash(g)).collect();
        let mut verdicts: Vec<Option<bool>> = {
            let memo = read_or_recover(&k.validate_memo);
            pool.iter()
                .zip(&hashes)
                .map(|(graph, &hash)| memo.get(hash, graph, &self.budget))
                .collect()
        };
        let missing: Vec<usize> = verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| i)
            .collect();
        EngineCounters::add(
            &self.counters.validate_hits,
            (pool.len() - missing.len()) as u64,
        );
        EngineCounters::add(&self.counters.validate_misses, missing.len() as u64);
        if !missing.is_empty() {
            let schema = &k.schema;
            let workers = self.options.threads.min(missing.len());
            if workers > 1 && missing.len() >= self.options.parallel_threshold.max(1) {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = missing
                        .chunks(missing.len().div_ceil(workers))
                        .map(|part| {
                            scope.spawn(move || {
                                let mut scratch = ValidateScratch::new();
                                part.iter()
                                    .map(|&i| (i, validates_with(&pool[i], schema, &mut scratch)))
                                    .collect::<Vec<(usize, bool)>>()
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (i, v) in handle.join().expect("validation worker panicked") {
                            verdicts[i] = Some(v);
                        }
                    }
                });
            } else {
                let mut scratch = ValidateScratch::new();
                for &i in &missing {
                    verdicts[i] = Some(validates_with(&pool[i], schema, &mut scratch));
                }
            }
            let mut memo = write_or_recover(&k.validate_memo);
            for &i in &missing {
                memo.insert(
                    hashes[i],
                    &pool[i],
                    verdicts[i].expect("filled above"),
                    &self.budget,
                );
            }
        }
        self.maybe_evict();
        verdicts
            .into_iter()
            .map(|v| v.expect("resolved above"))
            .collect()
    }

    /// Re-measure an entry's unfolder and charge/credit the ledger delta.
    /// Callers hold the entry's unfolder lock, so the swap serialises with
    /// other re-measurements and with the sweeper's reset.
    fn sync_unfolder_bytes(&self, entry: &SchemaEntry, unfolder: &Unfolder) {
        let now = unfolder.approx_heap_bytes() as u64;
        let before = entry.unfolder_bytes.swap(now, Ordering::Relaxed);
        if now >= before {
            self.budget.charge(CacheKind::Unfolder, now - before);
        } else {
            self.budget.credit(CacheKind::Unfolder, before - now);
        }
    }

    /// Targeted invalidation for evolving graphs: drop the memoised
    /// `validates(graph, ·)` verdicts for this exact candidate structure
    /// from every registered schema's memo, crediting the ledger. Verdicts
    /// for other candidates — and every other cache — are untouched, which
    /// is the point: a delta that perturbs one graph should not cost the
    /// session its warm state for every other graph. Returns the accounted
    /// bytes freed.
    pub fn invalidate_candidate(&self, graph: &Graph) -> u64 {
        let entries: Vec<Arc<SchemaEntry>> = {
            let registry = read_or_recover(&self.registry);
            registry.schemas.clone()
        };
        let hash = candidate_hash(graph);
        let mut freed = 0u64;
        for entry in &entries {
            let mut memo = write_or_recover(&entry.validate_memo);
            freed += memo.remove(hash, graph, &self.budget);
        }
        freed
    }

    /// Targeted invalidation of one schema's unfolding state: drain its
    /// enumerated pools and reset its unfolder session, crediting the
    /// ledger, while every other schema's caches stay warm. The pools are
    /// pure memos (they rebuild deterministically), so this is a cost knob,
    /// not a correctness one. Returns the accounted bytes freed; unknown
    /// handles free nothing.
    pub fn invalidate_pools(&self, id: SchemaId) -> u64 {
        if !self.is_registered(id) {
            return 0;
        }
        let entry = self.entry(id);
        let mut freed = 0u64;
        {
            let mut pools = write_or_recover(&entry.enumerated);
            for (_, slot) in std::mem::take(&mut *pools) {
                freed += slot.bytes;
                self.budget.credit(CacheKind::Pools, slot.bytes);
            }
        }
        {
            let mut unfolder = lock_or_recover(&entry.unfolder);
            let before = entry.unfolder_bytes.swap(0, Ordering::Relaxed);
            if before > 0 {
                *unfolder = Unfolder::with_context(self.session.clone());
                self.budget.credit(CacheKind::Unfolder, before);
                freed += before;
            }
        }
        freed
    }

    /// Re-measure the session atom table and charge the pinned-ledger delta.
    /// The table only grows, so the delta is always a charge; the swap makes
    /// racing registrations each charge exactly their own growth.
    fn sync_atom_bytes(&self) {
        let now = self.session.atoms.approx_heap_bytes() as u64;
        let before = self.atom_bytes.swap(now, Ordering::Relaxed);
        if now > before {
            self.budget.charge(CacheKind::Pinned, now - before);
        }
    }

    /// Enforce the cache budget: when the evictable total exceeds the
    /// limit, run epoch-LRU sweeps until it is back under (targeting half
    /// the limit, so queries do not re-trigger a sweep immediately), with a
    /// clear-everything fallback so the invariant `evictable ≤ budget`
    /// holds at every query exit regardless of weight-approximation drift.
    ///
    /// Serialised on the budget's sweeper mutex: one thread sweeps while
    /// the others queue behind it and re-check (their overshoot is
    /// typically gone by the time they hold the lock).
    ///
    /// Never called while holding an unfolder lock — the sweep takes
    /// unfolder locks to reset drained sessions, and the mutex is not
    /// reentrant.
    fn maybe_evict(&self) {
        if !self.budget.over_budget() {
            return;
        }
        let Some(limit) = self.budget.limit() else {
            return;
        };
        // Armed fault site for chaos tests: fires before the sweeper lock is
        // taken, so an injected panic never wedges later sweeps.
        faults::trigger(faults::site::PRE_SWEEP);
        let _sweeping = lock_or_recover(self.budget.sweeper());
        for _ in 0..2 {
            if self.budget.evictable() <= limit {
                return;
            }
            self.sweep_once(limit);
        }
        if self.budget.evictable() > limit {
            self.clear_evictable();
        }
    }

    /// One epoch-LRU sweep: collect `(stamp, bytes)` over every evictable
    /// entry, pick the cutoff stamp that frees enough to reach the
    /// low-water mark (half the limit), and drop everything at or below
    /// it. Unfolder sessions whose enumerated pools all left are reset
    /// wholesale — their arenas are memo state that rebuilds
    /// deterministically (same node names, same RNG stream), so the reset
    /// is invisible to verdicts and witnesses.
    ///
    /// Locks are taken one cache at a time, never an unfolder lock while
    /// holding a cache lock, so concurrent queries at worst block briefly
    /// on one cache.
    fn sweep_once(&self, limit: u64) {
        let entries: Vec<Arc<SchemaEntry>> = {
            let registry = read_or_recover(&self.registry);
            registry.schemas.clone()
        };
        let mut stamped: Vec<(u64, u64)> = Vec::new();
        for entry in &entries {
            for slot in read_or_recover(&entry.enumerated).values() {
                stamped.push((slot.stamp.load(Ordering::Relaxed), slot.bytes));
            }
            let memo = read_or_recover(&entry.validate_memo);
            for bucket in memo.buckets.values() {
                for record in bucket {
                    stamped.push((record.stamp.load(Ordering::Relaxed), record.bytes));
                }
            }
        }
        for memo in [&self.embeds_memo, &self.sufficient_memo] {
            for shard in &memo.shards {
                for slot in read_or_recover(shard).values() {
                    stamped.push((slot.stamp.load(Ordering::Relaxed), PAIR_ENTRY_BYTES));
                }
            }
        }
        self.session.bags.collect_stamps(&mut stamped);
        stamped.sort_unstable();
        let low_water = limit / 2;
        let mut need = self.budget.evictable().saturating_sub(low_water);
        let mut cutoff = 0u64;
        for &(stamp, bytes) in &stamped {
            if need == 0 {
                break;
            }
            cutoff = stamp;
            need = need.saturating_sub(bytes);
        }
        if cutoff == 0 {
            // Everything stamped is younger than anything worth dropping
            // (or there is nothing stamped — the overshoot is unfolder
            // growth); fall through to the caller's next attempt.
            self.budget.record_sweep(0, 0);
            return;
        }
        let mut evicted = 0u64;
        let mut freed = 0u64;
        for entry in &entries {
            let drained = {
                let mut pools = write_or_recover(&entry.enumerated);
                pools.retain(|_, slot| {
                    if slot.stamp.load(Ordering::Relaxed) <= cutoff {
                        evicted += 1;
                        freed += slot.bytes;
                        self.budget.credit(CacheKind::Pools, slot.bytes);
                        false
                    } else {
                        true
                    }
                });
                pools.is_empty()
            };
            if drained {
                // No pool references this unfolder's trees any more: drop
                // the whole session so its arena actually frees. (A racing
                // builder may have inserted a fresh pool since the check —
                // resetting then still only costs that builder's memos.)
                let mut unfolder = lock_or_recover(&entry.unfolder);
                let before = entry.unfolder_bytes.swap(0, Ordering::Relaxed);
                if before > 0 {
                    *unfolder = Unfolder::with_context(self.session.clone());
                    self.budget.credit(CacheKind::Unfolder, before);
                    evicted += 1;
                    freed += before;
                }
            }
            {
                let mut memo = write_or_recover(&entry.validate_memo);
                memo.buckets.retain(|_, bucket| {
                    bucket.retain(|record| {
                        if record.stamp.load(Ordering::Relaxed) <= cutoff {
                            evicted += 1;
                            freed += record.bytes;
                            self.budget.credit(CacheKind::Validate, record.bytes);
                            false
                        } else {
                            true
                        }
                    });
                    !bucket.is_empty()
                });
            }
        }
        for memo in [&self.embeds_memo, &self.sufficient_memo] {
            for shard in &memo.shards {
                write_or_recover(shard).retain(|_, slot| {
                    if slot.stamp.load(Ordering::Relaxed) <= cutoff {
                        evicted += 1;
                        freed += PAIR_ENTRY_BYTES;
                        self.budget.credit(CacheKind::Pairs, PAIR_ENTRY_BYTES);
                        false
                    } else {
                        true
                    }
                });
            }
        }
        {
            // Shared bag enumerations are pure memos too: per-unfolder
            // adopters hold their own `Arc`s, so dropping the shared entry
            // only costs the next cold unfolder a re-enumeration.
            let (entries, bytes) = self.session.bags.evict_older_than(cutoff);
            if entries > 0 {
                self.budget.credit(CacheKind::Bags, bytes);
                evicted += entries;
                freed += bytes;
            }
        }
        self.budget.record_sweep(evicted, freed);
    }

    /// The sweep-of-last-resort: drop every evictable cache outright. Run
    /// when two LRU sweeps could not get back under the limit (a budget
    /// smaller than a single pool, say) — the invariant wins over cache
    /// warmth.
    fn clear_evictable(&self) {
        let entries: Vec<Arc<SchemaEntry>> = {
            let registry = read_or_recover(&self.registry);
            registry.schemas.clone()
        };
        let mut evicted = 0u64;
        let mut freed = 0u64;
        for entry in &entries {
            {
                let mut pools = write_or_recover(&entry.enumerated);
                for (_, slot) in std::mem::take(&mut *pools) {
                    evicted += 1;
                    freed += slot.bytes;
                    self.budget.credit(CacheKind::Pools, slot.bytes);
                }
            }
            {
                let mut unfolder = lock_or_recover(&entry.unfolder);
                let before = entry.unfolder_bytes.swap(0, Ordering::Relaxed);
                if before > 0 {
                    *unfolder = Unfolder::with_context(self.session.clone());
                    self.budget.credit(CacheKind::Unfolder, before);
                    evicted += 1;
                    freed += before;
                }
            }
            {
                let mut memo = write_or_recover(&entry.validate_memo);
                for (_, bucket) in memo.buckets.drain() {
                    for record in bucket {
                        evicted += 1;
                        freed += record.bytes;
                        self.budget.credit(CacheKind::Validate, record.bytes);
                    }
                }
            }
        }
        for memo in [&self.embeds_memo, &self.sufficient_memo] {
            for shard in &memo.shards {
                let mut shard = write_or_recover(shard);
                let drained = std::mem::take(&mut *shard);
                evicted += drained.len() as u64;
                freed += drained.len() as u64 * PAIR_ENTRY_BYTES;
                self.budget
                    .credit(CacheKind::Pairs, drained.len() as u64 * PAIR_ENTRY_BYTES);
            }
        }
        {
            let (entries, bytes) = self.session.bags.clear();
            self.budget.credit(CacheKind::Bags, bytes);
            evicted += entries;
            freed += bytes;
        }
        self.budget.record_sweep(evicted, freed);
    }
}

/// The `DetShEx₀⁻` gate shared by the det pipeline and the characterizing
/// cache.
fn require_det_minus(entry: &SchemaEntry) -> Result<(), NotDetShex0Minus> {
    if entry.class == SchemaClass::DetShEx0Minus {
        Ok(())
    } else {
        Err(NotDetShex0Minus {
            violations: entry.schema.det_shex0_minus_violations(),
        })
    }
}

/// A structural hash of a schema: type count, every type's name, and its
/// full expression tree walked constructor by constructor. Registration
/// verifies bucket hits with [`same_schema_structure`], so the hash only
/// routes lookups — unlike the historical `String` fingerprint (type names
/// plus `Debug` renderings), computing it allocates nothing.
fn schema_hash(schema: &Schema) -> u64 {
    let mut hasher = DefaultHasher::new();
    schema.type_count().hash(&mut hasher);
    for t in schema.types() {
        schema.type_name(t).hash(&mut hasher);
        hash_rbe(schema.def(t), &mut hasher);
    }
    hasher.finish()
}

/// Constructor-tagged structural hash of an expression tree. Degenerate
/// wrappers stay distinct — `Disj([e])` hashes differently from plain `e` —
/// matching the exact-equality verification below.
fn hash_rbe(expr: &Rbe<Atom>, hasher: &mut DefaultHasher) {
    match expr {
        Rbe::Epsilon => 0u8.hash(hasher),
        Rbe::Symbol(atom) => {
            1u8.hash(hasher);
            atom.hash(hasher);
        }
        Rbe::Disj(parts) => {
            2u8.hash(hasher);
            parts.len().hash(hasher);
            for p in parts {
                hash_rbe(p, hasher);
            }
        }
        Rbe::Concat(parts) => {
            3u8.hash(hasher);
            parts.len().hash(hasher);
            for p in parts {
                hash_rbe(p, hasher);
            }
        }
        Rbe::Repeat(inner, interval) => {
            4u8.hash(hasher);
            interval.lo().hash(hasher);
            interval.hi().hash(hasher);
            hash_rbe(inner, hasher);
        }
    }
}

/// Exact structural identity of two schemas: same type names in the same
/// order, structurally identical definitions (`Rbe` equality keeps
/// degenerate wrappers like `Disj([e])` distinct from `e`, so schemas that
/// merely render alike stay distinct entries).
fn same_schema_structure(a: &Schema, b: &Schema) -> bool {
    a.type_count() == b.type_count()
        && a.types()
            .all(|t| a.type_name(t) == b.type_name(t) && a.def(t) == b.def(t))
}

/// The memoised validation verdict against `entry`'s schema: read-lock
/// lookup, compute outside any lock, write-lock insert. Racing threads may
/// compute the same (deterministic) verdict twice; both insertions agree.
/// The caller supplies the [`ValidateScratch`] so a loop of verdicts reuses
/// one set of flow buffers.
fn validate_memoised(
    entry: &SchemaEntry,
    counters: &EngineCounters,
    budget: &CacheBudget,
    graph: &Graph,
    scratch: &mut ValidateScratch,
) -> bool {
    let hash = candidate_hash(graph);
    if let Some(v) = read_or_recover(&entry.validate_memo).get(hash, graph, budget) {
        EngineCounters::tick(&counters.validate_hits);
        return v;
    }
    EngineCounters::tick(&counters.validate_misses);
    let v = validates_with(graph, &entry.schema, scratch);
    write_or_recover(&entry.validate_memo).insert(hash, graph, v, budget);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    fn quick_engine() -> ContainmentEngine {
        ContainmentEngine::with_options(EngineOptions::quick())
    }

    #[test]
    fn registration_interns_by_content() {
        let a = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let a_again = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let b = parse_schema("T -> p::L\nL -> EMPTY\n").unwrap();
        let engine = quick_engine();
        let ia = engine.register(&a);
        assert_eq!(engine.register(&a_again), ia);
        assert_ne!(engine.register(&b), ia);
        assert_eq!(engine.stats().schemas, 2);
        assert_eq!(engine.schema(ia).type_count(), 2);
        assert!(engine.is_registered(ia));
        assert_eq!(engine.schema_count(), 2);
    }

    #[test]
    fn registration_shares_label_allocations_across_schemas() {
        // Two independently parsed schemas use the same predicates; after
        // registration the engine's copies share one allocation per label.
        let a = parse_schema("T -> name::L, email::L?\nL -> EMPTY\n").unwrap();
        let b = parse_schema("S -> name::L, name::L\nL -> EMPTY\n").unwrap();
        let engine = quick_engine();
        let ia = engine.register(&a);
        let ib = engine.register(&b);
        let label_of = |s: &Schema, ty: &str| {
            let t = s.find_type(ty).unwrap();
            s.def(t).to_rbe0().unwrap().atoms()[0].0.label.clone()
        };
        let name_a = label_of(&engine.schema(ia), "T");
        let name_b = label_of(&engine.schema(ib), "S");
        assert_eq!(name_a.as_str(), "name");
        assert!(
            name_a.ptr_eq(&name_b),
            "registered schemas must share the session's label allocations"
        );
    }

    #[test]
    fn concurrent_registration_of_one_schema_agrees_on_the_handle() {
        let schema = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let engine = quick_engine();
        let ids: Vec<SchemaId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| engine.register(&schema)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "one entry, one id");
        assert_eq!(engine.schema_count(), 1);
    }

    #[test]
    fn structurally_distinct_schemas_are_not_interned_together() {
        use shapex_rbe::Rbe;
        use shapex_shex::Atom;
        // `Disj([symbol])` renders like the bare symbol but is full ShEx
        // (outside RBE0); the fingerprint must keep the two entries apart so
        // `det` still rejects the wrapped one.
        let mut plain = Schema::new();
        let t = plain.add_type("T");
        let l = plain.add_type("L");
        plain.define(t, Rbe::symbol(Atom::new("p", l)));
        let mut wrapped = Schema::new();
        let t2 = wrapped.add_type("T");
        let l2 = wrapped.add_type("L");
        // Raw variant construction: the `Rbe::disj` smart constructor would
        // collapse the unary case.
        wrapped.define(t2, Rbe::Disj(vec![Rbe::symbol(Atom::new("p", l2))]));
        assert_eq!(format!("{plain}"), format!("{wrapped}"), "same rendering");
        let engine = quick_engine();
        let ip = engine.register(&plain);
        let iw = engine.register(&wrapped);
        assert_ne!(ip, iw, "distinct structure must get distinct entries");
        assert!(engine.det(&plain, &plain).is_ok());
        assert!(engine.det(&wrapped, &wrapped).is_err(), "not RBE0");
    }

    #[test]
    fn repeated_queries_hit_the_caches() {
        // A contained-but-unknown pair: the search exhausts its budget, so
        // the second identical query must be answered from warm pools and
        // memos without a single fresh validation.
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let engine = quick_engine();
        let first = engine.shex0(&h, &k);
        let after_first = engine.stats();
        assert!(after_first.validate_misses > 0);
        let second = engine.shex0(&h, &k);
        let after_second = engine.stats();
        assert_eq!(
            after_second.validate_misses, after_first.validate_misses,
            "warm session must not validate anything again"
        );
        assert!(after_second.pool_hits > after_first.pool_hits);
        assert_eq!(format!("{first}"), format!("{second}"));
    }

    #[test]
    fn stats_display_reports_ratios() {
        let stats = EngineStats {
            schemas: 2,
            validate_hits: 3,
            validate_misses: 1,
            embed_hits: 0,
            embed_misses: 2,
            pool_bytes: 100,
            validate_bytes: 20,
            pair_bytes: 3,
            unfolder_bytes: 7,
            pinned_bytes: 500,
            ..EngineStats::default()
        };
        assert_eq!(stats.evictable_bytes(), 130);
        assert_eq!(stats.resident_bytes(), 630);
        let text = format!("{stats}");
        assert!(text.contains("2 schemas"), "{text}");
        assert!(text.contains("3 hits / 1 misses (75.0% hit)"), "{text}");
        assert!(text.contains("0 hits / 2 misses (0.0% hit)"), "{text}");
        assert!(text.contains("130 B evictable"), "{text}");
        assert!(text.contains("budget unbounded"), "{text}");
    }

    #[test]
    fn builder_configures_every_knob() {
        let options = EngineOptions::builder()
            .search(SearchOptions::quick())
            .threads(3)
            .parallel_threshold(4)
            .matrix_threads(2)
            .cache_budget(1 << 20)
            .max_entry_bytes(1 << 16)
            .coalesce(false)
            .build();
        assert_eq!(options.threads, 3);
        assert_eq!(options.parallel_threshold, 4);
        assert_eq!(options.matrix_threads, 2);
        assert_eq!(options.cache_budget, Some(1 << 20));
        assert_eq!(options.max_entry_bytes, Some(1 << 16));
        assert!(!options.coalesce);
        assert!(
            EngineOptions::default().coalesce,
            "coalescing is on by default"
        );
        assert_eq!(
            options.search.max_depth,
            SearchOptions::quick().max_depth,
            "search budget must carry through the builder"
        );
        let unbounded = EngineOptions::builder()
            .threads(0)
            .unbounded_cache()
            .build();
        assert_eq!(unbounded.threads, 1, "thread counts clamp to at least 1");
        assert_eq!(unbounded.cache_budget, None);
    }

    #[test]
    fn tiny_budget_engine_matches_unbounded_verdicts() {
        // A budget far smaller than one pool: every query sweeps, the
        // clear-everything fallback runs, and the verdicts (including the
        // witness) still match the unbounded engine bit for bit.
        let texts = [
            "T -> p::L?\nL -> EMPTY\n",
            "T -> p::L*\nL -> EMPTY\n",
            "Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n",
            "Root -> p::A, p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n",
        ];
        let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let unbounded = quick_engine();
        let bounded = ContainmentEngine::with_options(
            EngineOptions::builder()
                .search(SearchOptions::quick())
                .cache_budget(256)
                .build(),
        );
        for _round in 0..2 {
            for h in &schemas {
                for k in &schemas {
                    let a = unbounded.check(h, k);
                    let b = bounded.check(h, k);
                    assert_eq!(format!("{a}"), format!("{b}"));
                    let stats = bounded.stats();
                    assert!(
                        stats.evictable_bytes() <= 256,
                        "evictable {} exceeds the 256 B budget",
                        stats.evictable_bytes()
                    );
                }
            }
        }
        let stats = bounded.stats();
        assert!(stats.evictions > 0, "a 256 B budget must evict: {stats}");
        assert!(stats.sweeps > 0);
        assert!(stats.pinned_bytes > 0, "registered schemas are counted");
        assert_eq!(unbounded.stats().evictions, 0, "unbounded never evicts");
    }

    #[test]
    fn invalidate_candidate_drops_one_structure_and_balances_the_ledger() {
        let engine = quick_engine();
        let schema = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let id = engine.register(&schema);
        let entry = engine.entry(id);
        let member = shapex_graph::parse_graph("a -p-> b\n").unwrap();
        let other = shapex_graph::parse_graph("a -p-> b\nb -p-> c\n").unwrap();
        {
            let mut memo = entry.validate_memo.write().unwrap();
            memo.insert(candidate_hash(&member), &member, true, &engine.budget);
            memo.insert(candidate_hash(&other), &other, false, &engine.budget);
        }
        let before = engine.stats().validate_bytes;
        assert!(before > 0);
        let absent = shapex_graph::parse_graph("x -q-> y\n").unwrap();
        assert_eq!(
            engine.invalidate_candidate(&absent),
            0,
            "absent structures free nothing"
        );
        assert_eq!(engine.stats().validate_bytes, before);
        let freed = engine.invalidate_candidate(&member);
        assert!(freed > 0);
        assert_eq!(
            engine.stats().validate_bytes,
            before - freed,
            "the ledger credits exactly the freed record"
        );
        let memo = entry.validate_memo.read().unwrap();
        assert!(
            memo.get(candidate_hash(&other), &other, &engine.budget)
                .is_some(),
            "the unrelated candidate's verdict stays warm"
        );
        assert!(memo
            .get(candidate_hash(&member), &member, &engine.budget)
            .is_none());
    }

    #[test]
    fn invalidate_pools_drains_one_schema_and_leaves_neighbours_warm() {
        let engine = quick_engine();
        let h = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        // Warm both directions so both entries hold enumerated pools.
        engine.check(&h, &k);
        engine.check(&k, &h);
        let ih = engine.register(&h);
        let ik = engine.register(&k);
        let pool_bytes_of = |id: SchemaId| -> u64 {
            engine
                .entry(id)
                .enumerated
                .read()
                .unwrap()
                .values()
                .map(|slot| slot.bytes)
                .sum()
        };
        let before = engine.stats();
        let h_pools = pool_bytes_of(ih);
        let k_pools = pool_bytes_of(ik);
        let h_unfolder = engine.entry(ih).unfolder_bytes.load(Ordering::Relaxed);
        assert!(h_pools + h_unfolder > 0, "warm-up must build h's pools");
        let freed = engine.invalidate_pools(ih);
        assert_eq!(freed, h_pools + h_unfolder);
        let after = engine.stats();
        assert_eq!(after.pool_bytes, before.pool_bytes - h_pools);
        assert_eq!(after.unfolder_bytes, before.unfolder_bytes - h_unfolder);
        assert!(engine.entry(ih).enumerated.read().unwrap().is_empty());
        assert_eq!(pool_bytes_of(ik), k_pools, "neighbour pools are untouched");
        assert_eq!(
            after.validate_bytes, before.validate_bytes,
            "validation memos are not this knob's business"
        );
        assert_eq!(
            engine.invalidate_pools(SchemaId::from_index(999)),
            0,
            "unknown handles free nothing"
        );
        // The drained caches rebuild transparently: verdicts are unchanged.
        let again = engine.check(&h, &k);
        assert_eq!(format!("{again}"), format!("{}", engine.check(&h, &k)));
    }

    #[test]
    fn matrix_matches_individual_checks() {
        let texts = [
            "T -> p::L?\nL -> EMPTY\n",
            "T -> p::L*\nL -> EMPTY\n",
            "T -> p::L\nL -> EMPTY\n",
        ];
        let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let engine = quick_engine();
        let matrix = engine.check_matrix(&schemas);
        for (i, row) in matrix.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let fresh = quick_engine();
                let one_shot = fresh.check(&schemas[i], &schemas[j]);
                assert_eq!(
                    format!("{cell}"),
                    format!("{one_shot}"),
                    "matrix[{i}][{j}] disagrees with the one-shot answer"
                );
            }
        }
        // Diagonal is always contained for these schemas.
        for (i, row) in matrix.iter().enumerate() {
            assert!(row[i].is_contained(), "matrix[{i}][{i}]");
        }
    }

    #[test]
    fn row_parallel_matrix_matches_serial() {
        let texts = [
            "T -> p::L?\nL -> EMPTY\n",
            "T -> p::L*\nL -> EMPTY\n",
            "T -> p::L+\nL -> EMPTY\n",
            "T -> p::L, p::L?\nL -> EMPTY\n",
        ];
        let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let serial = quick_engine().check_matrix(&schemas);
        for workers in [2usize, 8] {
            let options = EngineOptions::quick().with_matrix_threads(workers);
            let parallel = ContainmentEngine::with_options(options).check_matrix(&schemas);
            for (i, (row_s, row_p)) in serial.iter().zip(&parallel).enumerate() {
                for (j, (s, p)) in row_s.iter().zip(row_p).enumerate() {
                    assert_eq!(
                        format!("{s}"),
                        format!("{p}"),
                        "matrix[{i}][{j}] differs at {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_engine_answers_identically() {
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let sequential = quick_engine().shex0(&h, &k);
        let mut options = EngineOptions::quick();
        options.threads = 4;
        options.parallel_threshold = 1;
        let parallel = ContainmentEngine::with_options(options).shex0(&h, &k);
        assert_eq!(format!("{sequential}"), format!("{parallel}"));
        assert!(parallel.is_not_contained());
    }

    #[test]
    fn unknown_answers_carry_budget_reasons() {
        use crate::UnknownReason;
        // The Figure-1 original-vs-split pair: semantically contained, no
        // embedding, split is not DetShEx0-, no counter-example exists — the
        // budget runs dry.
        let original = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
             User -> name::Literal, email::Literal?\n",
        )
        .unwrap();
        let split = parse_schema(
            "Bug1 -> descr::Literal, reportedBy::User1, related::Bug1*, related::Bug2*\n\
             Bug2 -> descr::Literal, reportedBy::User2, related::Bug1*, related::Bug2*\n\
             User1 -> name::Literal\n\
             User2 -> name::Literal, email::Literal\n",
        )
        .unwrap();
        let answer = quick_engine().shex0(&original, &split);
        assert!(answer.is_unknown());
        match answer.unknown_reason().unwrap() {
            UnknownReason::BudgetExhausted { candidates, depth } => {
                assert!(*candidates > 0);
                assert_eq!(*depth, SearchOptions::quick().max_depth);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_surfaces_within_the_latency_bound() {
        use crate::UnknownReason;
        use std::time::Instant;
        // The budget-exhausting Figure-1 anchor pair under a 10 ms deadline:
        // the engine must answer DeadlineExceeded well inside 100 ms instead
        // of running the full search budget — while the same engine
        // concurrently completes an undeadlined query bit-identical to a
        // fresh oracle.
        let original = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
             User -> name::Literal, email::Literal?\n",
        )
        .unwrap();
        let split = parse_schema(
            "Bug1 -> descr::Literal, reportedBy::User1, related::Bug1*, related::Bug2*\n\
             Bug2 -> descr::Literal, reportedBy::User2, related::Bug1*, related::Bug2*\n\
             User1 -> name::Literal\n\
             User2 -> name::Literal, email::Literal\n",
        )
        .unwrap();
        // A cheap pair for the concurrent undeadlined query, so the test
        // does not pay the anchor pair's full default search budget twice.
        let wide = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
        let narrow = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        let engine = Arc::new(ContainmentEngine::new());
        let ih = engine.register(&original);
        let ik = engine.register(&split);
        let (deadlined, undeadlined) = std::thread::scope(|scope| {
            let fast = {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let started = Instant::now();
                    let verdict =
                        engine.check_ids_deadline(ih, ik, std::time::Duration::from_millis(10));
                    (verdict, started.elapsed())
                })
            };
            let slow = {
                let engine = Arc::clone(&engine);
                let (h, k) = (narrow.clone(), wide.clone());
                scope.spawn(move || engine.check(&h, &k))
            };
            (fast.join().unwrap(), slow.join().unwrap())
        });
        let (verdict, wall) = deadlined;
        match verdict.unknown_reason() {
            Some(UnknownReason::DeadlineExceeded { elapsed }) => {
                assert!(*elapsed >= std::time::Duration::from_millis(10));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            wall < std::time::Duration::from_millis(100),
            "a 10 ms deadline must surface within 100 ms, took {wall:?}"
        );
        // The concurrent undeadlined query on the same engine matches a
        // fresh (never-deadlined) engine bit for bit.
        let oracle = ContainmentEngine::new().check(&narrow, &wide);
        assert_eq!(format!("{undeadlined}"), format!("{oracle}"));
        let stats = engine.stats();
        assert!(stats.deadline_exceeded >= 1, "{stats}");
        assert!(stats.cancelled_branches >= 1, "{stats}");
        let text = format!("{stats}");
        assert!(text.contains("deadlines exceeded"), "{text}");
    }

    #[test]
    fn cancelled_query_leaves_caches_answering_identically() {
        // Fire a token mid-search from another thread, then re-ask the same
        // pair undeadlined on the same engine: the answer must match a fresh
        // engine's, i.e. the cancelled run memoised nothing partial.
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let engine = quick_engine();
        let ih = engine.register(&h);
        let ik = engine.register(&k);
        let token = CancelToken::new();
        token.cancel(); // fire before the search even starts
        let verdict = engine.check_ids_cancellable(ih, ik, &token);
        assert!(
            matches!(
                verdict.unknown_reason(),
                Some(crate::UnknownReason::DeadlineExceeded { .. })
            ),
            "{verdict}"
        );
        let again = engine.check_ids(ih, ik);
        let oracle = quick_engine().check(&h, &k);
        assert_eq!(format!("{again}"), format!("{oracle}"));
    }

    #[test]
    fn deadlined_matrix_fills_every_cell_with_typed_answers() {
        let texts = [
            "T -> p::L?\nL -> EMPTY\n",
            "T -> p::L*\nL -> EMPTY\n",
            "T -> p::L\nL -> EMPTY\n",
        ];
        let schemas: Vec<Schema> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let engine = quick_engine();
        // A generous deadline: every cell completes and matches the
        // undeadlined matrix.
        let relaxed = engine.check_matrix_deadline(&schemas, std::time::Duration::from_secs(3600));
        let plain = quick_engine().check_matrix(&schemas);
        for (row_a, row_b) in relaxed.iter().zip(plain.iter()) {
            for (a, b) in row_a.iter().zip(row_b.iter()) {
                assert_eq!(format!("{a}"), format!("{b}"));
            }
        }
        // An already-expired deadline: the matrix still comes back fully
        // populated, every cell a typed DeadlineExceeded.
        let expired = engine.check_matrix_deadline(&schemas, std::time::Duration::ZERO);
        for row in expired.iter() {
            for cell in row.iter() {
                assert!(
                    matches!(
                        cell.unknown_reason(),
                        Some(crate::UnknownReason::DeadlineExceeded { .. })
                    ),
                    "{cell}"
                );
            }
        }
        assert!(engine.stats().deadline_exceeded >= 9);
    }

    #[test]
    fn single_flight_coalesces_concurrent_callers() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let table: SingleFlight<(u32, u32), u64> = SingleFlight::new(4);
        let computed = AtomicUsize::new(0);
        let coalesced = AtomicU64::new(0);
        let barrier = Barrier::new(4);
        let values: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        table.run(
                            (7, 9),
                            || {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Outlast the followers' walk to the wait.
                                std::thread::sleep(std::time::Duration::from_millis(100));
                                42
                            },
                            &coalesced,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 42));
        let runs = computed.load(Ordering::Relaxed) as u64;
        assert_eq!(
            runs + coalesced.load(Ordering::Relaxed),
            4,
            "every caller either computed or coalesced"
        );
        assert_eq!(runs, 1, "one 100ms flight absorbs all barrier racers");
        assert!(
            table.shards.iter().all(|s| s.lock().unwrap().is_empty()),
            "flights retire their table entries"
        );
    }

    #[test]
    fn single_flight_abandons_on_leader_panic() {
        let table: Arc<SingleFlight<(u32, u32), u64>> = Arc::new(SingleFlight::new(1));
        let coalesced = Arc::new(AtomicU64::new(0));
        let leader = {
            let table = Arc::clone(&table);
            let coalesced = Arc::clone(&coalesced);
            std::thread::spawn(move || {
                table.run(
                    (1, 2),
                    || {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader dies mid-flight")
                    },
                    &coalesced,
                )
            })
        };
        // Give the leader time to take the flight, then follow it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let follower = table.run((1, 2), || 7, &coalesced);
        assert_eq!(follower, 7, "follower recomputes after an abandoned flight");
        assert!(leader.join().is_err(), "leader panicked");
        assert!(table.shards[0].lock().unwrap().is_empty());
    }

    #[test]
    fn uncoalesced_engine_answers_identically() {
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let coalesced = quick_engine();
        let plain = ContainmentEngine::with_options(EngineOptions::quick().with_coalesce(false));
        for (a, b) in [(&h, &k), (&k, &h), (&h, &h)] {
            assert_eq!(
                format!("{}", coalesced.check(a, b)),
                format!("{}", plain.check(a, b))
            );
        }
        assert_eq!(plain.stats().coalesced_queries, 0);
        assert_eq!(plain.stats().coalesced_pools, 0);
    }

    #[test]
    fn admission_ceiling_keeps_oversized_pools_out_of_the_cache() {
        let h = parse_schema("Root -> p::A, p::B\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> a::L?\nB -> b::L?\nL -> EMPTY\n").unwrap();
        let unbounded = quick_engine();
        // A 32-byte ceiling refuses every pool, validation record, and even
        // the 64-byte pair entries: nothing is cached, verdicts unchanged.
        let strict =
            ContainmentEngine::with_options(EngineOptions::quick().with_max_entry_bytes(32));
        for _round in 0..2 {
            for (a, b) in [(&h, &k), (&k, &h)] {
                assert_eq!(
                    format!("{}", unbounded.check(a, b)),
                    format!("{}", strict.check(a, b))
                );
            }
        }
        let stats = strict.stats();
        assert!(stats.admission_rejections > 0, "{stats}");
        assert_eq!(stats.max_entry_bytes, Some(32));
        // Every *entry* cache stays empty; only the unfolder arenas (delta
        // accounted, not per-entry) may carry bytes.
        assert_eq!(stats.pool_bytes, 0, "no pool admitted: {stats}");
        assert_eq!(stats.validate_bytes, 0, "no record admitted: {stats}");
        assert_eq!(stats.pair_bytes, 0, "no pair entry admitted: {stats}");
        assert_eq!(stats.bag_bytes, 0, "no enumeration admitted: {stats}");
        assert_eq!(
            stats.validate_hits, 0,
            "an empty memo can never answer a lookup"
        );
        let text = format!("{stats}");
        assert!(text.contains("admission ceiling 32 B"), "{text}");
        assert_eq!(unbounded.stats().admission_rejections, 0);
    }
}
