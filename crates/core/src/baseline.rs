//! Brute-force baseline: exhaustive enumeration of small counter-examples.
//!
//! Containment `L(H) ⊆ L(K)` fails iff some simple graph validates against
//! `H` but not against `K`. This module enumerates *all* simple graphs up to
//! a node bound over the combined label alphabet and tests each one. The
//! search space is `2^(n²·|Σ|)`, so this is only usable for tiny bounds; it
//! serves as a test oracle for the smarter procedures and as the baseline in
//! the benchmark harness (every speed-up of the paper's techniques is
//! measured against it).

use shapex_graph::{Graph, Label};
use shapex_shex::typing::validates;
use shapex_shex::Schema;

/// Enumerate simple graphs with up to `max_nodes` nodes (and at most
/// `max_edges` edges) over the union of the two schemas' alphabets, returning
/// the first graph found in `L(H) \ L(K)`.
///
/// `budget` caps the number of graphs examined; `None` is returned when the
/// budget or the enumeration is exhausted without finding a counter-example,
/// which therefore does **not** prove containment beyond the explored size.
pub fn enumerate_counter_example(
    h: &Schema,
    k: &Schema,
    max_nodes: usize,
    max_edges: usize,
    budget: usize,
) -> Option<Graph> {
    let mut labels: Vec<Label> = h.labels();
    for l in k.labels() {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    if labels.is_empty() {
        // Schemas without any label: only edge-less graphs exist.
        let mut g = Graph::new();
        g.add_node();
        return if validates(&g, h) && !validates(&g, k) {
            Some(g)
        } else {
            None
        };
    }

    let mut examined = 0usize;
    for n in 1..=max_nodes {
        // All possible (source, label, target) triples over n nodes.
        let positions: Vec<(u32, usize, u32)> = (0..n as u32)
            .flat_map(|s| {
                let labels = &labels;
                (0..labels.len()).flat_map(move |l| (0..n as u32).map(move |t| (s, l, t)))
            })
            .collect();
        let p = positions.len();
        if p >= usize::BITS as usize {
            return None; // the bitmask enumeration below cannot cover this
        }
        for mask in 0u64..(1u64 << p) {
            if (mask.count_ones() as usize) > max_edges {
                continue;
            }
            examined += 1;
            if examined > budget {
                return None;
            }
            let mut g = Graph::new();
            for i in 0..n {
                g.add_named_node(format!("v{i}"));
            }
            for (bit, (s, l, t)) in positions.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    g.add_edge(
                        shapex_graph::NodeId(*s),
                        labels[*l].clone(),
                        shapex_graph::NodeId(*t),
                    );
                }
            }
            if validates(&g, h) && !validates(&g, k) {
                return Some(g);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    #[test]
    fn finds_the_obvious_counter_example() {
        // h allows an optional q next to the mandatory p; k forbids q. A node
        // with both edges is valid for h only.
        let h = parse_schema("A -> p::L, q::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("A -> p::L\nL -> EMPTY\n").unwrap();
        let witness = enumerate_counter_example(&h, &k, 3, 3, 500_000).expect("found");
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
        // The converse containment holds, so nothing is found.
        assert!(enumerate_counter_example(&k, &h, 2, 3, 50_000).is_none());
    }

    #[test]
    fn agrees_with_upper_bound_interval_example() {
        let h = parse_schema("T -> p::L, p::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        // Two p-edges are required by h and forbidden by k.
        let witness = enumerate_counter_example(&h, &k, 3, 4, 200_000).expect("found");
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
    }

    #[test]
    fn label_free_schemas() {
        let h = parse_schema("T -> EMPTY\n").unwrap();
        let k = parse_schema("T -> EMPTY\n").unwrap();
        assert!(enumerate_counter_example(&h, &k, 2, 2, 1_000).is_none());
    }

    #[test]
    fn budget_is_respected() {
        let h = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        // A tiny budget cannot reach the two-edge counter-example.
        assert!(enumerate_counter_example(&h, &k, 3, 4, 3).is_none());
        // A generous budget finds it.
        assert!(enumerate_counter_example(&h, &k, 3, 4, 500_000).is_some());
    }
}
