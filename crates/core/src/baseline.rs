//! Brute-force baselines kept as test oracles and benchmark reference
//! points.
//!
//! * [`enumerate_counter_example`] — containment `L(H) ⊆ L(K)` fails iff
//!   some simple graph validates against `H` but not against `K`; this
//!   enumerates *all* simple graphs up to a node bound over the combined
//!   label alphabet and tests each one. The search space is `2^(n²·|Σ|)`,
//!   so this is only usable for tiny bounds.
//! * [`max_simulation_baseline`] — the original full-rescan fix-point
//!   computation of the maximal simulation, retained verbatim as the oracle
//!   the worklist + bitset engine of [`crate::simulation`] is checked
//!   against (and the baseline the `sim_engine_scaling` bench measures its
//!   speed-up over).
//! * [`search_counter_example_baseline`] — the original memo-free
//!   counter-example search, retained verbatim as the oracle for the pooled
//!   and memoised search of [`crate::engine::ContainmentEngine`] (and the
//!   baseline of the `batch_matrix` bench).

use std::collections::BTreeSet;

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_graph::{Graph, Label, NodeId};
use shapex_rbe::flow::{basic_assignment, general_assignment};
use shapex_rbe::Interval;
use shapex_shex::typing::validates;
use shapex_shex::{Schema, TypeId};

use crate::simulation::Simulation;
use crate::unfold::{enumerate_members, sample_member, SearchOptions};

/// Compute the maximal simulation of `G` in `H` by naive fix-point
/// refinement: starting from the full relation `N_G × N_H`, every pair is
/// re-examined on every iteration and pairs without a witness are removed
/// until a whole sweep changes nothing.
///
/// This is `O(iterations · |N_G| · |N_H|)` witness checks with
/// `Arc<str>`-equality label comparison and per-call interval allocation —
/// exactly the implementation the worklist engine replaced. It is retained
/// as the equivalence oracle for the property suite and as the benchmark
/// baseline; production callers should use
/// [`crate::embedding::max_simulation`].
pub fn max_simulation_baseline(g: &Graph, h: &Graph) -> Simulation {
    let all_h: BTreeSet<NodeId> = h.nodes().collect();
    let mut simulators: Vec<BTreeSet<NodeId>> = vec![all_h; g.node_count()];

    loop {
        let mut changed = false;
        for n in g.nodes() {
            let candidates: Vec<NodeId> = simulators[n.index()].iter().copied().collect();
            for m in candidates {
                if !has_witness(g, n, h, m, &simulators) {
                    simulators[n.index()].remove(&m);
                    changed = true;
                }
            }
        }
        if !changed {
            return Simulation::from_simulators(simulators);
        }
    }
}

/// Whether there is a witness of simulation of `n` (in `G`) by `m` (in `H`)
/// with respect to the candidate relation `simulators`.
fn has_witness(
    g: &Graph,
    n: NodeId,
    h: &Graph,
    m: NodeId,
    simulators: &[BTreeSet<NodeId>],
) -> bool {
    let g_edges = g.out(n);
    let h_edges = h.out(m);
    let sources: Vec<Interval> = g_edges.iter().map(|&e| g.occur(e)).collect();
    let sinks: Vec<Interval> = h_edges.iter().map(|&f| h.occur(f)).collect();
    let compatible = |v: usize, u: usize| {
        let e = g_edges[v];
        let f = h_edges[u];
        g.label(e) == h.label(f) && simulators[g.target(e).index()].contains(&h.target(f))
    };
    let all_basic = sources.iter().chain(sinks.iter()).all(|i| i.is_basic());
    if all_basic {
        basic_assignment(&sources, &sinks, compatible).is_some()
    } else {
        general_assignment(&sources, &sinks, compatible).is_some()
    }
}

/// The original one-shot counter-example search: systematic unfoldings first
/// (every root, depths `1..=max_depth`), then randomized sampling — with no
/// pooling or memoisation, every candidate graph is re-enumerated and
/// re-validated from scratch.
///
/// Retained verbatim as the answer oracle for the session-layer search of
/// [`crate::engine::ContainmentEngine`]: the engine must examine the same
/// candidates in the same order, so both return the same witness (or both
/// return `None`) — a property the `engine_session` *and* the
/// `engine_concurrency` suites assert, the latter against serial, warm,
/// and row-parallel shared-state sessions. Production callers should use
/// [`crate::unfold::search_counter_example`] or hold an engine.
pub fn search_counter_example_baseline(
    h: &Schema,
    k: &Schema,
    options: &SearchOptions,
) -> Option<Graph> {
    let mut examined = 0usize;
    // Systematic phase.
    for root in h.types() {
        for depth in 1..=options.max_depth {
            let scoped = SearchOptions {
                max_depth: depth,
                ..options.clone()
            };
            for graph in enumerate_members(h, root, &scoped) {
                examined += 1;
                if examined > options.max_candidates {
                    break;
                }
                if !validates(&graph, k) {
                    return Some(graph);
                }
            }
        }
    }
    // Randomized phase.
    let mut rng = StdRng::seed_from_u64(options.seed);
    let roots: Vec<TypeId> = h.types().collect();
    if roots.is_empty() {
        return None;
    }
    for _ in 0..options.random_samples {
        let root = roots[rng.gen_range(0..roots.len())];
        if let Some(graph) = sample_member(h, root, &mut rng, options) {
            if !validates(&graph, k) {
                return Some(graph);
            }
        }
    }
    None
}

/// Enumerate simple graphs with up to `max_nodes` nodes (and at most
/// `max_edges` edges) over the union of the two schemas' alphabets, returning
/// the first graph found in `L(H) \ L(K)`.
///
/// `budget` caps the number of graphs examined; `None` is returned when the
/// budget or the enumeration is exhausted without finding a counter-example,
/// which therefore does **not** prove containment beyond the explored size.
pub fn enumerate_counter_example(
    h: &Schema,
    k: &Schema,
    max_nodes: usize,
    max_edges: usize,
    budget: usize,
) -> Option<Graph> {
    let mut labels: Vec<Label> = h.labels();
    for l in k.labels() {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    if labels.is_empty() {
        // Schemas without any label: only edge-less graphs exist.
        let mut g = Graph::new();
        g.add_node();
        return if validates(&g, h) && !validates(&g, k) {
            Some(g)
        } else {
            None
        };
    }

    let mut examined = 0usize;
    for n in 1..=max_nodes {
        // All possible (source, label, target) triples over n nodes.
        let positions: Vec<(u32, usize, u32)> = (0..n as u32)
            .flat_map(|s| {
                let labels = &labels;
                (0..labels.len()).flat_map(move |l| (0..n as u32).map(move |t| (s, l, t)))
            })
            .collect();
        let p = positions.len();
        if p >= usize::BITS as usize {
            return None; // the bitmask enumeration below cannot cover this
        }
        for mask in 0u64..(1u64 << p) {
            if (mask.count_ones() as usize) > max_edges {
                continue;
            }
            examined += 1;
            if examined > budget {
                return None;
            }
            let mut g = Graph::new();
            for i in 0..n {
                g.add_named_node(format!("v{i}"));
            }
            for (bit, (s, l, t)) in positions.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    g.add_edge(
                        shapex_graph::NodeId(*s),
                        labels[*l].clone(),
                        shapex_graph::NodeId(*t),
                    );
                }
            }
            if validates(&g, h) && !validates(&g, k) {
                return Some(g);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    #[test]
    fn finds_the_obvious_counter_example() {
        // h allows an optional q next to the mandatory p; k forbids q. A node
        // with both edges is valid for h only.
        let h = parse_schema("A -> p::L, q::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("A -> p::L\nL -> EMPTY\n").unwrap();
        let witness = enumerate_counter_example(&h, &k, 3, 3, 500_000).expect("found");
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
        // The converse containment holds, so nothing is found.
        assert!(enumerate_counter_example(&k, &h, 2, 3, 50_000).is_none());
    }

    #[test]
    fn agrees_with_upper_bound_interval_example() {
        let h = parse_schema("T -> p::L, p::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        // Two p-edges are required by h and forbidden by k.
        let witness = enumerate_counter_example(&h, &k, 3, 4, 200_000).expect("found");
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
    }

    #[test]
    fn label_free_schemas() {
        let h = parse_schema("T -> EMPTY\n").unwrap();
        let k = parse_schema("T -> EMPTY\n").unwrap();
        assert!(enumerate_counter_example(&h, &k, 2, 2, 1_000).is_none());
    }

    #[test]
    fn budget_is_respected() {
        let h = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?\nL -> EMPTY\n").unwrap();
        // A tiny budget cannot reach the two-edge counter-example.
        assert!(enumerate_counter_example(&h, &k, 3, 4, 3).is_none());
        // A generous budget finds it.
        assert!(enumerate_counter_example(&h, &k, 3, 4, 500_000).is_some());
    }
}
