//! Deterministic fault injection for chaos testing, behind the `failpoints`
//! cargo feature.
//!
//! The engine calls [`trigger`] at a handful of named sites (see [`site`]).
//! With the feature disabled — the default — `trigger` is an empty inline
//! function and the whole module costs nothing. With `--features failpoints`
//! a test installs a [`FaultPlan`] mapping `(site, hit index)` to a
//! [`FaultAction`]; the N-th time execution reaches that site the action
//! fires: a panic (exercising poisoned-lock recovery and worker
//! supervision) or a delay (widening race windows against live eviction
//! sweeps).
//!
//! Plans are deterministic by construction — a plan is an explicit schedule,
//! and [`FaultPlan::seeded`] derives one reproducibly from a `u64` seed — so
//! a failing chaos run replays exactly from its seed.
//!
//! The registry is process-global; chaos tests that install plans must
//! serialise on a lock of their own (Rust's test harness runs tests in
//! threads of one process).

use std::time::Duration;

/// The names of the instrumented sites, one constant per seam.
pub mod site {
    /// Just before an eviction sweep examines the cache (`maybe_evict`).
    pub const PRE_SWEEP: &str = "pre-sweep";
    /// Just after a service request's schema text parsed successfully.
    pub const POST_PARSE: &str = "post-parse";
    /// At the engine's per-candidate checkpoint in the counter-example
    /// search (the seam closest to the Presburger branch fan-out).
    pub const SOLVER_BRANCH: &str = "solver-branch";
    /// In a pool worker, just before dispatching a received request.
    pub const WORKER_DISPATCH: &str = "worker-dispatch";
}

/// All instrumented sites, in a fixed order (the order seeded schedules
/// assign faults over).
pub const SITES: [&str; 4] = [
    site::PRE_SWEEP,
    site::POST_PARSE,
    site::SOLVER_BRANCH,
    site::WORKER_DISPATCH,
];

/// What an armed failpoint does when its hit index comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an `"injected fault"` message — exercises `catch_unwind`
    /// boundaries and poisoned-lock recovery.
    Panic,
    /// Sleep for the given duration — widens race windows (e.g. against a
    /// concurrent eviction sweep) without changing any verdict.
    Delay(Duration),
}

/// A deterministic schedule of faults: for each site, which hit indices
/// (0-based occurrence counts) fire which action.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(String, u64, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (no site ever fires).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm `site` to perform `action` on its `hit`-th trigger (0-based).
    pub fn inject(mut self, site: &str, hit: u64, action: FaultAction) -> FaultPlan {
        self.entries.push((site.to_owned(), hit, action));
        self
    }

    /// A reproducible plan derived from `seed`: `panics` panic faults and
    /// `delays` short delay faults, spread over [`SITES`] and hit indices
    /// `0..8` by a splitmix64 stream. Equal seeds give equal plans.
    pub fn seeded(seed: u64, panics: usize, delays: usize) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the standard 64-bit mix, fully deterministic.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        for _ in 0..panics {
            let r = next();
            let site = SITES[(r % SITES.len() as u64) as usize];
            plan = plan.inject(site, (r >> 32) % 8, FaultAction::Panic);
        }
        for _ in 0..delays {
            let r = next();
            let site = SITES[(r % SITES.len() as u64) as usize];
            let millis = 1 + (r >> 32) % 5;
            plan = plan.inject(
                site,
                (r >> 16) % 8,
                FaultAction::Delay(Duration::from_millis(millis)),
            );
        }
        plan
    }

    /// Number of armed faults in the plan.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::FaultPlan;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, PoisonError};

    #[derive(Default)]
    struct Active {
        plan: FaultPlan,
        hits: HashMap<String, u64>,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

    /// Install a plan, replacing any previous one and resetting hit counts.
    pub fn install(plan: FaultPlan) {
        let mut active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
        *active = Some(Active {
            plan,
            hits: HashMap::new(),
        });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarm fault injection and drop the installed plan.
    pub fn clear() {
        ARMED.store(false, Ordering::SeqCst);
        let mut active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
        *active = None;
    }

    /// The number of times `site` has been reached since the last `install`.
    pub fn hits(site: &str) -> u64 {
        let active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
        active
            .as_ref()
            .and_then(|a| a.hits.get(site).copied())
            .unwrap_or(0)
    }

    /// Reach a named site: counts the hit and performs the armed action, if
    /// any. The registry lock is released *before* the action runs, so an
    /// injected panic never poisons the registry itself.
    pub fn trigger(site: &str) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let action = {
            let mut active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(active) = active.as_mut() else {
                return;
            };
            let hit = active.hits.entry(site.to_owned()).or_insert(0);
            let index = *hit;
            *hit += 1;
            active
                .plan
                .entries
                .iter()
                .find(|(s, h, _)| s == site && *h == index)
                .map(|&(_, _, action)| action)
        };
        match action {
            None => {}
            Some(super::FaultAction::Panic) => {
                panic!("injected fault at {site}");
            }
            Some(super::FaultAction::Delay(d)) => {
                std::thread::sleep(d);
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{clear, hits, install, trigger};

/// Reach a named site. With the `failpoints` feature disabled this is an
/// empty inline function — the call compiles away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn trigger(_site: &str) {}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests touching it serialise here.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn seeded_plans_are_reproducible() {
        assert_eq!(
            format!("{:?}", FaultPlan::seeded(42, 3, 2)),
            format!("{:?}", FaultPlan::seeded(42, 3, 2)),
        );
        assert_eq!(FaultPlan::seeded(7, 4, 0).len(), 4);
    }

    #[test]
    fn armed_panic_fires_on_the_scheduled_hit_only() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install(FaultPlan::new().inject(site::PRE_SWEEP, 1, FaultAction::Panic));
        trigger(site::PRE_SWEEP); // hit 0: dormant
        trigger(site::POST_PARSE); // other sites unaffected
        let caught = std::panic::catch_unwind(|| trigger(site::PRE_SWEEP));
        assert!(caught.is_err(), "hit 1 must panic");
        trigger(site::PRE_SWEEP); // hit 2: dormant again
        assert_eq!(hits(site::PRE_SWEEP), 3);
        assert_eq!(hits(site::POST_PARSE), 1);
        clear();
        trigger(site::PRE_SWEEP); // disarmed: no-op
        assert_eq!(hits(site::PRE_SWEEP), 0, "clear resets counters");
    }
}
