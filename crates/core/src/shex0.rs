//! Containment for `ShEx₀` — schemas whose definitions are RBE₀, equivalently
//! shape graphs (Section 5 of the paper).
//!
//! Containment for this class is EXP-complete (Theorems 5.3 and 5.4) and a
//! minimal counter-example can be exponentially large (Lemma 5.1), so a
//! practical procedure is necessarily budgeted. [`shex0_containment`] is sound
//! in both directions and complete in the following cases:
//!
//! 1. the embedding `H ≼ K` holds (then containment holds, Lemma 3.3);
//! 2. both schemas are in `DetShEx₀⁻` (then embedding is also necessary,
//!    Corollary 4.3, and the characterizing graph of Lemma 4.2 is returned as
//!    the counter-example when it fails);
//! 3. a counter-example exists within the unfolding budget (it is returned,
//!    certified by re-validation).
//!
//! Otherwise the procedure reports [`Containment::Unknown`].

use shapex_shex::Schema;

use crate::unfold::SearchOptions;
use crate::Containment;

/// Budget options for [`shex0_containment`].
pub type Shex0Options = SearchOptions;

/// Decide `L(H) ⊆ L(K)` for `ShEx₀` schemas (best effort; see the module
/// documentation for the exact completeness guarantees).
///
/// Falls back to the general procedure when either schema is not RBE₀.
///
/// This is the one-shot entry point: it runs through a throwaway
/// [`crate::engine::ContainmentEngine`] (embedding between the cached shape
/// graphs first, then the `DetShEx₀⁻` characterizing-graph shortcut, then
/// the pooled counter-example search). Callers issuing many queries over the
/// same schemas should hold an engine so those caches — including the
/// session-level cross-schema atom table and shared candidate-bag cache the
/// engine's [`crate::unfold::SessionContext`] carries — survive across
/// calls; a throwaway engine pays the interning cost per query.
pub fn shex0_containment(h: &Schema, k: &Schema, options: &Shex0Options) -> Containment {
    crate::engine::ContainmentEngine::with_search(options.clone()).shex0(h, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;
    use shapex_shex::typing::validates;

    fn quick() -> Shex0Options {
        Shex0Options::quick()
    }

    #[test]
    fn equivalent_schemas_are_mutually_contained() {
        // Figure 1's schema vs. the User1/User2 split from the introduction.
        let original = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Employee -> name::Literal, email::Literal\n",
        )
        .unwrap();
        let split = parse_schema(
            "Bug1 -> descr::Literal, reportedBy::User1, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
             Bug2 -> descr::Literal, reportedBy::User2, reproducedBy::Employee?, related::Bug1*, related::Bug2*\n\
             User1 -> name::Literal\n\
             User2 -> name::Literal, email::Literal\n\
             Employee -> name::Literal, email::Literal\n",
        )
        .unwrap();
        // split ⊆ original: every Bug1/Bug2 node is a Bug, every User1/User2 a
        // User. This direction is visible to the embedding check.
        assert!(shex0_containment(&split, &original, &quick()).is_contained());
        // original ⊆ split also holds semantically (the intro's argument), but
        // no embedding exists because `User` is only covered by the *union* of
        // User1 and User2; with the split schema outside DetShEx0- and no
        // counter-example to find, the budgeted search answers Unknown.
        let forward = shex0_containment(&original, &split, &quick());
        assert!(
            !forward.is_not_contained(),
            "a counter-example would contradict the paper's equivalence claim"
        );
    }

    #[test]
    fn non_containment_with_certificate() {
        let h = parse_schema("Bug -> descr::Literal, related::Bug*\nLiteral -> EMPTY\n").unwrap();
        let k = parse_schema("Bug -> descr::Literal, related::Bug?\nLiteral -> EMPTY\n").unwrap();
        // h allows arbitrarily many related bugs, k at most one.
        let result = shex0_containment(&h, &k, &quick());
        let witness = result.counter_example().expect("not contained");
        assert!(validates(witness, &h));
        assert!(!validates(witness, &k));
        // The converse holds.
        assert!(shex0_containment(&k, &h, &quick()).is_contained());
    }

    #[test]
    fn non_deterministic_schemas_still_find_counter_examples() {
        // H uses the same label twice (not deterministic): a node needs one
        // `p` to an A-node and one `p` to a B-node; K requires both targets to
        // be A-nodes.
        let h = parse_schema("Root -> p::A, p::B\nA -> mark_a::L?\nB -> mark_b::L\nL -> EMPTY\n")
            .unwrap();
        let k = parse_schema("Root -> p::A, p::A\nA -> mark_a::L?\nB -> mark_b::L\nL -> EMPTY\n")
            .unwrap();
        let result = shex0_containment(&h, &k, &quick());
        let witness = result.counter_example().expect("not contained");
        assert!(validates(witness, &h) && !validates(witness, &k));
    }

    #[test]
    fn figure_4_star_unfolding() {
        // L(G) = L(H) where H enumerates b* as (no b | one b | b plus more),
        // expressed with three root types. The direction H ⊆ G is found via
        // embedding; G ⊆ H has no embedding (Figure 4) and no counter-example
        // exists, so the budgeted procedure must not claim NotContained.
        let g = parse_schema("G -> a::Leaf*, b::Leaf*\nLeaf -> EMPTY\n").unwrap();
        let h = parse_schema(
            "H0 -> a::Leaf*\n\
             H1 -> a::Leaf*, b::Leaf\n\
             H2 -> a::Leaf*, b::Leaf, b::Leaf*\n\
             Leaf -> EMPTY\n",
        )
        .unwrap();
        assert!(shex0_containment(&h, &g, &quick()).is_contained());
        let forward = shex0_containment(&g, &h, &quick());
        assert!(!forward.is_not_contained());
    }

    #[test]
    fn empty_language_schema_is_contained_in_everything() {
        // A type with an unsatisfiable mandatory cycle has an empty language
        // of rooted unfoldings... but other types (Literal) still admit
        // instances, so containment questions remain meaningful. Here both
        // schemas accept exactly the single-node graphs, so containment holds
        // in both directions via embedding.
        let h = parse_schema("Loop -> next::Loop\n").unwrap();
        let k = parse_schema("Loop -> next::Loop?\n").unwrap();
        assert!(shex0_containment(&h, &k, &quick()).is_contained());
        // k ⊆ h fails: a single node with no edges satisfies k (next? absent)
        // but not h (next is mandatory).
        let result = shex0_containment(&k, &h, &quick());
        let witness = result.counter_example().expect("not contained");
        assert!(validates(witness, &k) && !validates(witness, &h));
    }
}
