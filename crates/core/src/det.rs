//! Containment for the tractable fragment `DetShEx₀⁻` (Section 4).
//!
//! For deterministic shape graphs without `+` whose `?`-using types are only
//! referenced through `*`-closed references, an embedding between the shape
//! graphs is not only sufficient but also necessary for containment
//! (Corollary 4.3), so containment is decidable in polynomial time
//! (Corollary 4.4). The key tool is the *characterizing graph* of Lemma 4.2: a
//! polynomial-size simple graph `G ∈ L(H)` such that `G ≼ K` implies `H ≼ K`
//! for every `K ∈ DetShEx₀⁻`.
//!
//! The exact construction of Lemma 4.2 lives in the paper's appendix; the
//! construction below follows the sketch in Section 4 (duplicated children
//! under `*`-edges, present/absent variants for `?`-edges propagated up
//! through non-`*` references) and is validated by the test suites of this
//! crate and of the workspace integration tests.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use shapex_graph::{Graph, Label, NodeId};
use shapex_rbe::Interval;
use shapex_shex::{Schema, TypeId};

use crate::embedding::embeds;
use crate::Containment;

/// Error returned when an input schema is outside `DetShEx₀⁻`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDetShex0Minus {
    /// Human-readable reasons, one per violated condition.
    pub violations: Vec<String>,
}

impl fmt::Display for NotDetShex0Minus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schema is not in DetShEx0-: {}",
            self.violations.join("; ")
        )
    }
}

impl std::error::Error for NotDetShex0Minus {}

fn require_det_minus(schema: &Schema) -> Result<(), NotDetShex0Minus> {
    let violations = schema.det_shex0_minus_violations();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(NotDetShex0Minus { violations })
    }
}

/// Decide `L(H) ⊆ L(K)` for schemas in `DetShEx₀⁻` in polynomial time
/// (Corollary 4.4): containment holds iff the shape graph of `H` embeds in
/// the shape graph of `K`.
///
/// When containment fails, the certified counter-example is the
/// characterizing graph of `H` (it belongs to `L(H)` by construction and
/// cannot embed in `K`, otherwise `H ≼ K` would hold by Lemma 4.2).
///
/// This is the one-shot entry point: it runs through a throwaway
/// [`crate::engine::ContainmentEngine`]; callers issuing many queries over
/// the same schemas should hold an engine so the shape graphs,
/// characterizing graphs, and embedding verdicts are computed once.
pub fn det_containment(h: &Schema, k: &Schema) -> Result<Containment, NotDetShex0Minus> {
    crate::engine::ContainmentEngine::new().det(h, k)
}

/// The embedding-based *sufficient* containment check for arbitrary shape
/// graphs (Lemma 3.3): `H ≼ K` implies `L(H) ⊆ L(K)`. The converse holds for
/// `DetShEx₀⁻` but not in general (Figure 4 of the paper).
pub fn embedding_containment(h: &Graph, k: &Graph) -> bool {
    embeds(h, k).is_some()
}

/// Construct the characterizing graph of a `DetShEx₀⁻` schema `H`
/// (Lemma 4.2): a simple graph `G ∈ L(H)` of size polynomial in `H` such that
/// for every `K ∈ DetShEx₀⁻`, `G ≼ K` implies `H ≼ K`.
///
/// For every type `t`, the graph contains two "full" instance nodes and one
/// variant node per `?`-edge `q` whose omission must be visible below `t`
/// (the owner of `q` and every type reaching the owner through non-`*`
/// references). Under a `*`-edge, an instance points to *all* instance nodes
/// of the target type (at least two, forcing the corresponding interval of a
/// simulating schema to be `*`); under a `1`/`?`-edge it points to the single
/// appropriate variant.
pub fn characterizing_graph(h: &Schema) -> Result<Graph, NotDetShex0Minus> {
    require_det_minus(h)?;

    // All ?-edges of the schema: (owner type, label, target type), plus an
    // index from the triple back to its position so the wiring loop below
    // can resolve "which ?-edge is this atom" with one map lookup instead of
    // rebuilding a `String` and scanning the list for every edge of every
    // node (which made the construction quadratic in the schema size).
    let mut opt_edges: Vec<(TypeId, Label, TypeId)> = Vec::new();
    let mut opt_index: BTreeMap<(TypeId, Label, TypeId), usize> = BTreeMap::new();
    for t in h.types() {
        let rbe0 = h.def(t).to_rbe0().expect("DetShEx0- is RBE0");
        for (atom, interval) in rbe0.atoms() {
            if *interval == Interval::OPT {
                let key = (t, atom.label.clone(), atom.target);
                opt_index.insert(key.clone(), opt_edges.len());
                opt_edges.push((t, atom.label.clone(), atom.target));
            }
        }
    }

    // needs_variant[q] = set of types that must come in a with/without-q
    // variant: the owner of q, propagated backwards through non-* references.
    let mut needs_variant: Vec<BTreeSet<TypeId>> = Vec::with_capacity(opt_edges.len());
    for (owner, _, _) in &opt_edges {
        let mut set = BTreeSet::new();
        set.insert(*owner);
        loop {
            let mut changed = false;
            for t in h.types() {
                if set.contains(&t) {
                    continue;
                }
                let rbe0 = h.def(t).to_rbe0().expect("DetShEx0- is RBE0");
                let reaches = rbe0.atoms().iter().any(|(atom, interval)| {
                    *interval != Interval::STAR && set.contains(&atom.target)
                });
                if reaches {
                    set.insert(t);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        needs_variant.push(set);
    }

    // Node inventory: for each type, two full copies plus the applicable
    // variants. `variant = None` is a full copy; `variant = Some(q)` omits the
    // ?-edge q somewhere below.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key {
        t: TypeId,
        copy: u8,
        variant: Option<usize>,
    }
    let mut graph = Graph::new();
    let mut ids: BTreeMap<Key, NodeId> = BTreeMap::new();
    let mut keys_per_type: BTreeMap<TypeId, Vec<Key>> = BTreeMap::new();
    for t in h.types() {
        let mut keys = vec![
            Key {
                t,
                copy: 0,
                variant: None,
            },
            Key {
                t,
                copy: 1,
                variant: None,
            },
        ];
        for (q, set) in needs_variant.iter().enumerate() {
            if set.contains(&t) {
                keys.push(Key {
                    t,
                    copy: 0,
                    variant: Some(q),
                });
            }
        }
        for key in &keys {
            let suffix = match key.variant {
                None => format!("full{}", key.copy),
                Some(q) => format!("omit{q}"),
            };
            let name = format!("{}@{}", h.type_name(t), suffix);
            ids.insert(*key, graph.add_named_node(name));
        }
        keys_per_type.insert(t, keys);
    }

    // Wire the outbound neighbourhoods.
    for (key, &node) in &ids {
        let rbe0 = h.def(key.t).to_rbe0().expect("DetShEx0- is RBE0");
        for (atom, interval) in rbe0.atoms() {
            let target = atom.target;
            let label = atom.label.clone();
            match *interval {
                i if i == Interval::STAR => {
                    // Point to every instance node of the target type.
                    for child_key in &keys_per_type[&target] {
                        graph.add_edge(node, label.clone(), ids[child_key]);
                    }
                }
                i if i == Interval::OPT => {
                    // Omit the edge exactly in the variant node of this
                    // ?-edge; keep it (pointing to the matching child) in
                    // every other node.
                    let q_here = opt_index.get(&(key.t, atom.label.clone(), target)).copied();
                    if key.variant.is_some() && key.variant == q_here {
                        continue;
                    }
                    let child = child_key_for(key, target, &needs_variant, &keys_per_type);
                    graph.add_edge(node, label.clone(), ids[&child]);
                }
                _ => {
                    // Interval 1 (DetShEx0- has no + and no general intervals).
                    let child = child_key_for(key, target, &needs_variant, &keys_per_type);
                    graph.add_edge(node, label.clone(), ids[&child]);
                }
            }
        }
    }

    fn child_key_for(
        parent: &Key,
        target: TypeId,
        needs_variant: &[BTreeSet<TypeId>],
        keys_per_type: &BTreeMap<TypeId, Vec<Key>>,
    ) -> Key {
        // A variant node propagates its omission to children that also need
        // the variant; all other edges point to the first full copy.
        if let Some(q) = parent.variant {
            if needs_variant[q].contains(&target) {
                return Key {
                    t: target,
                    copy: 0,
                    variant: Some(q),
                };
            }
        }
        keys_per_type[&target][0]
    }

    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;
    use shapex_shex::typing::validates;

    const FIG1: &str = "\
Bug  -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*
User -> name::Literal, email::Literal?
Employee -> name::Literal, email::Literal
";

    /// The refactored schema from the introduction: `User` split into `User1`
    /// (no email) and `User2` (with email); equivalent to Figure 1's schema.
    const FIG1_SPLIT: &str = "\
Bug1 -> descr::Literal, reportedBy::User1, reproducedBy::Employee?, related::Bug1*, related::Bug2*
Bug2 -> descr::Literal, reportedBy::User2, reproducedBy::Employee?, related::Bug1*, related::Bug2*
User1 -> name::Literal
User2 -> name::Literal, email::Literal
Employee -> name::Literal, email::Literal
";

    #[test]
    fn self_containment() {
        let s = parse_schema(FIG1).unwrap();
        assert!(det_containment(&s, &s).unwrap().is_contained());
    }

    #[test]
    fn relaxation_is_contained_but_not_conversely() {
        let strict = parse_schema(FIG1).unwrap();
        // Relaxed: email and reproducedBy dropped entirely, related unchanged.
        let relaxed = parse_schema(
            "Bug -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Employee -> name::Literal, email::Literal?\n",
        )
        .unwrap();
        // Every Employee of the strict schema is an Employee of the relaxed
        // one (email? accepts email), so strict ⊆ relaxed.
        assert!(det_containment(&strict, &relaxed).unwrap().is_contained());
        // The converse fails: a relaxed Employee without email is not a strict
        // Employee... but it *is* a strict User, and the only reference to
        // Employee is through reproducedBy?, so we need a genuine distinction:
        let narrowed = parse_schema(
            "Bug -> descr::Literal, reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal\n\
             Employee -> name::Literal, email::Literal\n",
        )
        .unwrap();
        // strict ⊄ narrowed: a User with an email satisfies strict but not
        // narrowed (narrowed User forbids email, Employee requires it *and*
        // nothing else changes... the User type in narrowed has no email).
        let result = det_containment(&strict, &narrowed).unwrap();
        assert!(result.is_not_contained());
        let witness = result.counter_example().unwrap().clone();
        let strict_graph = strict.to_shape_graph().unwrap();
        assert!(
            embeds(&witness, &strict_graph).is_some(),
            "witness ∈ L(strict)"
        );
        let narrowed_graph = narrowed.to_shape_graph().unwrap();
        assert!(
            embeds(&witness, &narrowed_graph).is_none(),
            "witness ∉ L(narrowed)"
        );
    }

    #[test]
    fn characterizing_graph_belongs_to_language() {
        for text in [FIG1, FIG1_SPLIT] {
            let schema = parse_schema(text).unwrap();
            if !schema.is_det_shex0_minus() {
                continue; // FIG1_SPLIT is not deterministic; skip it here.
            }
            let g = characterizing_graph(&schema).unwrap();
            assert!(g.is_simple());
            let shape = schema.to_shape_graph().unwrap();
            assert!(embeds(&g, &shape).is_some(), "G ≼ H");
            assert!(validates(&g, &schema), "G ⊨ H via the validation semantics");
            // Polynomial size: at most (2 + #?-edges) nodes per type, with
            // the ?-edge count taken from the schema itself rather than a
            // magic constant, so the bound is asserted per-schema.
            let opt_edges = schema
                .types()
                .map(|t| {
                    schema
                        .def(t)
                        .to_rbe0()
                        .expect("DetShEx0- is RBE0")
                        .atoms()
                        .iter()
                        .filter(|(_, i)| *i == Interval::OPT)
                        .count()
                })
                .sum::<usize>();
            assert!(g.node_count() <= schema.type_count() * (2 + opt_edges));
        }
    }

    #[test]
    fn characterizing_graph_detects_non_containment() {
        let h = parse_schema(FIG1).unwrap();
        // K forbids the descr edge entirely (still DetShEx0-: the ?-using
        // types Bug and User remain referenced through related::Bug*).
        let k = parse_schema(
            "Bug -> reportedBy::User, reproducedBy::Employee?, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Employee -> name::Literal, email::Literal\n",
        )
        .unwrap();
        let result = det_containment(&h, &k).unwrap();
        assert!(result.is_not_contained());
        let g = result.counter_example().unwrap();
        assert!(validates(g, &h));
        assert!(!validates(g, &k));
    }

    #[test]
    fn lemma_4_2_on_fig1_vs_split_schema() {
        // The split schema is equivalent to Figure 1's but is not
        // deterministic, so det_containment rejects it...
        let h = parse_schema(FIG1).unwrap();
        let split = parse_schema(FIG1_SPLIT).unwrap();
        assert!(det_containment(&h, &split).is_err());
        // ...but the characterizing graph of H still certifies H ⊆ split at
        // the instance level: it validates against the split schema.
        let g = characterizing_graph(&h).unwrap();
        assert!(validates(&g, &h));
        assert!(validates(&g, &split));
    }

    #[test]
    fn rejects_schemas_outside_the_fragment() {
        let with_plus = parse_schema("A -> p::B+\nB -> EMPTY\n").unwrap();
        let plain = parse_schema("A -> p::B\nB -> EMPTY\n").unwrap();
        assert!(det_containment(&with_plus, &plain).is_err());
        assert!(det_containment(&plain, &with_plus).is_err());
        assert!(characterizing_graph(&with_plus).is_err());
        let err = det_containment(&with_plus, &plain).unwrap_err();
        assert!(err.to_string().contains("+"));
    }

    #[test]
    fn opt_edge_variants_force_optionality() {
        // H: Root -children*-> Item, Item -tag?-> Leaf.
        // K1: like H but tag is mandatory; K2: like H but tag is forbidden.
        // Neither contains H, and H is contained in the version with tag?.
        let h =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let k_mandatory =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf\nLeaf -> EMPTY\n").unwrap();
        let k_forbidden =
            parse_schema("Root -> children::Item*\nItem -> EMPTY\nLeaf -> EMPTY\n").unwrap();
        let k_star =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf*\nLeaf -> EMPTY\n").unwrap();
        assert!(det_containment(&h, &k_mandatory)
            .unwrap()
            .is_not_contained());
        assert!(det_containment(&h, &k_forbidden)
            .unwrap()
            .is_not_contained());
        assert!(det_containment(&h, &k_star).unwrap().is_contained());
        assert!(det_containment(&k_mandatory, &h).unwrap().is_contained());
        assert!(det_containment(&k_forbidden, &h).unwrap().is_contained());
        assert!(det_containment(&k_star, &h).unwrap().is_not_contained());
        // The characterizing graph of H contains both an Item with a tag and
        // an Item without one.
        let g = characterizing_graph(&h).unwrap();
        assert!(validates(&g, &h));
        assert!(!validates(&g, &k_mandatory));
        assert!(!validates(&g, &k_forbidden));
        assert!(validates(&g, &k_star));
    }
}
