//! Containment of shape expression schemas — the primary contribution of
//! *Containment of Shape Expression Schemas for RDF* (Staworko & Wieczorek,
//! PODS 2019).
//!
//! The crate provides, following the paper's structure:
//!
//! * [`embedding`] (§3) — maximal simulations and embeddings between graphs,
//!   with the polynomial witness check for basic intervals (Theorem 3.4) and a
//!   backtracking witness check for arbitrary intervals (Theorem 3.5). An
//!   embedding `H ≼ K` is a sound (sufficient) condition for `L(H) ⊆ L(K)`.
//! * [`det`] (§4) — the tractable fragment `DetShEx₀⁻`: containment coincides
//!   with embedding (Corollary 4.3), so it is decidable in polynomial time
//!   (Corollary 4.4); plus the characterizing-graph construction of Lemma 4.2.
//! * [`shex0`] (§5) — containment for `ShEx₀` (shape graphs): embedding as the
//!   sufficient check, certified counter-example search for the other
//!   direction, complete on `DetShEx₀⁻` and on instances that admit small
//!   counter-examples. The problem itself is EXP-complete, so the general
//!   procedure is necessarily bounded and reports [`Containment::Unknown`]
//!   when its budget is exhausted.
//! * [`general`] (§6) — containment for full ShEx (arbitrary shape
//!   expressions), via unfolding-based counter-example search with Presburger
//!   validation; sound in both directions, bounded (the problem is
//!   coNEXP-hard).
//! * [`engine`] — the shared-state query session over all of the above:
//!   `ContainmentEngine` registers schemas once and memoises shape graphs,
//!   unfolding pools, and validation/embedding verdicts behind `&self`
//!   concurrent caches, so one engine (typically in an `Arc`) serves
//!   batch matrices, parallel rows, and long-lived services.
//! * [`simulation`] — the worklist + bitset simulation engine behind
//!   [`embedding`]: dense bitset relation, joint interned-label space, and
//!   predecessor-directed refinement, with an optional `std::thread` worker
//!   pool for the initial candidate-pruning pass.
//! * [`baseline`] — brute-force references: enumeration of small
//!   counter-examples and the original full-rescan simulation fix-point,
//!   used as test oracles and benchmark baselines.
//!
//! Every `NotContained` answer carries a counter-example graph that has been
//! re-verified with the validation semantics of `shapex-shex`, so
//! non-containment answers are certified. `Contained` answers are exact for
//! `DetShEx₀⁻` and conservative (never wrong, but possibly replaced by
//! `Unknown`) elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use shapex_graph::Graph;

pub mod baseline;
pub mod budget;
pub mod cancel;
pub mod det;
pub mod embedding;
pub mod engine;
pub mod faults;
pub mod general;
pub mod matrix;
pub mod shex0;
pub mod simulation;
pub mod sync;
pub mod unfold;

/// Why a procedure answered [`Containment::Unknown`].
///
/// The enum is `#[non_exhaustive]`: future engines may report further
/// reasons (e.g. a wall-clock timeout), so downstream matches need a
/// catch-all arm. Construct values through the
/// [`Containment::budget_exhausted`] / [`Containment::not_supported`]
/// helpers.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The counter-example search ran out of budget: it examined
    /// `candidates` candidate graphs up to unfolding depth `depth` without
    /// finding a witness, and the sufficient conditions did not apply.
    BudgetExhausted {
        /// Candidate member graphs validated against the right-hand schema.
        candidates: usize,
        /// The configured maximum unfolding depth of the search.
        depth: usize,
    },
    /// The procedure could not explore the instance at all — the search
    /// produced no candidate members within the budget (for example every
    /// unfolding dies on a mandatory cycle), so no evidence in either
    /// direction was gathered.
    NotSupported,
    /// The caller-supplied deadline expired before the search reached a sound
    /// answer. `elapsed` is the wall-clock time the query had actually run
    /// when the expiry was observed at a cancellation checkpoint.
    DeadlineExceeded {
        /// Wall-clock time from query start to the checkpoint that observed
        /// the expired deadline.
        elapsed: std::time::Duration,
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::BudgetExhausted { candidates, depth } => write!(
                f,
                "budget exhausted after {candidates} candidates at depth {depth}"
            ),
            UnknownReason::NotSupported => write!(f, "no applicable procedure for this input"),
            UnknownReason::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {elapsed:?}")
            }
        }
    }
}

/// The answer of a containment check `L(H) ⊆ L(K)`.
///
/// The counter-example is boxed: a `Graph` now carries its interner and
/// adjacency indices inline, and `Containment` values travel up through the
/// whole decision-procedure call stack, so the indirection keeps the enum a
/// couple of words.
#[derive(Debug, Clone)]
pub enum Containment {
    /// Containment holds.
    Contained,
    /// Containment does not hold; the graph is a certified counter-example
    /// (it satisfies `H` and violates `K`).
    NotContained(Box<Graph>),
    /// The procedure gave up before reaching a sound answer; the reason says
    /// whether the budget ran out mid-search or no search was possible.
    Unknown(UnknownReason),
}

impl Containment {
    /// A `NotContained` answer carrying the given counter-example.
    pub fn not_contained(witness: Graph) -> Containment {
        Containment::NotContained(Box::new(witness))
    }

    /// An `Unknown` answer whose search exhausted its budget after examining
    /// `candidates` candidate graphs up to depth `depth`.
    pub fn budget_exhausted(candidates: usize, depth: usize) -> Containment {
        Containment::Unknown(UnknownReason::BudgetExhausted { candidates, depth })
    }

    /// An `Unknown` answer for inputs the procedure could not explore at all.
    pub fn not_supported() -> Containment {
        Containment::Unknown(UnknownReason::NotSupported)
    }

    /// An `Unknown` answer for a query whose deadline expired after running
    /// for `elapsed`.
    pub fn deadline_exceeded(elapsed: std::time::Duration) -> Containment {
        Containment::Unknown(UnknownReason::DeadlineExceeded { elapsed })
    }

    /// Whether the answer is `Contained`.
    pub fn is_contained(&self) -> bool {
        matches!(self, Containment::Contained)
    }

    /// Whether the answer is `NotContained`.
    pub fn is_not_contained(&self) -> bool {
        matches!(self, Containment::NotContained(_))
    }

    /// Whether the answer is `Unknown` (for any reason).
    pub fn is_unknown(&self) -> bool {
        matches!(self, Containment::Unknown(_))
    }

    /// The reason, if the answer is `Unknown`.
    pub fn unknown_reason(&self) -> Option<&UnknownReason> {
        match self {
            Containment::Unknown(reason) => Some(reason),
            _ => None,
        }
    }

    /// The counter-example, if the answer is `NotContained`.
    pub fn counter_example(&self) -> Option<&Graph> {
        match self {
            Containment::NotContained(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for Containment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Containment::Contained => write!(f, "contained"),
            Containment::NotContained(g) => {
                write!(
                    f,
                    "not contained (counter-example with {} nodes)",
                    g.node_count()
                )
            }
            Containment::Unknown(reason) => write!(f, "unknown ({reason})"),
        }
    }
}
