//! Containment of shape expression schemas — the primary contribution of
//! *Containment of Shape Expression Schemas for RDF* (Staworko & Wieczorek,
//! PODS 2019).
//!
//! The crate provides, following the paper's structure:
//!
//! * [`embedding`] (§3) — maximal simulations and embeddings between graphs,
//!   with the polynomial witness check for basic intervals (Theorem 3.4) and a
//!   backtracking witness check for arbitrary intervals (Theorem 3.5). An
//!   embedding `H ≼ K` is a sound (sufficient) condition for `L(H) ⊆ L(K)`.
//! * [`det`] (§4) — the tractable fragment `DetShEx₀⁻`: containment coincides
//!   with embedding (Corollary 4.3), so it is decidable in polynomial time
//!   (Corollary 4.4); plus the characterizing-graph construction of Lemma 4.2.
//! * [`shex0`] (§5) — containment for `ShEx₀` (shape graphs): embedding as the
//!   sufficient check, certified counter-example search for the other
//!   direction, complete on `DetShEx₀⁻` and on instances that admit small
//!   counter-examples. The problem itself is EXP-complete, so the general
//!   procedure is necessarily bounded and reports [`Containment::Unknown`]
//!   when its budget is exhausted.
//! * [`general`] (§6) — containment for full ShEx (arbitrary shape
//!   expressions), via unfolding-based counter-example search with Presburger
//!   validation; sound in both directions, bounded (the problem is
//!   coNEXP-hard).
//! * [`simulation`] — the worklist + bitset simulation engine behind
//!   [`embedding`]: dense bitset relation, joint interned-label space, and
//!   predecessor-directed refinement, with an optional `std::thread` worker
//!   pool for the initial candidate-pruning pass.
//! * [`baseline`] — brute-force references: enumeration of small
//!   counter-examples and the original full-rescan simulation fix-point,
//!   used as test oracles and benchmark baselines.
//!
//! Every `NotContained` answer carries a counter-example graph that has been
//! re-verified with the validation semantics of `shapex-shex`, so
//! non-containment answers are certified. `Contained` answers are exact for
//! `DetShEx₀⁻` and conservative (never wrong, but possibly replaced by
//! `Unknown`) elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use shapex_graph::Graph;

pub mod baseline;
pub mod det;
pub mod embedding;
pub mod general;
pub mod shex0;
pub mod simulation;
pub mod unfold;

/// The answer of a containment check `L(H) ⊆ L(K)`.
///
/// The counter-example is boxed: a `Graph` now carries its interner and
/// adjacency indices inline, and `Containment` values travel up through the
/// whole decision-procedure call stack, so the indirection keeps the enum a
/// couple of words.
#[derive(Debug, Clone)]
pub enum Containment {
    /// Containment holds.
    Contained,
    /// Containment does not hold; the graph is a certified counter-example
    /// (it satisfies `H` and violates `K`).
    NotContained(Box<Graph>),
    /// The procedure's budget was exhausted before reaching a sound answer.
    Unknown,
}

impl Containment {
    /// A `NotContained` answer carrying the given counter-example.
    pub fn not_contained(witness: Graph) -> Containment {
        Containment::NotContained(Box::new(witness))
    }

    /// Whether the answer is `Contained`.
    pub fn is_contained(&self) -> bool {
        matches!(self, Containment::Contained)
    }

    /// Whether the answer is `NotContained`.
    pub fn is_not_contained(&self) -> bool {
        matches!(self, Containment::NotContained(_))
    }

    /// The counter-example, if the answer is `NotContained`.
    pub fn counter_example(&self) -> Option<&Graph> {
        match self {
            Containment::NotContained(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for Containment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Containment::Contained => write!(f, "contained"),
            Containment::NotContained(g) => {
                write!(
                    f,
                    "not contained (counter-example with {} nodes)",
                    g.node_count()
                )
            }
            Containment::Unknown => write!(f, "unknown (budget exhausted)"),
        }
    }
}
