//! Systematic and randomized unfolding of schemas into member graphs.
//!
//! The counter-example searches of [`crate::shex0`] and [`crate::general`]
//! need candidate graphs drawn from `L(H)`. An *unfolding* instantiates a type
//! as a tree: a bag of outgoing edges accepted by the type definition, with a
//! recursively unfolded subtree per edge. Repetition under unbounded intervals
//! is sampled with small counts (`*` as 0, 1 or 2; `+` as 1 or 2), which is
//! exactly the granularity the containment arguments of the paper rely on
//! (distinguishing 0, 1, and "more than one").

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_graph::{Graph, Label};
use shapex_rbe::{Bag, Interval, Rbe};
use shapex_shex::typing::validates;
use shapex_shex::{Atom, Schema, TypeId};

/// Budget knobs for unfolding-based searches.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Maximum depth of enumerated unfoldings.
    pub max_depth: usize,
    /// Maximum number of candidate bags kept per expression node.
    pub max_bags: usize,
    /// Maximum number of trees kept per `(type, depth)` pair.
    pub max_trees: usize,
    /// Maximum number of nodes in a single candidate graph.
    pub max_graph_nodes: usize,
    /// Maximum number of candidate graphs examined in total.
    pub max_candidates: usize,
    /// Number of additional randomized unfoldings to try.
    pub random_samples: usize,
    /// Seed for the randomized phase (deterministic by default).
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_depth: 4,
            max_bags: 24,
            max_trees: 48,
            max_graph_nodes: 600,
            max_candidates: 4_000,
            random_samples: 400,
            seed: 0xC0FFEE,
        }
    }
}

impl SearchOptions {
    /// A smaller budget for quick checks in tests and benchmarks.
    pub fn quick() -> SearchOptions {
        SearchOptions {
            max_depth: 3,
            max_bags: 12,
            max_trees: 16,
            max_graph_nodes: 200,
            max_candidates: 600,
            random_samples: 100,
            ..SearchOptions::default()
        }
    }
}

/// An unfolded instance of a type: a node plus unfolded children.
#[derive(Debug, Clone)]
pub struct Tree {
    /// The type this node instantiates.
    pub type_id: TypeId,
    /// Outgoing edges: interned predicate label and the unfolded child.
    ///
    /// The labels are clones of the schema's interned atom labels (one
    /// `Arc<str>` per distinct predicate), so building trees and converting
    /// them to graphs allocates no label text per edge.
    pub children: Vec<(Label, Tree)>,
}

impl Tree {
    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }

    /// Convert the tree into a simple graph rooted at a node of this type.
    pub fn to_graph(&self, schema: &Schema) -> Graph {
        let mut graph = Graph::new();
        let mut counter = 0usize;
        self.add_to(&mut graph, schema, &mut counter);
        graph
    }

    fn add_to(
        &self,
        graph: &mut Graph,
        schema: &Schema,
        counter: &mut usize,
    ) -> shapex_graph::NodeId {
        let id = graph.add_named_node(format!("{}_{}", schema.type_name(self.type_id), *counter));
        *counter += 1;
        for (label, child) in &self.children {
            let child_id = child.add_to(graph, schema, counter);
            graph.add_edge(id, label.clone(), child_id);
        }
        id
    }
}

/// Enumerate up to `options.max_bags` bags accepted by the expression, using
/// small repetition counts for unbounded intervals.
pub fn candidate_bags(expr: &Rbe<Atom>, options: &SearchOptions) -> Vec<Bag<Atom>> {
    let mut out = enumerate_bags(expr, options.max_bags);
    out.truncate(options.max_bags);
    out
}

fn enumerate_bags(expr: &Rbe<Atom>, limit: usize) -> Vec<Bag<Atom>> {
    match expr {
        Rbe::Epsilon => vec![Bag::new()],
        Rbe::Symbol(atom) => vec![Bag::from_symbols([atom.clone()])],
        Rbe::Disj(parts) => {
            let mut out: Vec<Bag<Atom>> = Vec::new();
            for p in parts {
                for bag in enumerate_bags(p, limit) {
                    if !out.contains(&bag) {
                        out.push(bag);
                    }
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            out
        }
        Rbe::Concat(parts) => {
            let mut out: Vec<Bag<Atom>> = vec![Bag::new()];
            for p in parts {
                let options = enumerate_bags(p, limit);
                let mut next = Vec::new();
                for prefix in &out {
                    for bag in &options {
                        next.push(prefix.union(bag));
                        if next.len() >= limit {
                            break;
                        }
                    }
                    if next.len() >= limit {
                        break;
                    }
                }
                out = next;
            }
            out
        }
        Rbe::Repeat(inner, interval) => {
            let counts = repetition_counts(*interval);
            let inner_bags = enumerate_bags(inner, limit);
            let mut out: Vec<Bag<Atom>> = Vec::new();
            for n in counts {
                // n-fold unions of inner bags (diagonal + a few mixes).
                let mut partial: Vec<Bag<Atom>> = vec![Bag::new()];
                for _ in 0..n {
                    let mut next = Vec::new();
                    for prefix in &partial {
                        for bag in &inner_bags {
                            next.push(prefix.union(bag));
                            if next.len() >= limit {
                                break;
                            }
                        }
                        if next.len() >= limit {
                            break;
                        }
                    }
                    partial = next;
                }
                for bag in partial {
                    if !out.contains(&bag) {
                        out.push(bag);
                    }
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// Exhaustively enumerate the language of a shape expression as a set of
/// bags, or `None` when the language has more than `limit` bags or is
/// infinite (some repetition interval is unbounded or very wide).
///
/// Unlike [`candidate_bags`], which samples, a `Some` answer here is a
/// complete listing of `L(expr)`; the sufficient containment check of
/// `crate::general` relies on that completeness.
pub fn all_bags(expr: &Rbe<Atom>, limit: usize) -> Option<Vec<Bag<Atom>>> {
    match expr {
        Rbe::Epsilon => Some(vec![Bag::new()]),
        Rbe::Symbol(atom) => Some(vec![Bag::from_symbols([atom.clone()])]),
        Rbe::Disj(parts) => {
            let mut out: Vec<Bag<Atom>> = Vec::new();
            for p in parts {
                for bag in all_bags(p, limit)? {
                    if !out.contains(&bag) {
                        out.push(bag);
                    }
                    if out.len() > limit {
                        return None;
                    }
                }
            }
            Some(out)
        }
        Rbe::Concat(parts) => {
            let mut out: Vec<Bag<Atom>> = vec![Bag::new()];
            for p in parts {
                let choices = all_bags(p, limit)?;
                let mut next = Vec::new();
                for prefix in &out {
                    for bag in &choices {
                        let combined = prefix.union(bag);
                        if !next.contains(&combined) {
                            next.push(combined);
                        }
                        if next.len() > limit {
                            return None;
                        }
                    }
                }
                out = next;
            }
            Some(out)
        }
        Rbe::Repeat(inner, interval) => {
            let hi = interval.hi()?;
            let lo = interval.lo();
            if hi - lo > 8 || hi > 16 {
                return None;
            }
            let inner_bags = all_bags(inner, limit)?;
            let mut out: Vec<Bag<Atom>> = Vec::new();
            for n in lo..=hi {
                let mut partial: Vec<Bag<Atom>> = vec![Bag::new()];
                for _ in 0..n {
                    let mut next = Vec::new();
                    for prefix in &partial {
                        for bag in &inner_bags {
                            let combined = prefix.union(bag);
                            if !next.contains(&combined) {
                                next.push(combined);
                            }
                            if next.len() > limit {
                                return None;
                            }
                        }
                    }
                    partial = next;
                }
                for bag in partial {
                    if !out.contains(&bag) {
                        out.push(bag);
                    }
                    if out.len() > limit {
                        return None;
                    }
                }
            }
            Some(out)
        }
    }
}

/// The repetition counts explored under an interval: enough to distinguish
/// "absent", "exactly one" and "more than one".
fn repetition_counts(interval: Interval) -> Vec<u64> {
    let lo = interval.lo();
    match interval.hi() {
        None => {
            if lo == 0 {
                vec![0, 1, 2]
            } else {
                vec![lo, lo + 1]
            }
        }
        Some(hi) => {
            let mut counts = vec![lo];
            if hi > lo {
                counts.push(lo + 1);
            }
            if hi > lo + 1 && hi <= lo + 4 {
                counts.push(hi);
            }
            counts
        }
    }
}

/// Enumerate unfoldings of `root` up to the configured depth. Only trees whose
/// leaves are "closed" (every type at the frontier admits the empty bag) are
/// produced, so every returned tree's graph belongs to `L(schema)`.
pub fn enumerate_members(schema: &Schema, root: TypeId, options: &SearchOptions) -> Vec<Graph> {
    enumerate_members_with(schema, root, options, &mut |g| validates(g, schema))
}

/// [`enumerate_members`] with the member-validation step injected, so the
/// engine can route it through its verdict memo while sharing this exact
/// filter/cap logic (the engine's answer-equivalence with the baseline
/// depends on there being only one copy of it).
pub(crate) fn enumerate_members_with(
    schema: &Schema,
    root: TypeId,
    options: &SearchOptions,
    is_member: &mut dyn FnMut(&Graph) -> bool,
) -> Vec<Graph> {
    let mut graphs = Vec::new();
    let trees = enumerate_trees(schema, root, options.max_depth, options);
    for tree in trees {
        if tree.size() > options.max_graph_nodes {
            continue;
        }
        let graph = tree.to_graph(schema);
        if is_member(&graph) {
            graphs.push(graph);
        }
        if graphs.len() >= options.max_candidates {
            break;
        }
    }
    graphs
}

fn enumerate_trees(schema: &Schema, t: TypeId, depth: usize, options: &SearchOptions) -> Vec<Tree> {
    let def = schema.def(t);
    let mut out = Vec::new();
    for bag in candidate_bags(def, options) {
        if depth == 0 && !bag.is_empty() {
            continue;
        }
        // For every atom occurrence, enumerate child trees; combine by taking
        // the cartesian product capped at max_trees.
        let mut combos: Vec<Vec<(Label, Tree)>> = vec![Vec::new()];
        let mut dead = false;
        for (atom, count) in bag.iter() {
            let child_trees =
                enumerate_trees(schema, atom.target, depth.saturating_sub(1), options);
            if child_trees.is_empty() {
                dead = true;
                break;
            }
            for _ in 0..count {
                let mut next = Vec::new();
                for prefix in &combos {
                    for child in child_trees.iter().take(4) {
                        let mut extended = prefix.clone();
                        extended.push((atom.label.clone(), child.clone()));
                        next.push(extended);
                        if next.len() >= options.max_trees {
                            break;
                        }
                    }
                    if next.len() >= options.max_trees {
                        break;
                    }
                }
                combos = next;
            }
        }
        if dead {
            continue;
        }
        for children in combos {
            out.push(Tree {
                type_id: t,
                children,
            });
            if out.len() >= options.max_trees {
                return out;
            }
        }
    }
    out
}

/// Draw a random unfolding of `root` (depth- and size-bounded); returns `None`
/// when the sampler runs into the node budget before closing all mandatory
/// edges.
pub fn sample_member(
    schema: &Schema,
    root: TypeId,
    rng: &mut StdRng,
    options: &SearchOptions,
) -> Option<Graph> {
    sample_member_with(schema, root, rng, options, &mut |g| validates(g, schema))
}

/// [`sample_member`] with the member-validation step injected (see
/// [`enumerate_members_with`]). The RNG consumption is identical regardless
/// of the callback, so pooled and baseline searches draw the same samples.
pub(crate) fn sample_member_with(
    schema: &Schema,
    root: TypeId,
    rng: &mut StdRng,
    options: &SearchOptions,
    is_member: &mut dyn FnMut(&Graph) -> bool,
) -> Option<Graph> {
    let tree = sample_tree(schema, root, options.max_depth + 2, rng, options, &mut 0)?;
    let graph = tree.to_graph(schema);
    if graph.node_count() <= options.max_graph_nodes && is_member(&graph) {
        Some(graph)
    } else {
        None
    }
}

fn sample_tree(
    schema: &Schema,
    t: TypeId,
    depth: usize,
    rng: &mut StdRng,
    options: &SearchOptions,
    nodes: &mut usize,
) -> Option<Tree> {
    *nodes += 1;
    if *nodes > options.max_graph_nodes {
        return None;
    }
    let bags = candidate_bags(schema.def(t), options);
    if bags.is_empty() {
        return None;
    }
    // At shallow remaining depth, prefer small bags to terminate.
    let bag = if depth == 0 {
        bags.iter().min_by_key(|b| b.total())?.clone()
    } else {
        bags[rng.gen_range(0..bags.len())].clone()
    };
    let mut children = Vec::new();
    for (atom, count) in bag.iter() {
        for _ in 0..count {
            let child = sample_tree(
                schema,
                atom.target,
                depth.saturating_sub(1),
                rng,
                options,
                nodes,
            )?;
            children.push((atom.label.clone(), child));
        }
    }
    Some(Tree {
        type_id: t,
        children,
    })
}

/// Search for a counter-example to `L(h) ⊆ L(k)`: a graph that validates
/// against `h` but not against `k`. Systematic unfoldings are tried first,
/// then randomized ones. Any returned graph is certified by re-validation.
///
/// This is the one-shot entry point: it runs through a throwaway
/// [`crate::engine::ContainmentEngine`], so a single call already reuses
/// unfolding pools and validation verdicts across the depth-cumulative
/// enumeration. Callers issuing many queries over the same schemas should
/// hold an engine instead — its query methods take `&self` over concurrent
/// caches, so one engine can even be shared across threads. The candidate
/// order (and therefore the returned witness) is that of
/// [`crate::baseline::search_counter_example_baseline`], the retained
/// memo-free reference.
pub fn search_counter_example(h: &Schema, k: &Schema, options: &SearchOptions) -> Option<Graph> {
    crate::engine::ContainmentEngine::with_search(options.clone()).counter_example(h, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    #[test]
    fn candidate_bags_cover_interval_choices() {
        let schema = parse_schema("T -> a::L?, b::L*, c::L\nL -> EMPTY\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let bags = candidate_bags(schema.def(t), &SearchOptions::default());
        // a ∈ {0,1}, b ∈ {0,1,2}, c = 1 — up to 6 combinations (capped).
        assert!(bags.len() >= 4);
        let l = schema.find_type("L").unwrap();
        let a = Atom::new("a", l);
        let b = Atom::new("b", l);
        let c = Atom::new("c", l);
        assert!(bags.iter().all(|bag| bag.count(&c) == 1));
        assert!(bags.iter().any(|bag| bag.count(&a) == 0));
        assert!(bags.iter().any(|bag| bag.count(&a) == 1));
        assert!(bags.iter().any(|bag| bag.count(&b) == 2));
    }

    #[test]
    fn candidate_bags_handle_disjunction() {
        let schema = parse_schema("T -> p::L | q::L\nL -> EMPTY\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let bags = candidate_bags(schema.def(t), &SearchOptions::default());
        assert_eq!(bags.len(), 2);
        assert!(bags.iter().all(|b| b.total() == 1));
    }

    #[test]
    fn enumerated_members_validate() {
        let schema =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let root = schema.find_type("Root").unwrap();
        let graphs = enumerate_members(&schema, root, &SearchOptions::quick());
        assert!(!graphs.is_empty());
        for g in &graphs {
            assert!(validates(g, &schema));
        }
        // Both the with-tag and without-tag items appear somewhere.
        assert!(graphs.iter().any(|g| g.edge_count() >= 2));
        assert!(graphs.iter().any(|g| g.node_count() == 1), "the empty Root");
    }

    #[test]
    fn trees_carry_the_schema_interned_labels() {
        let schema =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let root = schema.find_type("Root").unwrap();
        let item = schema.find_type("Item").unwrap();
        let schema_label = schema.def(root).to_rbe0().unwrap().atoms()[0]
            .0
            .label
            .clone();
        let trees = enumerate_trees(&schema, root, 2, &SearchOptions::quick());
        let mut edges_seen = 0;
        for tree in &trees {
            for (label, _) in &tree.children {
                assert!(
                    label.ptr_eq(&schema_label),
                    "tree edges must share the schema's label allocation"
                );
                edges_seen += 1;
            }
            // And the graphs built from the trees adopt the allocation: no
            // label text is copied per edge in `to_graph`.
            let g = tree.to_graph(&schema);
            for e in g.edges() {
                if g.label(e).as_str() == "children" {
                    assert!(g.label(e).ptr_eq(&schema_label));
                }
            }
        }
        assert!(edges_seen > 0, "some tree has a children edge");
        // Sampled trees go through the same path.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            if let Some(tree) =
                sample_tree(&schema, item, 2, &mut rng, &SearchOptions::quick(), &mut 0)
            {
                for (label, _) in &tree.children {
                    assert_eq!(label.as_str(), "tag");
                }
            }
        }
    }

    #[test]
    fn mandatory_cycles_cannot_be_unfolded() {
        // T requires a p-edge to another T: no finite tree can close it.
        let schema = parse_schema("T -> p::T\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let graphs = enumerate_members(&schema, t, &SearchOptions::quick());
        assert!(graphs.is_empty());
    }

    #[test]
    fn sampling_produces_valid_members() {
        let schema = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Literal -> EMPTY\n",
        )
        .unwrap();
        let bug = schema.find_type("Bug").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut produced = 0;
        for _ in 0..20 {
            if let Some(g) = sample_member(&schema, bug, &mut rng, &SearchOptions::quick()) {
                assert!(validates(&g, &schema));
                produced += 1;
            }
        }
        assert!(produced > 0, "sampler should succeed at least once");
    }

    #[test]
    fn search_finds_counter_example_for_obvious_non_containment() {
        // h allows an optional q-edge that k forbids: a node carrying both p
        // and q validates h only.
        let h = parse_schema("A -> p::L, q::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("A -> p::L\nL -> EMPTY\n").unwrap();
        let witness = search_counter_example(&h, &k, &SearchOptions::quick()).unwrap();
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
        // The converse containment holds, so no counter-example is found.
        assert!(search_counter_example(&k, &h, &SearchOptions::quick()).is_none());
    }
}
