//! Systematic and randomized unfolding of schemas into member graphs.
//!
//! The counter-example searches of [`crate::shex0`] and [`crate::general`]
//! need candidate graphs drawn from `L(H)`. An *unfolding* instantiates a type
//! as a tree: a bag of outgoing edges accepted by the type definition, with a
//! recursively unfolded subtree per edge. Repetition under unbounded intervals
//! is sampled with small counts (`*` as 0, 1 or 2; `+` as 1 or 2), which is
//! exactly the granularity the containment arguments of the paper rely on
//! (distinguishing 0, 1, and "more than one").
//!
//! # The candidate arena
//!
//! Trees live in a [`TreeArena`]: a [`Tree`] is an index, a node is its
//! [`TypeId`] plus a child range into one flat child table, and nodes are
//! *hash-consed* — structurally identical subtrees (same type, same labelled
//! children) get the same index no matter where the enumeration encounters
//! them. An [`Unfolder`] drives enumeration and sampling over one arena and
//! memoises everything by construction key: candidate bags per type,
//! enumerated tree lists per `(type, depth)`, and one shared [`Graph`] per
//! distinct tree. The depth-cumulative searches of the containment engine
//! re-encounter the same subtrees at every depth and in every Cartesian
//! combination; the arena makes each of them exist — and each candidate graph
//! get built — exactly once.
//!
//! The arena also certifies membership: every node records whether its own
//! bag of `(label, child type)` atoms is accepted by its type's definition
//! (memoised per distinct `(type, bag)`), and a tree whose nodes all pass is
//! a member of `L(schema)` by construction — the typing that assigns every
//! node its construction type is valid, so the maximal typing is total.
//! Candidate filtering skips the full validation fixpoint for such trees and
//! only falls back to [`validates`] for the (in practice empty) remainder,
//! which keeps the produced candidate pools bit-identical to the historical
//! materialise-everything pipeline.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rand::prelude::*;
use rand::rngs::StdRng;

use shapex_graph::{Graph, GraphBuilder, Label};
use shapex_presburger::{CancelCheck, SolverOptions};
use shapex_rbe::{Bag, Interval, Rbe};
use shapex_shex::typing::{
    try_neighbourhood_satisfies_with, validates, EdgeSummary, SolverTelemetry,
};
use shapex_shex::{Atom, AtomId, AtomTable, Schema, TypeId};

use crate::budget::{CacheBudget, CacheKind};
use crate::sync::{read_or_recover, write_or_recover};

/// Budget knobs for unfolding-based searches.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Maximum depth of enumerated unfoldings.
    pub max_depth: usize,
    /// Maximum number of candidate bags kept per expression node.
    pub max_bags: usize,
    /// Maximum number of trees kept per `(type, depth)` pair.
    pub max_trees: usize,
    /// Maximum number of nodes in a single candidate graph.
    pub max_graph_nodes: usize,
    /// Maximum number of candidate graphs examined in total.
    pub max_candidates: usize,
    /// Number of additional randomized unfoldings to try.
    pub random_samples: usize,
    /// Seed for the randomized phase (deterministic by default).
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_depth: 4,
            max_bags: 24,
            max_trees: 48,
            max_graph_nodes: 600,
            max_candidates: 4_000,
            random_samples: 400,
            seed: 0xC0FFEE,
        }
    }
}

impl SearchOptions {
    /// A smaller budget for quick checks in tests and benchmarks.
    pub fn quick() -> SearchOptions {
        SearchOptions {
            max_depth: 3,
            max_bags: 12,
            max_trees: 16,
            max_graph_nodes: 200,
            max_candidates: 600,
            random_samples: 100,
            ..SearchOptions::default()
        }
    }
}

/// Cross-schema state shared by every [`Unfolder`] of one containment
/// session, plus the Presburger solver configuration for local acceptance
/// checks.
///
/// The default context gives each `Unfolder` private tables and a serial
/// solver — the behaviour of the historical per-schema design. An engine
/// clones one context into every schema entry so that atoms are interned and
/// candidate bags enumerated once per *session* rather than once per schema,
/// and so that solver work is configured and counted centrally.
#[derive(Debug, Clone, Default)]
pub struct SessionContext {
    /// Session-level interner over `Σ × Γ`; arena memo keys are ids in it.
    pub atoms: Arc<AtomTable>,
    /// Session-level candidate-bag cache keyed by defining expression.
    pub bags: Arc<SharedBagCache>,
    /// Solver options for Presburger-backed acceptance checks.
    pub solver: SolverOptions,
    /// Cumulative solver counters (engine-owned; `None` drops the stats).
    pub telemetry: Option<Arc<SolverTelemetry>>,
    /// The engine's cache ledger, when the session runs under one: bag-cache
    /// inserts charge [`CacheKind::Bags`] and hits refresh LRU stamps, so
    /// the shared enumerations participate in eviction sweeps. `None` (the
    /// default, and every standalone `Unfolder`) accounts nothing.
    pub budget: Option<Arc<CacheBudget>>,
}

/// A concurrent cache of candidate-bag enumerations keyed by the defining
/// expression and the bag cap. Schemas registered in one session frequently
/// share structurally equal definitions (evolution chains, matrix workloads);
/// this table makes each distinct definition pay for enumeration once.
///
/// Buckets are keyed by structural hash with full expression equality
/// verified on every hit, the same verify-on-collision scheme as the arena.
#[derive(Debug, Default)]
pub struct SharedBagCache {
    buckets: RwLock<HashMap<u64, Vec<BagEntry>>>,
    /// Accounted resident bytes across all entries (estimate; see
    /// [`bag_entry_weight`]), so readers never take the bucket lock.
    resident: AtomicU64,
}

/// One verified cache entry: the defining expression, the bag cap it was
/// enumerated under, the shared enumeration, and the eviction accounting —
/// the bytes charged at insertion and the LRU stamp refreshed on every hit.
#[derive(Debug)]
struct BagEntry {
    expr: Rbe<Atom>,
    cap: usize,
    bags: Arc<Vec<Bag<Atom>>>,
    bytes: u64,
    stamp: AtomicU64,
}

/// The accounted weight of one cached enumeration: the entry shell, a
/// hash-bucket allowance, a flat allowance for the key expression, and each
/// bag's count map. `Arc`-shared with every per-unfolder memo that adopted
/// the enumeration, so the total over-counts shared allocations — like every
/// weight the ledger bounds, a conservative upper estimate.
fn bag_entry_weight(bags: &[Bag<Atom>]) -> u64 {
    use std::mem::size_of;
    let per_bag: usize = bags
        .iter()
        .map(|bag| size_of::<Bag<Atom>>() + bag.distinct() * (size_of::<(Atom, u64)>() + 32))
        .sum();
    (size_of::<BagEntry>() + 48 + 64 + per_bag) as u64
}

impl SharedBagCache {
    fn get(
        &self,
        expr: &Rbe<Atom>,
        cap: usize,
        budget: Option<&CacheBudget>,
    ) -> Option<Arc<Vec<Bag<Atom>>>> {
        let buckets = read_or_recover(&self.buckets);
        let bucket = buckets.get(&hash_of((expr, cap)))?;
        let entry = bucket.iter().find(|e| e.cap == cap && e.expr == *expr)?;
        if let Some(budget) = budget {
            entry.stamp.store(budget.touch(), Ordering::Relaxed);
        }
        Some(Arc::clone(&entry.bags))
    }

    fn insert(
        &self,
        expr: &Rbe<Atom>,
        cap: usize,
        bags: Arc<Vec<Bag<Atom>>>,
        budget: Option<&CacheBudget>,
    ) {
        let mut buckets = write_or_recover(&self.buckets);
        let bucket = buckets.entry(hash_of((expr, cap))).or_default();
        if bucket.iter().any(|e| e.cap == cap && e.expr == *expr) {
            return; // a racing enumerator won; keep its accounting
        }
        let bytes = bag_entry_weight(&bags);
        if let Some(budget) = budget {
            if !budget.admits(bytes) {
                return; // oversized enumeration: used by the caller, not cached
            }
        }
        bucket.push(BagEntry {
            expr: expr.clone(),
            cap,
            bags,
            bytes,
            stamp: AtomicU64::new(budget.map(CacheBudget::touch).unwrap_or(0)),
        });
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        if let Some(budget) = budget {
            budget.charge(CacheKind::Bags, bytes);
        }
    }

    /// Number of distinct `(expression, cap)` enumerations cached.
    pub fn len(&self) -> usize {
        let buckets = read_or_recover(&self.buckets);
        buckets.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted resident bytes across all cached enumerations.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Append every entry's `(LRU stamp, accounted bytes)` pair to `out` —
    /// the engine's epoch sweep collects these next to the pool and memo
    /// stamps to pick one global cutoff.
    pub(crate) fn collect_stamps(&self, out: &mut Vec<(u64, u64)>) {
        let buckets = read_or_recover(&self.buckets);
        for bucket in buckets.values() {
            for entry in bucket {
                out.push((entry.stamp.load(Ordering::Relaxed), entry.bytes));
            }
        }
    }

    /// Drop every entry whose stamp is at or below `cutoff` (0 drops
    /// entries never stamped under a budget), returning `(entries, bytes)`
    /// removed. The caller credits the ledger.
    pub(crate) fn evict_older_than(&self, cutoff: u64) -> (u64, u64) {
        let mut buckets = write_or_recover(&self.buckets);
        let mut entries = 0u64;
        let mut bytes = 0u64;
        buckets.retain(|_, bucket| {
            bucket.retain(|entry| {
                if entry.stamp.load(Ordering::Relaxed) <= cutoff {
                    entries += 1;
                    bytes += entry.bytes;
                    false
                } else {
                    true
                }
            });
            !bucket.is_empty()
        });
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        (entries, bytes)
    }

    /// Drop every entry, returning `(entries, bytes)` removed — the
    /// clear-everything fallback of the engine's eviction. The caller
    /// credits the ledger.
    pub(crate) fn clear(&self) -> (u64, u64) {
        self.evict_older_than(u64::MAX)
    }
}

/// A 64-bit structural hash via the std hasher (stable within a process,
/// which is all the arena's verify-on-collision lookups need).
fn hash_of(value: impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// An unfolded instance of a type, as an index into a [`TreeArena`].
///
/// Indices are only meaningful for the arena that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tree(u32);

impl Tree {
    /// The position of the tree's root node in its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena node: the instantiated type plus a child range into the arena's
/// flat child table.
#[derive(Debug, Clone, Copy)]
struct TreeNode {
    type_id: TypeId,
    child_start: u32,
    child_end: u32,
}

/// A memoised `(type, bag of (label, child type))` acceptance verdict; the
/// profile — the children's atoms as session-interned [`AtomId`]s — is kept
/// for exact (collision-proof) key comparison. Interned ids shrink the key
/// from a `(Label, TypeId)` pair per child to a `u32`, and because the table
/// is session-wide the ids agree across every schema of the session.
#[derive(Debug)]
struct LocalVerdict {
    type_id: TypeId,
    profile: Vec<AtomId>,
    ok: bool,
}

/// The hash-consing tree store behind [`Unfolder`]; see the
/// [module docs](self) for the design.
#[derive(Debug, Default)]
pub struct TreeArena {
    nodes: Vec<TreeNode>,
    children: Vec<(Label, Tree)>,
    /// Structural hash per node (type + labelled child indices).
    hashes: Vec<u64>,
    /// Subtree node count per node, cached at construction.
    sizes: Vec<u64>,
    /// Whether the subtree is a certified member of the schema's language.
    member: Vec<bool>,
    /// Hash-consing buckets: structural hash → node indices (verified by
    /// full comparison, so a collision can never conflate distinct trees).
    dedup: HashMap<u64, Vec<u32>>,
    /// `(type, bag)` acceptance memo, same verify-on-collision scheme.
    local: HashMap<u64, Vec<LocalVerdict>>,
}

impl TreeArena {
    /// An empty arena.
    pub fn new() -> TreeArena {
        TreeArena::default()
    }

    /// Number of distinct trees interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate heap footprint of the arena in bytes: the flat node and
    /// child tables, the per-node caches, and the hash-consing/acceptance
    /// buckets. Labels count as their `Arc` handle only. An estimate for
    /// the engine's cache accounting, not allocator truth.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        // Amortised hash-map bucket overhead per entry.
        const MAP_ENTRY: usize = 48;
        let mut bytes = self.nodes.capacity() * size_of::<TreeNode>()
            + self.children.capacity() * size_of::<(Label, Tree)>()
            + self.hashes.capacity() * size_of::<u64>()
            + self.sizes.capacity() * size_of::<u64>()
            + self.member.capacity() * size_of::<bool>();
        bytes += self
            .dedup
            .values()
            .map(|bucket| MAP_ENTRY + bucket.capacity() * size_of::<u32>())
            .sum::<usize>();
        bytes += self
            .local
            .values()
            .map(|bucket| {
                MAP_ENTRY
                    + bucket.capacity() * size_of::<LocalVerdict>()
                    + bucket
                        .iter()
                        .map(|v| v.profile.capacity() * size_of::<AtomId>())
                        .sum::<usize>()
            })
            .sum::<usize>();
        bytes
    }

    /// The type a tree's root instantiates.
    pub fn type_of(&self, tree: Tree) -> TypeId {
        self.nodes[tree.index()].type_id
    }

    /// The labelled children of a tree's root.
    pub fn children(&self, tree: Tree) -> &[(Label, Tree)] {
        let node = self.nodes[tree.index()];
        &self.children[node.child_start as usize..node.child_end as usize]
    }

    /// Number of nodes in the tree (cached; O(1)).
    pub fn size(&self, tree: Tree) -> usize {
        self.sizes[tree.index()] as usize
    }

    /// Whether the tree is a member of `L(schema)` by construction: every
    /// node's bag of `(label, child type)` atoms is accepted by its type's
    /// definition, so the typing assigning each node its construction type
    /// is valid and validation cannot fail.
    pub fn certified_member(&self, tree: Tree) -> bool {
        self.member[tree.index()]
    }

    /// Intern a tree with the given root type and labelled children
    /// (children must already live in this arena). Structurally identical
    /// trees share one index. The session context supplies the atom table
    /// for the acceptance memo and the solver configuration for the check
    /// itself.
    pub fn node(
        &mut self,
        schema: &Schema,
        t: TypeId,
        children: &[(Label, Tree)],
        ctx: &SessionContext,
    ) -> Tree {
        self.try_node(schema, t, children, ctx, None)
            .expect("an uncancelled interning cannot be cancelled")
    }

    /// [`TreeArena::node`] under external cancellation: the acceptance
    /// check's Presburger fallback polls `cancel`, and a fired token returns
    /// `None` *before* anything is interned — the arena, its memos, and the
    /// dedup tables are exactly as if the call never happened.
    pub fn try_node(
        &mut self,
        schema: &Schema,
        t: TypeId,
        children: &[(Label, Tree)],
        ctx: &SessionContext,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<Tree> {
        let mut hasher = DefaultHasher::new();
        t.hash(&mut hasher);
        for (label, child) in children {
            label.hash(&mut hasher);
            self.hashes[child.index()].hash(&mut hasher);
        }
        let hash = hasher.finish();
        if let Some(bucket) = self.dedup.get(&hash) {
            for &index in bucket {
                let node = self.nodes[index as usize];
                if node.type_id == t
                    && &self.children[node.child_start as usize..node.child_end as usize]
                        == children
                {
                    return Some(Tree(index));
                }
            }
        }
        let local_ok = self.try_local_accepted(schema, t, children, ctx, cancel)?;
        let member = local_ok && children.iter().all(|&(_, c)| self.member[c.index()]);
        let size = 1 + children
            .iter()
            .map(|&(_, c)| self.sizes[c.index()])
            .sum::<u64>();
        let child_start = self.children.len() as u32;
        self.children.extend_from_slice(children);
        let child_end = self.children.len() as u32;
        let index = self.nodes.len() as u32;
        self.nodes.push(TreeNode {
            type_id: t,
            child_start,
            child_end,
        });
        self.hashes.push(hash);
        self.sizes.push(size);
        self.member.push(member);
        self.dedup.entry(hash).or_default().push(index);
        Some(Tree(index))
    }

    /// Whether the bag `{(label, type_of(child))}` is accepted by `def(t)` —
    /// computed once per distinct `(type, bag)` across the whole arena. The
    /// memo is keyed by the children's session-interned atom ids, so the
    /// lookup compares `u32`s rather than labels. A cancelled check returns
    /// `None` without memoising anything.
    fn try_local_accepted(
        &mut self,
        schema: &Schema,
        t: TypeId,
        children: &[(Label, Tree)],
        ctx: &SessionContext,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<bool> {
        let profile: Vec<AtomId> = children
            .iter()
            .map(|(label, child)| {
                ctx.atoms
                    .intern(&Atom::new(label.clone(), self.nodes[child.index()].type_id))
            })
            .collect();
        let key = hash_of((t, &profile));
        if let Some(bucket) = self.local.get(&key) {
            for verdict in bucket {
                if verdict.type_id == t && verdict.profile == profile {
                    return Some(verdict.ok);
                }
            }
        }
        let edges: Vec<EdgeSummary> = children
            .iter()
            .map(|(label, child)| EdgeSummary {
                label: label.clone(),
                target_types: std::iter::once(self.nodes[child.index()].type_id).collect(),
                multiplicity: 1,
            })
            .collect();
        let ok = try_neighbourhood_satisfies_with(
            &edges,
            schema.def(t),
            ctx.solver,
            ctx.telemetry.as_deref(),
            cancel,
        )?;
        self.local.entry(key).or_default().push(LocalVerdict {
            type_id: t,
            profile,
            ok,
        });
        Some(ok)
    }

    /// Materialise the tree as a simple graph rooted at a node of its type
    /// (node names are `Type_counter` in preorder, the historical layout the
    /// oracle suites compare witnesses by).
    pub fn to_graph(&self, tree: Tree, schema: &Schema, builder: &mut GraphBuilder) -> Graph {
        let size = self.size(tree);
        let mut graph = builder.start(size, size.saturating_sub(1));
        let mut counter = 0usize;
        self.add_to(tree, &mut graph, schema, &mut counter, builder);
        graph
    }

    fn add_to(
        &self,
        tree: Tree,
        graph: &mut Graph,
        schema: &Schema,
        counter: &mut usize,
        builder: &mut GraphBuilder,
    ) -> shapex_graph::NodeId {
        let id = builder.named_node(
            graph,
            format_args!("{}_{}", schema.type_name(self.type_of(tree)), *counter),
        );
        *counter += 1;
        let node = self.nodes[tree.index()];
        for child_slot in node.child_start..node.child_end {
            let (label, child) = self.children[child_slot as usize].clone();
            let child_id = self.add_to(child, graph, schema, counter, builder);
            graph.add_edge(id, label, child_id);
        }
        id
    }
}

/// A memoising unfolding session over one schema and one search budget.
///
/// All memo tables are keyed by construction inputs ([`TypeId`], depth), so
/// an `Unfolder` must only ever be used with the schema and
/// [`SearchOptions`] bag/tree caps it first saw — the containment engine
/// keeps one per registered schema (whose budget is fixed for the engine's
/// lifetime), the one-shot wrappers build a throwaway one per call.
#[derive(Debug, Default)]
pub struct Unfolder {
    arena: TreeArena,
    /// `(root type, depth) → enumerated trees` (shared, capped at
    /// `max_trees`).
    enumerated: HashMap<(TypeId, usize), Arc<Vec<Tree>>>,
    /// Candidate bags per type (depth-independent); a per-schema fast path
    /// over the session-level [`SharedBagCache`].
    bags: HashMap<TypeId, Arc<Vec<Bag<Atom>>>>,
    /// One graph per distinct tree, built on first demand.
    graphs: Vec<Option<Arc<Graph>>>,
    builder: GraphBuilder,
    /// Session-shared atom table, bag cache, and solver configuration.
    ctx: SessionContext,
}

impl Unfolder {
    /// An empty session with private tables and a serial solver.
    pub fn new() -> Unfolder {
        Unfolder::default()
    }

    /// An empty session sharing the given cross-schema context. Evicting an
    /// unfolder and rebuilding it with the same context keeps the interned
    /// atoms and cached bag enumerations — only the arena and pools drop.
    pub fn with_context(ctx: SessionContext) -> Unfolder {
        Unfolder {
            ctx,
            ..Unfolder::default()
        }
    }

    /// The session context this unfolder shares.
    pub fn context(&self) -> &SessionContext {
        &self.ctx
    }

    /// Approximate heap footprint of the whole unfolding session in bytes:
    /// the tree arena, the enumerated-tree and candidate-bag memos, and
    /// every candidate graph built so far (graphs are `Arc`-shared with the
    /// pools holding them; each holder accounts its own view, so session
    /// totals over-estimate the true resident set). An estimate for the
    /// engine's cache accounting, not allocator truth.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        const MAP_ENTRY: usize = 48;
        let mut bytes = self.arena.approx_heap_bytes();
        bytes += self
            .enumerated
            .values()
            .map(|trees| MAP_ENTRY + trees.capacity() * size_of::<Tree>())
            .sum::<usize>();
        bytes += self
            .bags
            .values()
            .map(|bags| {
                MAP_ENTRY
                    + bags
                        .iter()
                        .map(|bag| bag.iter().count() * (size_of::<(Atom, u64)>() + 32))
                        .sum::<usize>()
            })
            .sum::<usize>();
        bytes += self.graphs.capacity() * size_of::<Option<Arc<Graph>>>();
        bytes += self
            .graphs
            .iter()
            .flatten()
            .map(|g| size_of::<Graph>() + g.approx_heap_bytes())
            .sum::<usize>();
        bytes
    }

    /// The underlying tree arena.
    pub fn arena(&self) -> &TreeArena {
        &self.arena
    }

    /// The memoised candidate bags of a type.
    fn type_bags(
        &mut self,
        schema: &Schema,
        t: TypeId,
        options: &SearchOptions,
    ) -> Arc<Vec<Bag<Atom>>> {
        if let Some(bags) = self.bags.get(&t) {
            return bags.clone();
        }
        let def = schema.def(t);
        let budget = self.ctx.budget.as_deref();
        let bags = self
            .ctx
            .bags
            .get(def, options.max_bags, budget)
            .unwrap_or_else(|| {
                let bags = Arc::new(candidate_bags(def, options));
                self.ctx
                    .bags
                    .insert(def, options.max_bags, bags.clone(), budget);
                bags
            });
        self.bags.insert(t, bags.clone());
        bags
    }

    /// Enumerate unfoldings of `t` up to `depth`, memoised per
    /// `(type, depth)`. Order and caps are exactly those of the historical
    /// enumeration: bags in [`candidate_bags`] order, Cartesian child
    /// combinations (at most 4 subtree choices per slot), `max_trees` total.
    pub fn trees(
        &mut self,
        schema: &Schema,
        t: TypeId,
        depth: usize,
        options: &SearchOptions,
    ) -> Arc<Vec<Tree>> {
        self.try_trees(schema, t, depth, options, None)
            .expect("an uncancelled enumeration cannot be cancelled")
    }

    /// [`Unfolder::trees`] under external cancellation, polled once per
    /// candidate bag and inside every acceptance check. A cancelled call
    /// returns `None` and memoises nothing for the interrupted `(type,
    /// depth)` pairs — already-completed child enumerations stay cached, so
    /// a later uncancelled call resumes without redundant work and produces
    /// the identical tree list.
    pub fn try_trees(
        &mut self,
        schema: &Schema,
        t: TypeId,
        depth: usize,
        options: &SearchOptions,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<Arc<Vec<Tree>>> {
        if let Some(trees) = self.enumerated.get(&(t, depth)) {
            return Some(trees.clone());
        }
        let bags = self.type_bags(schema, t, options);
        let mut out: Vec<Tree> = Vec::new();
        'bags: for bag in bags.iter() {
            if cancel.is_some_and(|c| c.fired()) {
                return None;
            }
            if depth == 0 && !bag.is_empty() {
                continue;
            }
            // For every atom occurrence, enumerate child trees; combine by
            // taking the Cartesian product capped at max_trees. Children are
            // arena indices, so a combination clones a few words per slot
            // instead of whole subtrees.
            let mut combos: Vec<Vec<(Label, Tree)>> = vec![Vec::new()];
            let mut dead = false;
            for (atom, count) in bag.iter() {
                let child_trees = self.try_trees(
                    schema,
                    atom.target,
                    depth.saturating_sub(1),
                    options,
                    cancel,
                )?;
                if child_trees.is_empty() {
                    dead = true;
                    break;
                }
                for _ in 0..count {
                    let mut next = Vec::new();
                    for prefix in &combos {
                        for &child in child_trees.iter().take(4) {
                            let mut extended = prefix.clone();
                            extended.push((atom.label.clone(), child));
                            next.push(extended);
                            if next.len() >= options.max_trees {
                                break;
                            }
                        }
                        if next.len() >= options.max_trees {
                            break;
                        }
                    }
                    combos = next;
                }
            }
            if dead {
                continue;
            }
            for children in combos {
                out.push(
                    self.arena
                        .try_node(schema, t, &children, &self.ctx, cancel)?,
                );
                if out.len() >= options.max_trees {
                    break 'bags;
                }
            }
        }
        let out = Arc::new(out);
        self.enumerated.insert((t, depth), out.clone());
        Some(out)
    }

    /// The shared graph of a tree, built once per distinct tree.
    pub fn graph(&mut self, tree: Tree, schema: &Schema) -> Arc<Graph> {
        if self.graphs.len() < self.arena.len() {
            self.graphs.resize(self.arena.len(), None);
        }
        if let Some(graph) = &self.graphs[tree.index()] {
            return graph.clone();
        }
        let graph = Arc::new(self.arena.to_graph(tree, schema, &mut self.builder));
        self.graphs[tree.index()] = Some(graph.clone());
        graph
    }

    /// Enumerate member graphs of `root` up to `options.max_depth`; see
    /// [`enumerate_members`] for the contract.
    pub fn members(
        &mut self,
        schema: &Schema,
        root: TypeId,
        options: &SearchOptions,
    ) -> Vec<Arc<Graph>> {
        self.members_with(schema, root, options, &mut |g| validates(g, schema))
    }

    /// [`Unfolder::members`] with the fallback member-validation step
    /// injected, so the engine can route the (rare) non-certified candidates
    /// through its verdict memo while sharing this exact filter/cap logic —
    /// the answer-equivalence with the baseline depends on there being only
    /// one copy of it. Certified members skip the callback entirely.
    pub(crate) fn members_with(
        &mut self,
        schema: &Schema,
        root: TypeId,
        options: &SearchOptions,
        is_member: &mut dyn FnMut(&Graph) -> bool,
    ) -> Vec<Arc<Graph>> {
        self.try_members_with(schema, root, options, is_member, None)
            .expect("an uncancelled enumeration cannot be cancelled")
    }

    /// [`Unfolder::members_with`] under external cancellation, polled once
    /// per enumerated tree. A cancelled call returns `None`; the engine must
    /// not cache its (partial) pool. Every memo the call did complete —
    /// child enumerations, interned trees, built graphs — is identical to
    /// what an uncancelled prefix would have left behind.
    pub(crate) fn try_members_with(
        &mut self,
        schema: &Schema,
        root: TypeId,
        options: &SearchOptions,
        is_member: &mut dyn FnMut(&Graph) -> bool,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<Vec<Arc<Graph>>> {
        let trees = self.try_trees(schema, root, options.max_depth, options, cancel)?;
        let mut graphs = Vec::new();
        for &tree in trees.iter() {
            if cancel.is_some_and(|c| c.fired()) {
                return None;
            }
            if self.arena.size(tree) > options.max_graph_nodes {
                continue;
            }
            let graph = self.graph(tree, schema);
            if self.arena.certified_member(tree) || is_member(&graph) {
                graphs.push(graph);
            }
            if graphs.len() >= options.max_candidates {
                break;
            }
        }
        Some(graphs)
    }

    /// Draw one random unfolding of `root`; see [`sample_member`] for the
    /// contract. The RNG consumption is identical to the historical sampler
    /// (and independent of the memo state), so pooled and baseline searches
    /// draw the same samples.
    pub fn sample(
        &mut self,
        schema: &Schema,
        root: TypeId,
        rng: &mut StdRng,
        options: &SearchOptions,
    ) -> Option<Arc<Graph>> {
        self.sample_with(
            schema,
            root,
            rng,
            options,
            &mut |g| validates(g, schema),
            None,
        )
    }

    /// [`Unfolder::sample`] with the fallback member-validation step
    /// injected (see [`Unfolder::members_with`]) and external cancellation.
    /// `None` means either "no valid sample this draw" (the historical
    /// meaning) or "cancelled" — callers that passed a token must inspect it
    /// to tell the cases apart. The RNG consumption up to a cancellation
    /// point is identical to the uncancelled sampler's.
    pub(crate) fn sample_with(
        &mut self,
        schema: &Schema,
        root: TypeId,
        rng: &mut StdRng,
        options: &SearchOptions,
        is_member: &mut dyn FnMut(&Graph) -> bool,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<Arc<Graph>> {
        let tree = self.sample_tree(
            schema,
            root,
            options.max_depth + 2,
            rng,
            options,
            &mut 0,
            cancel,
        )?;
        let graph = self.graph(tree, schema);
        if graph.node_count() <= options.max_graph_nodes
            && (self.arena.certified_member(tree) || is_member(&graph))
        {
            Some(graph)
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_tree(
        &mut self,
        schema: &Schema,
        t: TypeId,
        depth: usize,
        rng: &mut StdRng,
        options: &SearchOptions,
        nodes: &mut usize,
        cancel: Option<CancelCheck<'_>>,
    ) -> Option<Tree> {
        *nodes += 1;
        if *nodes > options.max_graph_nodes {
            return None;
        }
        let bags = self.type_bags(schema, t, options);
        if bags.is_empty() {
            return None;
        }
        // At shallow remaining depth, prefer small bags to terminate.
        let bag = if depth == 0 {
            bags.iter().min_by_key(|b| b.total())?
        } else {
            &bags[rng.gen_range(0..bags.len())]
        };
        let mut children = Vec::new();
        for (atom, count) in bag.iter() {
            for _ in 0..count {
                let child = self.sample_tree(
                    schema,
                    atom.target,
                    depth.saturating_sub(1),
                    rng,
                    options,
                    nodes,
                    cancel,
                )?;
                children.push((atom.label.clone(), child));
            }
        }
        self.arena.try_node(schema, t, &children, &self.ctx, cancel)
    }
}

/// First-occurrence-order deduplication of bags by hash, with full equality
/// verified on every bucket hit (a collision can only cost a comparison,
/// never conflate distinct bags). Replaces the historical `Vec::contains`
/// scans, which re-compared every accumulated bag per insertion.
#[derive(Default)]
struct BagDedup {
    buckets: HashMap<u64, Vec<usize>>,
}

impl BagDedup {
    /// Append `bag` to `out` unless an equal bag is already there; returns
    /// whether the bag was new.
    fn insert(&mut self, out: &mut Vec<Bag<Atom>>, bag: Bag<Atom>) -> bool {
        let bucket = self.buckets.entry(hash_of(&bag)).or_default();
        if bucket.iter().any(|&i| out[i] == bag) {
            return false;
        }
        bucket.push(out.len());
        out.push(bag);
        true
    }
}

/// Enumerate up to `options.max_bags` bags accepted by the expression, using
/// small repetition counts for unbounded intervals.
pub fn candidate_bags(expr: &Rbe<Atom>, options: &SearchOptions) -> Vec<Bag<Atom>> {
    let mut out = enumerate_bags(expr, options.max_bags);
    out.truncate(options.max_bags);
    out
}

fn enumerate_bags(expr: &Rbe<Atom>, limit: usize) -> Vec<Bag<Atom>> {
    match expr {
        Rbe::Epsilon => vec![Bag::new()],
        Rbe::Symbol(atom) => vec![Bag::from_symbols([atom.clone()])],
        Rbe::Disj(parts) => {
            let mut out: Vec<Bag<Atom>> = Vec::new();
            let mut seen = BagDedup::default();
            for p in parts {
                for bag in enumerate_bags(p, limit) {
                    seen.insert(&mut out, bag);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            out
        }
        Rbe::Concat(parts) => {
            let mut out: Vec<Bag<Atom>> = vec![Bag::new()];
            for p in parts {
                let options = enumerate_bags(p, limit);
                let mut next = Vec::new();
                for prefix in &out {
                    for bag in &options {
                        next.push(prefix.union(bag));
                        if next.len() >= limit {
                            break;
                        }
                    }
                    if next.len() >= limit {
                        break;
                    }
                }
                out = next;
            }
            out
        }
        Rbe::Repeat(inner, interval) => {
            let counts = repetition_counts(*interval);
            let inner_bags = enumerate_bags(inner, limit);
            let mut out: Vec<Bag<Atom>> = Vec::new();
            let mut seen = BagDedup::default();
            for n in counts {
                // n-fold unions of inner bags (diagonal + a few mixes).
                let mut partial: Vec<Bag<Atom>> = vec![Bag::new()];
                for _ in 0..n {
                    let mut next = Vec::new();
                    for prefix in &partial {
                        for bag in &inner_bags {
                            next.push(prefix.union(bag));
                            if next.len() >= limit {
                                break;
                            }
                        }
                        if next.len() >= limit {
                            break;
                        }
                    }
                    partial = next;
                }
                for bag in partial {
                    seen.insert(&mut out, bag);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// Exhaustively enumerate the language of a shape expression as a set of
/// bags, or `None` when the language has more than `limit` bags or is
/// infinite (some repetition interval is unbounded or very wide).
///
/// Unlike [`candidate_bags`], which samples, a `Some` answer here is a
/// complete listing of `L(expr)`; the sufficient containment check of
/// `crate::general` relies on that completeness.
pub fn all_bags(expr: &Rbe<Atom>, limit: usize) -> Option<Vec<Bag<Atom>>> {
    match expr {
        Rbe::Epsilon => Some(vec![Bag::new()]),
        Rbe::Symbol(atom) => Some(vec![Bag::from_symbols([atom.clone()])]),
        Rbe::Disj(parts) => {
            let mut out: Vec<Bag<Atom>> = Vec::new();
            let mut seen = BagDedup::default();
            for p in parts {
                for bag in all_bags(p, limit)? {
                    seen.insert(&mut out, bag);
                    if out.len() > limit {
                        return None;
                    }
                }
            }
            Some(out)
        }
        Rbe::Concat(parts) => {
            let mut out: Vec<Bag<Atom>> = vec![Bag::new()];
            for p in parts {
                let choices = all_bags(p, limit)?;
                let mut next = Vec::new();
                let mut seen = BagDedup::default();
                for prefix in &out {
                    for bag in &choices {
                        seen.insert(&mut next, prefix.union(bag));
                        if next.len() > limit {
                            return None;
                        }
                    }
                }
                out = next;
            }
            Some(out)
        }
        Rbe::Repeat(inner, interval) => {
            let hi = interval.hi()?;
            let lo = interval.lo();
            if hi - lo > 8 || hi > 16 {
                return None;
            }
            let inner_bags = all_bags(inner, limit)?;
            let mut out: Vec<Bag<Atom>> = Vec::new();
            let mut seen = BagDedup::default();
            for n in lo..=hi {
                let mut partial: Vec<Bag<Atom>> = vec![Bag::new()];
                for _ in 0..n {
                    let mut next = Vec::new();
                    let mut seen_partial = BagDedup::default();
                    for prefix in &partial {
                        for bag in &inner_bags {
                            seen_partial.insert(&mut next, prefix.union(bag));
                            if next.len() > limit {
                                return None;
                            }
                        }
                    }
                    partial = next;
                }
                for bag in partial {
                    seen.insert(&mut out, bag);
                    if out.len() > limit {
                        return None;
                    }
                }
            }
            Some(out)
        }
    }
}

/// The repetition counts explored under an interval: enough to distinguish
/// "absent", "exactly one" and "more than one".
fn repetition_counts(interval: Interval) -> Vec<u64> {
    let lo = interval.lo();
    match interval.hi() {
        None => {
            if lo == 0 {
                vec![0, 1, 2]
            } else {
                vec![lo, lo + 1]
            }
        }
        Some(hi) => {
            let mut counts = vec![lo];
            if hi > lo {
                counts.push(lo + 1);
            }
            if hi > lo + 1 && hi <= lo + 4 {
                counts.push(hi);
            }
            counts
        }
    }
}

/// Enumerate unfoldings of `root` up to the configured depth. Only trees whose
/// leaves are "closed" (every type at the frontier admits the empty bag) are
/// produced, so every returned tree's graph belongs to `L(schema)`.
pub fn enumerate_members(schema: &Schema, root: TypeId, options: &SearchOptions) -> Vec<Graph> {
    Unfolder::new()
        .members(schema, root, options)
        .into_iter()
        .map(|graph| Graph::clone(&graph))
        .collect()
}

/// Draw a random unfolding of `root` (depth- and size-bounded); returns `None`
/// when the sampler runs into the node budget before closing all mandatory
/// edges.
pub fn sample_member(
    schema: &Schema,
    root: TypeId,
    rng: &mut StdRng,
    options: &SearchOptions,
) -> Option<Graph> {
    Unfolder::new()
        .sample(schema, root, rng, options)
        .map(|graph| Graph::clone(&graph))
}

/// Search for a counter-example to `L(h) ⊆ L(k)`: a graph that validates
/// against `h` but not against `k`. Systematic unfoldings are tried first,
/// then randomized ones. Any returned graph is certified by re-validation.
///
/// This is the one-shot entry point: it runs through a throwaway
/// [`crate::engine::ContainmentEngine`], so a single call already reuses
/// unfolding pools and validation verdicts across the depth-cumulative
/// enumeration. Callers issuing many queries over the same schemas should
/// hold an engine instead — its query methods take `&self` over concurrent
/// caches, so one engine can even be shared across threads. The candidate
/// order (and therefore the returned witness) is that of
/// [`crate::baseline::search_counter_example_baseline`], the retained
/// memo-free reference.
pub fn search_counter_example(h: &Schema, k: &Schema, options: &SearchOptions) -> Option<Graph> {
    crate::engine::ContainmentEngine::with_search(options.clone()).counter_example(h, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;

    #[test]
    fn candidate_bags_cover_interval_choices() {
        let schema = parse_schema("T -> a::L?, b::L*, c::L\nL -> EMPTY\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let bags = candidate_bags(schema.def(t), &SearchOptions::default());
        // a ∈ {0,1}, b ∈ {0,1,2}, c = 1 — up to 6 combinations (capped).
        assert!(bags.len() >= 4);
        let l = schema.find_type("L").unwrap();
        let a = Atom::new("a", l);
        let b = Atom::new("b", l);
        let c = Atom::new("c", l);
        assert!(bags.iter().all(|bag| bag.count(&c) == 1));
        assert!(bags.iter().any(|bag| bag.count(&a) == 0));
        assert!(bags.iter().any(|bag| bag.count(&a) == 1));
        assert!(bags.iter().any(|bag| bag.count(&b) == 2));
    }

    #[test]
    fn candidate_bags_handle_disjunction() {
        let schema = parse_schema("T -> p::L | q::L\nL -> EMPTY\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let bags = candidate_bags(schema.def(t), &SearchOptions::default());
        assert_eq!(bags.len(), 2);
        assert!(bags.iter().all(|b| b.total() == 1));
    }

    #[test]
    fn enumerated_members_validate() {
        let schema =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let root = schema.find_type("Root").unwrap();
        let graphs = enumerate_members(&schema, root, &SearchOptions::quick());
        assert!(!graphs.is_empty());
        for g in &graphs {
            assert!(validates(g, &schema));
        }
        // Both the with-tag and without-tag items appear somewhere.
        assert!(graphs.iter().any(|g| g.edge_count() >= 2));
        assert!(graphs.iter().any(|g| g.node_count() == 1), "the empty Root");
    }

    #[test]
    fn arena_shares_subtrees_and_certifies_members() {
        let schema =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let root = schema.find_type("Root").unwrap();
        let item = schema.find_type("Item").unwrap();
        let mut unfolder = Unfolder::new();
        let deep = unfolder.trees(&schema, root, 3, &SearchOptions::quick());
        let arena_after_deep = unfolder.arena().len();
        // The shallow enumeration re-encounters only already-interned trees.
        let shallow = unfolder.trees(&schema, item, 2, &SearchOptions::quick());
        assert!(!shallow.is_empty());
        assert_eq!(
            unfolder.arena().len(),
            arena_after_deep,
            "depth-2 item trees were all interned during the depth-3 root pass"
        );
        // Every enumerated tree is a certified member, and its cached graph
        // is shared: asking twice returns the same allocation.
        for &tree in deep.iter().chain(shallow.iter()) {
            assert!(unfolder.arena().certified_member(tree));
            let g1 = unfolder.graph(tree, &schema);
            let g2 = unfolder.graph(tree, &schema);
            assert!(Arc::ptr_eq(&g1, &g2), "one graph per distinct tree");
            assert_eq!(g1.node_count(), unfolder.arena().size(tree));
        }
    }

    #[test]
    fn trees_carry_the_schema_interned_labels() {
        let schema =
            parse_schema("Root -> children::Item*\nItem -> tag::Leaf?\nLeaf -> EMPTY\n").unwrap();
        let root = schema.find_type("Root").unwrap();
        let item = schema.find_type("Item").unwrap();
        let schema_label = schema.def(root).to_rbe0().unwrap().atoms()[0]
            .0
            .label
            .clone();
        let mut unfolder = Unfolder::new();
        let trees = unfolder.trees(&schema, root, 2, &SearchOptions::quick());
        let mut edges_seen = 0;
        for &tree in trees.iter() {
            for (label, _) in unfolder.arena().children(tree) {
                assert!(
                    label.ptr_eq(&schema_label),
                    "tree edges must share the schema's label allocation"
                );
                edges_seen += 1;
            }
        }
        // And the graphs built from the trees adopt the allocation: no label
        // text is copied per edge in `to_graph`.
        for &tree in trees.iter() {
            let g = unfolder.graph(tree, &schema);
            for e in g.edges() {
                if g.label(e).as_str() == "children" {
                    assert!(g.label(e).ptr_eq(&schema_label));
                }
            }
        }
        assert!(edges_seen > 0, "some tree has a children edge");
        // Sampled trees go through the same path.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            if let Some(tree) = unfolder.sample_tree(
                &schema,
                item,
                2,
                &mut rng,
                &SearchOptions::quick(),
                &mut 0,
                None,
            ) {
                for (label, _) in unfolder.arena().children(tree) {
                    assert_eq!(label.as_str(), "tag");
                }
            }
        }
    }

    #[test]
    fn mandatory_cycles_cannot_be_unfolded() {
        // T requires a p-edge to another T: no finite tree can close it.
        let schema = parse_schema("T -> p::T\n").unwrap();
        let t = schema.find_type("T").unwrap();
        let graphs = enumerate_members(&schema, t, &SearchOptions::quick());
        assert!(graphs.is_empty());
    }

    #[test]
    fn sampling_produces_valid_members() {
        let schema = parse_schema(
            "Bug  -> descr::Literal, reportedBy::User, related::Bug*\n\
             User -> name::Literal, email::Literal?\n\
             Literal -> EMPTY\n",
        )
        .unwrap();
        let bug = schema.find_type("Bug").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut produced = 0;
        for _ in 0..20 {
            if let Some(g) = sample_member(&schema, bug, &mut rng, &SearchOptions::quick()) {
                assert!(validates(&g, &schema));
                produced += 1;
            }
        }
        assert!(produced > 0, "sampler should succeed at least once");
    }

    #[test]
    fn search_finds_counter_example_for_obvious_non_containment() {
        // h allows an optional q-edge that k forbids: a node carrying both p
        // and q validates h only.
        let h = parse_schema("A -> p::L, q::L?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("A -> p::L\nL -> EMPTY\n").unwrap();
        let witness = search_counter_example(&h, &k, &SearchOptions::quick()).unwrap();
        assert!(validates(&witness, &h));
        assert!(!validates(&witness, &k));
        // The converse containment holds, so no counter-example is found.
        assert!(search_counter_example(&k, &h, &SearchOptions::quick()).is_none());
    }
}
