//! [`ContainmentMatrix`] — the typed result of a batch pairwise containment
//! query.
//!
//! [`crate::engine::ContainmentEngine::check_matrix`] historically returned
//! a bare `Vec<Vec<Containment>>`, which forced every consumer (the service
//! facade, the examples, the benches) to re-invent the row/column ↔ schema
//! mapping. `ContainmentMatrix` packages the verdict grid together with the
//! [`SchemaId`]s it was computed over: cells are addressable by position
//! *or* by handle pair, rows iterate as slices, and positional indexing
//! (`matrix[i][j]`) keeps working so the grid still reads like the paper's
//! N×N tables.

use std::fmt;
use std::ops::Index;

use crate::engine::SchemaId;
use crate::Containment;

/// The answers of an N×N batch containment query: `matrix[i][j]` decides
/// `L(ids[i]) ⊆ L(ids[j])`, with `ids` the registered handles the matrix
/// was computed over (in query order, duplicates preserved).
///
/// Stored row-major in one flat allocation; rows are handed out as slices.
#[derive(Debug, Clone)]
pub struct ContainmentMatrix {
    ids: Vec<SchemaId>,
    cells: Vec<Containment>,
}

impl ContainmentMatrix {
    /// Assemble a matrix from its handles and row-major cells.
    ///
    /// # Panics
    /// Panics unless `cells.len() == ids.len()²`.
    pub fn new(ids: Vec<SchemaId>, cells: Vec<Containment>) -> ContainmentMatrix {
        assert_eq!(
            cells.len(),
            ids.len() * ids.len(),
            "matrix cells must be a full N×N grid"
        );
        ContainmentMatrix { ids, cells }
    }

    /// Number of schemas (= rows = columns).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the matrix is empty (a query over zero schemas).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The registered handles the matrix was computed over, in query order.
    pub fn ids(&self) -> &[SchemaId] {
        &self.ids
    }

    /// The cell deciding `L(ids[i]) ⊆ L(ids[j])`.
    ///
    /// # Panics
    /// Panics when `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> &Containment {
        &self[i][j]
    }

    /// The cell for an ordered pair of handles, or `None` when either
    /// handle is not part of the matrix. With duplicate handles the first
    /// occurrence wins (duplicates hold identical verdicts — the engine
    /// interns registrations, so equal handles mean equal rows).
    pub fn by_ids(&self, h: SchemaId, k: SchemaId) -> Option<&Containment> {
        let i = self.ids.iter().position(|&id| id == h)?;
        let j = self.ids.iter().position(|&id| id == k)?;
        Some(self.get(i, j))
    }

    /// One row as a slice: every verdict with `ids[i]` on the left.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[Containment] {
        let n = self.ids.len();
        &self.cells[i * n..(i + 1) * n]
    }

    /// Iterate over the rows as slices, top to bottom.
    pub fn rows(&self) -> std::slice::Chunks<'_, Containment> {
        self.cells.chunks(self.ids.len().max(1))
    }

    /// Alias for [`ContainmentMatrix::rows`], so the matrix iterates like
    /// the `Vec<Vec<_>>` it replaced.
    pub fn iter(&self) -> std::slice::Chunks<'_, Containment> {
        self.rows()
    }

    /// Iterate over every cell as `(row handle, column handle, verdict)`.
    pub fn entries(&self) -> impl Iterator<Item = (SchemaId, SchemaId, &Containment)> + '_ {
        let n = self.ids.len();
        self.cells
            .iter()
            .enumerate()
            .map(move |(flat, cell)| (self.ids[flat / n], self.ids[flat % n], cell))
    }
}

impl Index<usize> for ContainmentMatrix {
    type Output = [Containment];

    fn index(&self, i: usize) -> &[Containment] {
        self.row(i)
    }
}

impl Index<(SchemaId, SchemaId)> for ContainmentMatrix {
    type Output = Containment;

    fn index(&self, (h, k): (SchemaId, SchemaId)) -> &Containment {
        self.by_ids(h, k)
            .expect("both handles must be part of the matrix")
    }
}

impl<'a> IntoIterator for &'a ContainmentMatrix {
    type Item = &'a [Containment];
    type IntoIter = std::slice::Chunks<'a, Containment>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows()
    }
}

impl fmt::Display for ContainmentMatrix {
    /// A compact grid: `⊆` for contained, `⊄` for not contained, `?` for
    /// unknown — the rendering the examples print.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.rows() {
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, " ")?;
                }
                let mark = if cell.is_contained() {
                    "⊆"
                } else if cell.is_not_contained() {
                    "⊄"
                } else {
                    "?"
                };
                write!(f, "{mark}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ContainmentEngine;
    use shapex_shex::parse_schema;

    fn sample() -> (ContainmentMatrix, Vec<SchemaId>) {
        let texts = ["T -> p::L?\nL -> EMPTY\n", "T -> p::L*\nL -> EMPTY\n"];
        let schemas: Vec<_> = texts.iter().map(|t| parse_schema(t).unwrap()).collect();
        let engine = ContainmentEngine::new();
        let ids: Vec<SchemaId> = schemas.iter().map(|s| engine.register(s)).collect();
        (engine.check_matrix(&schemas), ids)
    }

    #[test]
    fn positional_and_handle_indexing_agree() {
        let (matrix, ids) = sample();
        assert_eq!(matrix.len(), 2);
        assert!(!matrix.is_empty());
        assert_eq!(matrix.ids(), &ids[..]);
        assert!(matrix[0][1].is_contained(), "? widens to *");
        assert!(matrix[(ids[1], ids[0])].is_not_contained());
        assert_eq!(
            format!("{}", matrix.get(1, 0)),
            format!("{}", matrix[(ids[1], ids[0])])
        );
        assert!(matrix.by_ids(ids[0], SchemaId::from_index(7)).is_none());
    }

    #[test]
    fn rows_and_entries_cover_the_grid() {
        let (matrix, ids) = sample();
        assert_eq!(matrix.rows().count(), 2);
        assert!(matrix.iter().all(|row| row.len() == 2));
        let entries: Vec<_> = matrix.entries().collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[1].0, ids[0]);
        assert_eq!(entries[1].1, ids[1]);
        // Diagonal cells are reflexive containments.
        assert!(matrix[(ids[0], ids[0])].is_contained());
        let grid = format!("{matrix}");
        assert!(grid.contains('⊆') && grid.contains('⊄'), "{grid}");
    }

    #[test]
    #[should_panic(expected = "full N×N grid")]
    fn ragged_cells_are_rejected() {
        let (matrix, ids) = sample();
        let mut cells: Vec<Containment> = Vec::new();
        for row in &matrix {
            cells.extend(row.iter().cloned());
        }
        cells.pop();
        let _ = ContainmentMatrix::new(ids, cells);
    }
}
