//! Poison-recovering lock acquisition for the engine's evictable caches.
//!
//! Every `Mutex`/`RwLock` in this crate guards *memoised, recomputable*
//! state: validation memos, enumeration pools, unfolder arenas, flight
//! tables, eviction bookkeeping. A panic inside a critical section can at
//! worst leave such state partially updated at an operation boundary — a
//! `HashMap` insert or `Vec` push that never happened — which is
//! indistinguishable from an eviction sweep having dropped the entry. By the
//! same observational-invisibility argument that makes eviction safe, a
//! poisoned guard can simply be taken over: a missing or stale-but-complete
//! entry costs recomputation, never a wrong verdict.
//!
//! Before this module, the crate held ~73 `.lock().expect(...)` sites, so
//! one panicking query (injected or real) poisoned a lock and wedged every
//! subsequent query touching the same cache with a secondary panic. All of
//! them now route through these helpers and keep serving.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquire a mutex, recovering the guard if a previous holder panicked.
pub fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a read guard, recovering if a previous writer panicked.
pub fn read_or_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a write guard, recovering if a previous holder panicked.
pub fn write_or_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_mutex_recovers_with_state_intact() {
        let shared = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.lock().is_err(), "the lock really is poisoned");
        assert_eq!(*lock_or_recover(&shared), 7);
        *lock_or_recover(&shared) += 1;
        assert_eq!(*lock_or_recover(&shared), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let shared = Arc::new(RwLock::new(vec![1, 2, 3]));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(read_or_recover(&shared).len(), 3);
        write_or_recover(&shared).push(4);
        assert_eq!(read_or_recover(&shared).len(), 4);
    }
}
