//! Containment for arbitrary shape expression schemas (Section 6 of the
//! paper).
//!
//! Full ShEx containment is coNEXP-hard and only known to be in
//! co2NEXP^NP (Proposition 6.5 and Corollary 6.6); a minimal counter-example
//! may be double-exponential even in compressed form (Theorem 6.4). The
//! procedure here is therefore a budgeted semi-decision procedure that is
//! sound in both directions:
//!
//! * `Contained` is only reported when a syntactic per-type implication holds
//!   (every type of `H` is simulated by a type of `K` under a greatest
//!   fixpoint that uses language inclusion of the candidate neighbourhood
//!   bags) — a sufficient condition in the spirit of embeddings;
//! * `NotContained` is only reported with a counter-example that has been
//!   re-validated against both schemas (using the Presburger-backed
//!   validation of `shapex-shex`);
//! * everything else is `Unknown`.

use std::collections::BTreeSet;

use shapex_presburger::SolverOptions;
use shapex_rbe::Bag;
use shapex_shex::typing::{neighbourhood_satisfies_with, EdgeSummary, SolverTelemetry};
use shapex_shex::{Atom, Schema, TypeId};

use crate::unfold::{all_bags, SearchOptions};
use crate::Containment;

/// Number of neighbourhood bags per type definition beyond which the
/// sufficient containment check gives up (and the procedure falls through to
/// counter-example search).
const EXHAUSTIVE_BAG_LIMIT: usize = 512;

/// Budget options for [`general_containment`].
pub type GeneralOptions = SearchOptions;

/// Decide `L(H) ⊆ L(K)` for arbitrary ShEx schemas (best effort).
///
/// Delegates to the ShEx₀ procedure when both schemas are RBE₀. This is the
/// one-shot entry point: it runs through a throwaway
/// [`crate::engine::ContainmentEngine`]; callers issuing many queries over
/// the same schemas should hold an engine (or use
/// [`crate::engine::ContainmentEngine::check_matrix`]) so shape graphs,
/// unfolding pools, and validation verdicts are shared across queries.
pub fn general_containment(h: &Schema, k: &Schema, options: &GeneralOptions) -> Containment {
    crate::engine::ContainmentEngine::with_search(options.clone()).general(h, k)
}

/// The exhaustive per-type bag enumeration backing the sufficient check:
/// `Some(bags)` with one complete `L(δ_H(t))` listing per type, or `None`
/// when some definition's language is infinite or larger than
/// [`EXHAUSTIVE_BAG_LIMIT`] (the check is then not attempted).
pub(crate) fn exhaustive_bags(h: &Schema) -> Option<Vec<Vec<Bag<Atom>>>> {
    h.types()
        .map(|t| all_bags(h.def(t), EXHAUSTIVE_BAG_LIMIT))
        .collect()
}

/// A sufficient condition for containment generalizing embeddings to
/// arbitrary shape expressions: a greatest-fixpoint relation `R ⊆ Γ_H × Γ_K`
/// such that for every `(t, s) ∈ R`, every neighbourhood bag in `L(δ_H(t))`
/// can be retyped along `R` so that it satisfies `δ_K(s)`, and such that
/// every type of `H` is related to some type of `K`.
///
/// When this holds, any graph valid w.r.t. `H` can have its `H`-typing
/// translated through `R` into a `K`-typing, so `L(H) ⊆ L(K)`. The condition
/// is not necessary (like embeddings, Figure 4). Soundness requires
/// `bags_per_type` to be the *exhaustive* enumeration produced by
/// [`exhaustive_bags`] for `h` — the engine caches that enumeration per
/// schema so a batch of `K`-partners shares one computation.
pub(crate) fn type_simulation_with_bags(
    h: &Schema,
    bags_per_type: &[Vec<Bag<Atom>>],
    k: &Schema,
    solver: SolverOptions,
    telemetry: Option<&SolverTelemetry>,
) -> bool {
    let mut relation: Vec<BTreeSet<TypeId>> = h
        .types()
        .map(|_| k.types().collect::<BTreeSet<TypeId>>())
        .collect();
    loop {
        let mut changed = false;
        for t in h.types() {
            let candidates: Vec<TypeId> = relation[t.index()].iter().copied().collect();
            for s in candidates {
                if !pair_consistent(
                    &bags_per_type[t.index()],
                    k,
                    s,
                    &relation,
                    solver,
                    telemetry,
                ) {
                    relation[t.index()].remove(&s);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    h.types().all(|t| !relation[t.index()].is_empty())
}

fn pair_consistent(
    h_bags: &[Bag<Atom>],
    k: &Schema,
    s: TypeId,
    relation: &[BTreeSet<TypeId>],
    solver: SolverOptions,
    telemetry: Option<&SolverTelemetry>,
) -> bool {
    // Every neighbourhood of t must be acceptable for s once the target types
    // are translated through the relation.
    for bag in h_bags {
        let edges: Vec<EdgeSummary> = bag
            .iter()
            .map(|(atom, count)| EdgeSummary {
                label: atom.label.clone(),
                target_types: relation[atom.target.index()].clone(),
                multiplicity: count,
            })
            .collect();
        if !neighbourhood_satisfies_with(&edges, k.def(s), solver, telemetry) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::parse_schema;
    use shapex_shex::typing::validates;

    fn quick() -> GeneralOptions {
        GeneralOptions::quick()
    }

    #[test]
    fn disjunction_widening_is_contained() {
        // H fixes the p-target to A; K allows A or B.
        let h = parse_schema("Root -> p::A\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("Root -> p::A | p::B\nA -> a::L?\nB -> b::L\nL -> EMPTY\n").unwrap();
        assert!(general_containment(&h, &k, &quick()).is_contained());
        // The converse fails: a Root whose child is a B-node is valid for K
        // but not for H.
        let result = general_containment(&k, &h, &quick());
        let witness = result.counter_example().expect("not contained");
        assert!(validates(witness, &k) && !validates(witness, &h));
    }

    #[test]
    fn interval_refinement_with_disjunction() {
        // H: exactly two q-children. K: one or two q-children (via
        // disjunction). H ⊆ K holds; K ⊄ H.
        let h = parse_schema("T -> q::L[2;2]\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> q::L | (q::L, q::L)\nL -> EMPTY\n").unwrap();
        assert!(general_containment(&h, &k, &quick()).is_contained());
        let reverse = general_containment(&k, &h, &quick());
        let witness = reverse.counter_example().expect("not contained");
        assert!(validates(witness, &k) && !validates(witness, &h));
    }

    #[test]
    fn rbe0_inputs_delegate_to_shex0() {
        // h requires exactly two p-children, k any number; h ⊆ k but a node
        // with a single p-child separates the other direction.
        let h = parse_schema("T -> p::L, p::L\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L*\nL -> EMPTY\n").unwrap();
        assert!(general_containment(&h, &k, &quick()).is_contained());
        assert!(general_containment(&k, &h, &quick()).is_not_contained());
    }

    #[test]
    fn unbounded_repetition_disables_the_sufficient_check() {
        // Both schemas use `*`, so the type-simulation check is not trusted;
        // the identical pair is still recognised as contained through the
        // RBE0/embedding path... unless the expression is genuinely non-RBE0,
        // in which case the procedure may answer Unknown — but never a wrong
        // NotContained.
        let h = parse_schema("T -> (p::L, q::L)*\nL -> EMPTY\n").unwrap();
        let result = general_containment(&h, &h, &quick());
        assert!(!result.is_not_contained());
    }

    #[test]
    fn nested_group_non_containment() {
        // H: pairs of (p, q) children, zero or one pair. K: at most one p and
        // at most one q but also requires r. Counter-example: a node with a
        // (p, q) pair and no r.
        let h = parse_schema("T -> (p::L, q::L)?\nL -> EMPTY\n").unwrap();
        let k = parse_schema("T -> p::L?, q::L?, r::L\nL -> EMPTY\n").unwrap();
        let result = general_containment(&h, &k, &quick());
        let witness = result.counter_example().expect("not contained");
        assert!(validates(witness, &h) && !validates(witness, &k));
    }
}
