//! Cache accounting and eviction for the [`crate::engine`]: the
//! `CacheBudget`/[`Weigh`] seam.
//!
//! Every cache the engine grew in the session-layer PRs — enumerated
//! unfolding pools, candidate-validation memos, the sharded pair memos, the
//! per-schema [`crate::unfold::Unfolder`] arenas — is a pure memo: dropping
//! an entry can never change a verdict, only cost a recomputation. That
//! makes bounded memory a pure accounting problem, and this module is the
//! ledger:
//!
//! * [`Weigh`] assigns every cached value an **accounted byte weight** — a
//!   deliberate *approximation* of its heap footprint (capacities times
//!   element sizes plus fixed per-container overheads). Structurally shared
//!   allocations (`Arc`ed candidate graphs appear in pools *and* in the
//!   unfolder that built them) are counted by every holder, so the accounted
//!   total over-estimates the true resident set; the budget therefore bounds
//!   a conservative upper bound, never an undercount.
//! * [`CacheBudget`] holds the knobs ([`CacheBudget::limit`], `None` =
//!   unbounded — the default, and the zero-overhead path; plus the
//!   per-entry admission ceiling [`CacheBudget::max_entry_bytes`] that
//!   refuses to cache any single oversized value before it can displace the
//!   working set), the per-kind resident-byte atomics, the LRU clock, and
//!   the eviction counters that [`crate::engine::EngineStats`] surfaces.
//!
//! The engine charges the ledger on every insert, stamps every entry with
//! the clock on every hit, and — when the evictable total exceeds the limit
//! — runs an **epoch-LRU sweep**: collect all `(stamp, bytes)` pairs, pick
//! the cutoff stamp that frees enough to reach the low-water mark (half the
//! limit, for hysteresis), and drop every entry at or below it. One-shot
//! `OnceLock` caches (characterizing graphs, exhaustive bag enumerations,
//! sampled pools) and the registered schemas themselves are **exempt but
//! counted**: they appear as [`CacheKind::Pinned`] bytes in the stats so a
//! capacity planner sees the whole footprint, but a sweep never touches
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The accounting category of a cached value. Every kind except
/// [`CacheKind::Pinned`] is evictable and counts against the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Enumerated `(root, depth)` unfolding pools.
    Pools,
    /// Candidate-validation verdict memos.
    Validate,
    /// The sharded `(schema, schema)` pair memos (embeds / sufficient).
    Pairs,
    /// The per-schema unfolding sessions (tree arenas + built graphs);
    /// reclaimed wholesale when a schema's pools have all been evicted.
    Unfolder,
    /// The session-wide candidate-bag enumerations shared across schemas
    /// (the [`crate::unfold::SharedBagCache`]).
    Bags,
    /// One-shot caches, registered schemas, and the session atom table:
    /// counted, never evicted.
    Pinned,
}

/// The evictable categories, in stats-reporting order.
const EVICTABLE: [CacheKind; 5] = [
    CacheKind::Pools,
    CacheKind::Validate,
    CacheKind::Pairs,
    CacheKind::Unfolder,
    CacheKind::Bags,
];

impl CacheKind {
    fn index(self) -> usize {
        match self {
            CacheKind::Pools => 0,
            CacheKind::Validate => 1,
            CacheKind::Pairs => 2,
            CacheKind::Unfolder => 3,
            CacheKind::Bags => 4,
            CacheKind::Pinned => 5,
        }
    }
}

/// Approximate heap footprint of a cached value, in bytes.
///
/// Implementations estimate: exact sizes are unobservable without allocator
/// hooks, and the budget only needs a consistent, conservative measure. A
/// weight may drift as lazy structures fill in, so the engine records the
/// weight it charged next to each cache entry and credits exactly that
/// recorded amount on eviction — the ledger always balances.
pub trait Weigh {
    /// The accounted byte weight (heap allocations only; the inline `self`
    /// is the container's business).
    fn weight_bytes(&self) -> u64;
}

impl Weigh for shapex_graph::Graph {
    fn weight_bytes(&self) -> u64 {
        self.approx_heap_bytes() as u64
    }
}

impl Weigh for shapex_shex::Schema {
    fn weight_bytes(&self) -> u64 {
        self.approx_heap_bytes() as u64
    }
}

/// The engine's cache ledger: budget knob, resident-byte accounting, LRU
/// clock, and eviction telemetry. All counters are atomics — charging,
/// crediting, and stamping happen on `&self` from any thread; only the
/// sweep itself is serialised (through [`CacheBudget::sweeper`]).
#[derive(Debug)]
pub struct CacheBudget {
    /// Accounted-byte ceiling for the evictable caches; `None` disables
    /// eviction entirely (charges still accumulate, so stats stay honest).
    limit: Option<u64>,
    /// Per-entry admission ceiling: a single cache entry heavier than this
    /// is never cached at all (`None` admits everything). Eviction alone
    /// cannot protect the working set from one oversized pool or memo — it
    /// only reacts *after* the giant entry has already displaced everything
    /// else, so admission refuses it up front.
    max_entry_bytes: Option<u64>,
    /// The LRU clock: ticks on every cache hit and insert. Stamps are
    /// compared only for ordering, so relaxed increments are enough.
    clock: AtomicU64,
    /// Resident accounted bytes per [`CacheKind`] (last slot = pinned).
    resident: [AtomicU64; 6],
    /// Entries evicted over the engine's lifetime.
    evictions: AtomicU64,
    /// Accounted bytes freed by eviction over the engine's lifetime.
    evicted_bytes: AtomicU64,
    /// Eviction sweeps run.
    sweeps: AtomicU64,
    /// Entries refused by the admission policy over the engine's lifetime.
    admission_rejections: AtomicU64,
    /// Serialises sweeps: one thread walks the caches while the others keep
    /// querying (they block here only if they themselves went over budget).
    sweeper: Mutex<()>,
}

impl CacheBudget {
    /// A ledger with the given evictable-byte ceiling (`None` = unbounded)
    /// and no per-entry admission ceiling.
    pub fn new(limit: Option<u64>) -> CacheBudget {
        CacheBudget::with_admission(limit, None)
    }

    /// A ledger with both knobs: the evictable-byte ceiling and the
    /// per-entry admission ceiling (each `None` = unbounded).
    pub fn with_admission(limit: Option<u64>, max_entry_bytes: Option<u64>) -> CacheBudget {
        CacheBudget {
            limit,
            max_entry_bytes,
            clock: AtomicU64::new(0),
            resident: std::array::from_fn(|_| AtomicU64::new(0)),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            sweeper: Mutex::new(()),
        }
    }

    /// The configured ceiling, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// The configured per-entry admission ceiling, if any.
    pub fn max_entry_bytes(&self) -> Option<u64> {
        self.max_entry_bytes
    }

    /// Whether an entry weighing `bytes` may be cached at all. `false`
    /// (counted in [`CacheBudget::admission_rejections`]) means the caller
    /// must still *use* the computed value — only the caching is refused.
    pub fn admits(&self, bytes: u64) -> bool {
        match self.max_entry_bytes {
            Some(ceiling) if bytes > ceiling => {
                self.admission_rejections.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => true,
        }
    }

    /// Advance the LRU clock and return the new stamp (always ≥ 1, so a
    /// zero cutoff means "evict nothing").
    pub fn touch(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Account `bytes` of freshly cached data under `kind`.
    pub fn charge(&self, kind: CacheKind, bytes: u64) {
        self.resident[kind.index()].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Return `bytes` of removed cached data under `kind` to the ledger.
    pub fn credit(&self, kind: CacheKind, bytes: u64) {
        // Saturating: a racing snapshot may observe a transient imbalance,
        // but the ledger itself only moves by paired charge/credit amounts.
        let _ =
            self.resident[kind.index()].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Resident accounted bytes of one category.
    pub fn resident(&self, kind: CacheKind) -> u64 {
        self.resident[kind.index()].load(Ordering::Relaxed)
    }

    /// Resident accounted bytes across every evictable category — the
    /// number the budget bounds.
    pub fn evictable(&self) -> u64 {
        EVICTABLE.iter().map(|&k| self.resident(k)).sum()
    }

    /// Whether the evictable total currently exceeds the limit.
    pub fn over_budget(&self) -> bool {
        match self.limit {
            Some(limit) => self.evictable() > limit,
            None => false,
        }
    }

    /// The sweep serialisation lock (the engine's eviction path holds it for
    /// the duration of one sweep).
    pub fn sweeper(&self) -> &Mutex<()> {
        &self.sweeper
    }

    /// Record the outcome of one sweep: `entries` cache records freed,
    /// `bytes` accounted bytes returned. (The per-kind `credit`s happen at
    /// the removal sites; this only feeds the telemetry counters.)
    pub fn record_sweep(&self, entries: u64, bytes: u64) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(entries, Ordering::Relaxed);
        self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Accounted bytes freed by eviction so far.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Sweeps run so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Entries refused by the admission policy so far.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_charges_and_credits() {
        let budget = CacheBudget::new(Some(100));
        budget.charge(CacheKind::Pools, 60);
        budget.charge(CacheKind::Validate, 50);
        budget.charge(CacheKind::Pinned, 1_000);
        assert_eq!(budget.evictable(), 110, "pinned bytes are not evictable");
        assert!(budget.over_budget());
        budget.credit(CacheKind::Validate, 50);
        assert_eq!(budget.evictable(), 60);
        assert!(!budget.over_budget());
        assert_eq!(budget.resident(CacheKind::Pinned), 1_000);
        budget.charge(CacheKind::Bags, 30);
        assert_eq!(budget.evictable(), 90, "bag-cache bytes are evictable");
    }

    #[test]
    fn unbounded_ledger_is_never_over_budget() {
        let budget = CacheBudget::new(None);
        budget.charge(CacheKind::Pairs, u64::MAX / 2);
        assert!(!budget.over_budget());
        assert_eq!(budget.limit(), None);
    }

    #[test]
    fn clock_stamps_are_strictly_increasing_and_nonzero() {
        let budget = CacheBudget::new(Some(1));
        let a = budget.touch();
        let b = budget.touch();
        assert!(a >= 1);
        assert!(b > a);
    }

    #[test]
    fn admission_refuses_only_oversized_entries() {
        let budget = CacheBudget::with_admission(Some(1_000), Some(64));
        assert!(budget.admits(64), "at the ceiling is still admitted");
        assert!(!budget.admits(65));
        assert!(budget.admits(1));
        assert_eq!(budget.admission_rejections(), 1);
        assert_eq!(budget.max_entry_bytes(), Some(64));
    }

    #[test]
    fn default_admission_is_unbounded() {
        let budget = CacheBudget::new(Some(8));
        assert!(budget.admits(u64::MAX));
        assert_eq!(budget.admission_rejections(), 0);
        assert_eq!(budget.max_entry_bytes(), None);
    }

    #[test]
    fn credits_saturate_instead_of_wrapping() {
        let budget = CacheBudget::new(Some(10));
        budget.charge(CacheKind::Pools, 5);
        budget.credit(CacheKind::Pools, 50);
        assert_eq!(budget.resident(CacheKind::Pools), 0);
    }
}
