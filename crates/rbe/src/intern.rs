//! Concurrent, append-only symbol interning.
//!
//! [`SymbolTable`] maps symbols of an arbitrary `Eq + Hash` alphabet to dense
//! `u32` [`SymbolId`]s. Interning is read-optimised: lookups take a shared
//! lock, and only the first sighting of a symbol takes the write lock. Ids are
//! stable for the lifetime of the table and never reused, so they can serve as
//! compact memo keys shared across many consumers of the same alphabet — e.g.
//! a containment session interning the RBE₀ atoms of every registered schema
//! once instead of once per schema.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Dense identifier of an interned symbol. Ids are assigned in first-seen
/// order starting at `0` and are unique within their [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The id as a dense index into `0..table.len()`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

#[derive(Debug)]
struct TableInner<S> {
    ids: HashMap<Arc<S>, u32>,
    symbols: Vec<Arc<S>>,
}

/// A thread-safe interner from symbols to dense [`SymbolId`]s.
///
/// Symbols are stored once behind an `Arc`; both the id map and the reverse
/// table share the same allocation. The table only grows — there is no
/// removal — which is what makes handing out raw `u32` keys sound.
#[derive(Debug)]
pub struct SymbolTable<S> {
    inner: RwLock<TableInner<S>>,
    /// Accounted heap bytes, maintained on every first-sighting insert so
    /// readers ([`SymbolTable::approx_heap_bytes`]) never take the lock.
    heap_bytes: AtomicU64,
}

impl<S> Default for SymbolTable<S> {
    fn default() -> Self {
        SymbolTable {
            inner: RwLock::new(TableInner {
                ids: HashMap::new(),
                symbols: Vec::new(),
            }),
            heap_bytes: AtomicU64::new(0),
        }
    }
}

/// Accounted bytes per interned symbol: the `Arc` allocation (payload plus
/// the two reference counts), the map key and vector slot handles, and an
/// amortised hash-bucket allowance. An estimate in the sense of the engine's
/// cache ledger — consistent and conservative, not allocator ground truth.
fn symbol_entry_bytes<S>() -> u64 {
    use std::mem::size_of;
    (size_of::<S>() + 16 + 2 * size_of::<Arc<S>>() + 48) as u64
}

impl<S: Eq + Hash> SymbolTable<S> {
    /// Create an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Look up the id of `symbol` without interning it.
    pub fn get(&self, symbol: &S) -> Option<SymbolId> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        inner.ids.get(symbol).copied().map(SymbolId)
    }

    /// Intern `symbol`, returning its stable id. The symbol is cloned only on
    /// first sighting.
    pub fn intern(&self, symbol: &S) -> SymbolId
    where
        S: Clone,
    {
        if let Some(id) = self.get(symbol) {
            return id;
        }
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = inner.ids.get(symbol) {
            return SymbolId(id);
        }
        let id = u32::try_from(inner.symbols.len()).expect("symbol table overflow");
        let stored = Arc::new(symbol.clone());
        inner.symbols.push(Arc::clone(&stored));
        inner.ids.insert(stored, id);
        self.heap_bytes
            .fetch_add(symbol_entry_bytes::<S>(), Ordering::Relaxed);
        SymbolId(id)
    }

    /// Approximate heap footprint of the table in bytes — a per-entry
    /// estimate (symbol allocation, handles, bucket allowance) accumulated
    /// at interning time, so reading it is one atomic load. Feeds the
    /// session-cache accounting of consumers like the containment engine;
    /// the table itself never evicts (ids are handed out and never reused).
    pub fn approx_heap_bytes(&self) -> usize {
        self.heap_bytes.load(Ordering::Relaxed) as usize
    }

    /// Resolve an id back to its symbol. Panics if `id` did not come from this
    /// table.
    pub fn resolve(&self, id: SymbolId) -> Arc<S> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&inner.symbols[id.index()])
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .symbols
            .len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let table: SymbolTable<String> = SymbolTable::new();
        let a = table.intern(&"a".to_string());
        let b = table.intern(&"b".to_string());
        let a2 = table.intern(&"a".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.len(), 2);
        assert_eq!(*table.resolve(b), "b");
    }

    #[test]
    fn heap_accounting_grows_per_distinct_symbol_only() {
        let table: SymbolTable<String> = SymbolTable::new();
        assert_eq!(table.approx_heap_bytes(), 0);
        table.intern(&"a".to_string());
        let one = table.approx_heap_bytes();
        assert!(one > 0);
        table.intern(&"a".to_string());
        assert_eq!(table.approx_heap_bytes(), one, "re-interning is free");
        table.intern(&"b".to_string());
        assert_eq!(table.approx_heap_bytes(), 2 * one, "per-entry estimate");
    }

    #[test]
    fn get_does_not_intern() {
        let table: SymbolTable<u64> = SymbolTable::new();
        assert_eq!(table.get(&7), None);
        let id = table.intern(&7);
        assert_eq!(table.get(&7), Some(id));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let table: Arc<SymbolTable<u32>> = Arc::new(SymbolTable::new());
        let ids: Vec<Vec<SymbolId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let table = Arc::clone(&table);
                    scope.spawn(move || (0..64u32).map(|s| table.intern(&s)).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for worker in &ids[1..] {
            assert_eq!(worker, &ids[0]);
        }
        assert_eq!(table.len(), 64);
    }
}
