//! Membership tests for regular bag expressions.
//!
//! Three procedures are provided, matching the complexity landscape of the
//! paper:
//!
//! * [`rbe0_member`] — linear time for the RBE₀ normal form (per-symbol
//!   interval sums).
//! * [`sorbe_member`] — polynomial time for single-occurrence expressions,
//!   via an interval-abstraction of the admissible iteration counts.
//! * [`naive_member`] — an exponential search over bag decompositions that
//!   works for arbitrary expressions; it serves as a correctness oracle in
//!   tests and as a baseline in benchmarks. Production-strength membership
//!   for arbitrary expressions goes through the Presburger translation in the
//!   `shapex-presburger` crate (general RBE membership is NP-complete,
//!   Kopczynski & To 2010).

use std::collections::BTreeSet;

use crate::bag::Bag;
use crate::expr::{Rbe, Rbe0};
use crate::interval::{Interval, IntervalSet};

/// Linear-time membership for the RBE₀ normal form.
///
/// A bag `w` belongs to `L(a₁^{I₁} || … || aₙ^{Iₙ})` iff for every symbol `a`
/// the count `w(a)` lies in the `⊕`-sum of the intervals of the atoms carrying
/// `a`, and `w` uses no symbol outside the expression's alphabet.
pub fn rbe0_member<S: Ord + Clone>(bag: &Bag<S>, expr: &Rbe0<S>) -> bool {
    // Every bag symbol must be covered by an atom.
    for (s, c) in bag.iter() {
        if !expr.allowed(s).contains(c) {
            return false;
        }
    }
    // Symbols mentioned only by the expression must tolerate count zero.
    for s in expr.alphabet() {
        if bag.count(&s) == 0 && !expr.allowed(&s).contains(0) {
            return false;
        }
    }
    true
}

/// Error returned by [`sorbe_member`] when the expression is not
/// single-occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSingleOccurrence;

impl std::fmt::Display for NotSingleOccurrence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expression is not single-occurrence")
    }
}

impl std::error::Error for NotSingleOccurrence {}

/// Polynomial membership for single-occurrence regular bag expressions
/// (SORBE).
///
/// Because every symbol occurs at most once, sibling sub-expressions have
/// pairwise disjoint alphabets and the split of the input bag is forced; the
/// set of admissible iteration counts of each sub-expression is then a small
/// union of intervals computed bottom-up.
pub fn sorbe_member<S: Ord + Clone>(
    bag: &Bag<S>,
    expr: &Rbe<S>,
) -> Result<bool, NotSingleOccurrence> {
    if !expr.is_single_occurrence() {
        return Err(NotSingleOccurrence);
    }
    let alphabet = expr.alphabet();
    if bag.symbols().any(|s| !alphabet.contains(s)) {
        return Ok(false);
    }
    Ok(match_counts(expr, bag).contains(1))
}

/// The set of `n ≥ 0` such that `bag ∈ L(expr)ⁿ`, assuming sibling
/// sub-expressions have disjoint alphabets and `support(bag) ⊆ alphabet(expr)`.
fn match_counts<S: Ord + Clone>(expr: &Rbe<S>, bag: &Bag<S>) -> IntervalSet {
    match expr {
        Rbe::Epsilon => {
            if bag.is_empty() {
                IntervalSet::all()
            } else {
                IntervalSet::empty()
            }
        }
        Rbe::Symbol(s) => {
            // Any foreign symbol rules the bag out entirely.
            if bag.symbols().any(|x| x != s) {
                IntervalSet::empty()
            } else {
                IntervalSet::from(Interval::exactly(bag.count(s)))
            }
        }
        Rbe::Concat(parts) => {
            // (L₁ ⊎ L₂)ⁿ = L₁ⁿ ⊎ L₂ⁿ; the alphabet split is forced, so a count
            // works iff it works for every factor.
            let mut covered: BTreeSet<S> = BTreeSet::new();
            let mut result = IntervalSet::all();
            for part in parts {
                let alpha = part.alphabet();
                covered.extend(alpha.iter().cloned());
                let restricted = bag.restrict(|s| alpha.contains(s));
                result = result.intersect(&match_counts(part, &restricted));
                if result.is_empty() {
                    return result;
                }
            }
            // Symbols of the bag not covered by any factor kill the match.
            if bag.symbols().any(|s| !covered.contains(s)) {
                return IntervalSet::empty();
            }
            result
        }
        Rbe::Disj(parts) => {
            // (L₁ ∪ L₂)ⁿ = ⋃_{n₁+n₂=n} L₁^{n₁} ⊎ L₂^{n₂}; with forced splits
            // the admissible counts are the point-wise sums.
            let mut covered: BTreeSet<S> = BTreeSet::new();
            let mut result = IntervalSet::from(Interval::ZERO);
            for part in parts {
                let alpha = part.alphabet();
                covered.extend(alpha.iter().cloned());
                let restricted = bag.restrict(|s| alpha.contains(s));
                result = result.add(&match_counts(part, &restricted));
                if result.is_empty() {
                    return result;
                }
            }
            if bag.symbols().any(|s| !covered.contains(s)) {
                return IntervalSet::empty();
            }
            result
        }
        Rbe::Repeat(inner, interval) => {
            let inner_counts = match_counts(inner, bag);
            repeat_counts(&inner_counts, *interval)
        }
    }
}

/// Given the set `J` of counts `m` with `bag ∈ L(E)^m`, compute the set of
/// counts `n` with `bag ∈ L(E^I)ⁿ`, i.e. the `n` such that the `n`-fold sum
/// `n·I` meets `J`.
fn repeat_counts(inner: &IntervalSet, interval: Interval) -> IntervalSet {
    let mut out = IntervalSet::empty();
    if inner.contains(0) {
        // n = 0 requires the bag to be producible by zero copies of E^I,
        // i.e. the bag is empty, i.e. 0 ∈ J.
        out.insert(Interval::exactly(0));
    }
    let a = interval.lo();
    let b = interval.hi();
    for j in inner.intervals() {
        let j1 = j.lo();
        let j2 = j.hi();
        // Lower bound on n (n ≥ 1): need n·b ≥ j1.
        let lo = match b {
            None => 1,
            Some(0) => {
                if j1 == 0 {
                    1
                } else {
                    continue; // n·[a;0] = [0;0] can never reach j1 > 0
                }
            }
            Some(bv) => 1u64.max(j1.div_ceil(bv)),
        };
        // Upper bound on n: need n·a ≤ j2.
        let hi = match (a, j2) {
            (0, _) => None,
            (_, None) => None,
            (av, Some(j2v)) => Some(j2v / av),
        };
        match hi {
            Some(h) if h < lo => {}
            Some(h) => out.insert(Interval::bounded(lo, h)),
            None => out.insert(Interval::at_least(lo)),
        }
    }
    out
}

/// Exhaustive membership oracle for arbitrary regular bag expressions.
///
/// Exponential in the size of the bag; intended for cross-checking the
/// polynomial procedures and the Presburger-based procedure on small inputs.
pub fn naive_member<S: Ord + Clone>(bag: &Bag<S>, expr: &Rbe<S>) -> bool {
    match expr {
        Rbe::Epsilon => bag.is_empty(),
        Rbe::Symbol(s) => bag.total() == 1 && bag.count(s) == 1,
        Rbe::Disj(parts) => parts.iter().any(|p| naive_member(bag, p)),
        Rbe::Concat(parts) => naive_member_concat(bag, parts),
        Rbe::Repeat(inner, interval) => {
            let total = bag.total();
            let nil_in_inner = naive_member(&Bag::new(), inner);
            if bag.is_empty() {
                // Zero copies, or any admissible positive number of ε-copies.
                return interval.contains(0)
                    || (nil_in_inner && positive_member(*interval, total.max(1)));
            }
            // Find some m ≤ total with bag ∈ L(inner)^m; then any n ≥ m is
            // reachable by padding with ε-copies when ε ∈ L(inner).
            for m in 1..=total {
                if member_power(bag, inner, m) {
                    if interval.contains(m) {
                        return true;
                    }
                    if nil_in_inner && interval_has_at_least(*interval, m) {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// Whether the interval contains some value `>= 1` and `<= cap` … used to
/// decide if ε-padding can reach an admissible count.
fn positive_member(interval: Interval, _cap: u64) -> bool {
    match interval.hi() {
        Some(m) => m >= 1,
        None => true,
    }
}

/// Whether the interval contains some value `>= m`.
fn interval_has_at_least(interval: Interval, m: u64) -> bool {
    match interval.hi() {
        Some(hi) => hi >= m,
        None => true,
    }
}

fn naive_member_concat<S: Ord + Clone>(bag: &Bag<S>, parts: &[Rbe<S>]) -> bool {
    match parts {
        [] => bag.is_empty(),
        [only] => naive_member(bag, only),
        [first, rest @ ..] => {
            for sub in sub_bags(bag) {
                if naive_member(&sub, first) {
                    let remainder = bag_minus(bag, &sub);
                    if naive_member_concat(&remainder, rest) {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// `bag ∈ L(expr)^power` by exhaustive decomposition.
fn member_power<S: Ord + Clone>(bag: &Bag<S>, expr: &Rbe<S>, power: u64) -> bool {
    if power == 0 {
        return bag.is_empty();
    }
    if power == 1 {
        return naive_member(bag, expr);
    }
    for sub in sub_bags(bag) {
        if naive_member(&sub, expr) && member_power(&bag_minus(bag, &sub), expr, power - 1) {
            return true;
        }
    }
    false
}

/// All sub-bags of `bag` (including the empty bag and `bag` itself).
fn sub_bags<S: Ord + Clone>(bag: &Bag<S>) -> Vec<Bag<S>> {
    let entries: Vec<(S, u64)> = bag.iter().map(|(s, c)| (s.clone(), c)).collect();
    let mut out = vec![Bag::new()];
    for (symbol, count) in entries {
        let mut next = Vec::with_capacity(out.len() * (count as usize + 1));
        for existing in &out {
            for take in 0..=count {
                let mut b = existing.clone();
                b.add(symbol.clone(), take);
                next.push(b);
            }
        }
        out = next;
    }
    out
}

/// Point-wise difference `bag - sub`, assuming `sub ⊑ bag`.
fn bag_minus<S: Ord + Clone>(bag: &Bag<S>, sub: &Bag<S>) -> Bag<S> {
    let mut out = Bag::new();
    for (s, c) in bag.iter() {
        let left = c - sub.count(s);
        out.add(s.clone(), left);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(symbols: &[&'static str]) -> Bag<&'static str> {
        Bag::from_symbols(symbols.iter().copied())
    }

    #[test]
    fn rbe0_membership_examples() {
        // a || b? || c*
        let e = Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::opt(Rbe::symbol("b")),
            Rbe::star(Rbe::symbol("c")),
        ]);
        let r = e.to_rbe0().unwrap();
        assert!(rbe0_member(&bag(&["a"]), &r));
        assert!(rbe0_member(&bag(&["a", "b"]), &r));
        assert!(rbe0_member(&bag(&["a", "c", "c", "c"]), &r));
        assert!(!rbe0_member(&bag(&["b"]), &r), "missing mandatory a");
        assert!(!rbe0_member(&bag(&["a", "b", "b"]), &r), "too many b");
        assert!(!rbe0_member(&bag(&["a", "d"]), &r), "foreign symbol");
    }

    #[test]
    fn rbe0_membership_with_repeated_symbol() {
        // a || a+ || b*  ⇒ a must occur at least twice.
        let e = Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::plus(Rbe::symbol("a")),
            Rbe::star(Rbe::symbol("b")),
        ]);
        let r = e.to_rbe0().unwrap();
        assert!(!rbe0_member(&bag(&["a"]), &r));
        assert!(rbe0_member(&bag(&["a", "a"]), &r));
        assert!(rbe0_member(&bag(&["a", "a", "a", "b"]), &r));
    }

    #[test]
    fn sorbe_matches_naive_on_simple_expressions() {
        let e = Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::opt(Rbe::symbol("b")),
            Rbe::star(Rbe::symbol("c")),
        ]);
        for candidate in [
            bag(&[]),
            bag(&["a"]),
            bag(&["a", "b"]),
            bag(&["a", "b", "b"]),
            bag(&["a", "c", "c"]),
            bag(&["b", "c"]),
        ] {
            assert_eq!(
                sorbe_member(&candidate, &e).unwrap(),
                naive_member(&candidate, &e),
                "disagreement on {candidate}"
            );
        }
    }

    #[test]
    fn sorbe_handles_disjunction_and_nesting() {
        // (a | (b || c))^[2;3]  — single occurrence, with disjunction.
        let e = Rbe::repeat(
            Rbe::disj(vec![
                Rbe::symbol("a"),
                Rbe::concat(vec![Rbe::symbol("b"), Rbe::symbol("c")]),
            ]),
            Interval::bounded(2, 3),
        );
        // Two copies of `a`.
        assert!(sorbe_member(&bag(&["a", "a"]), &e).unwrap());
        // One `a`, one `b||c`.
        assert!(sorbe_member(&bag(&["a", "b", "c"]), &e).unwrap());
        // A single copy is too few.
        assert!(!sorbe_member(&bag(&["a"]), &e).unwrap());
        // Four copies is too many.
        assert!(!sorbe_member(&bag(&["a", "a", "a", "a"]), &e).unwrap());
        // b without c cannot be completed.
        assert!(!sorbe_member(&bag(&["a", "b"]), &e).unwrap());
        // Cross-check against the oracle.
        for candidate in [
            bag(&[]),
            bag(&["a", "a"]),
            bag(&["a", "a", "a"]),
            bag(&["a", "b", "c"]),
            bag(&["b", "c", "b", "c"]),
            bag(&["a", "b"]),
        ] {
            assert_eq!(
                sorbe_member(&candidate, &e).unwrap(),
                naive_member(&candidate, &e),
                "disagreement on {candidate}"
            );
        }
    }

    #[test]
    fn sorbe_rejects_multi_occurrence() {
        let e = Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("a")]);
        assert_eq!(
            sorbe_member(&bag(&["a", "a"]), &e),
            Err(NotSingleOccurrence)
        );
    }

    #[test]
    fn naive_member_repeat_edge_cases() {
        // (a?)^[2;2]: the empty bag is obtained with two ε-copies.
        let e = Rbe::repeat(Rbe::opt(Rbe::symbol("a")), Interval::exactly(2));
        assert!(naive_member(&bag(&[]), &e));
        assert!(naive_member(&bag(&["a"]), &e));
        assert!(naive_member(&bag(&["a", "a"]), &e));
        assert!(!naive_member(&bag(&["a", "a", "a"]), &e));

        // a^[2;2] requires exactly two a's.
        let exact = Rbe::repeat(Rbe::symbol("a"), Interval::exactly(2));
        assert!(!naive_member(&bag(&[]), &exact));
        assert!(!naive_member(&bag(&["a"]), &exact));
        assert!(naive_member(&bag(&["a", "a"]), &exact));
    }

    #[test]
    fn naive_member_concat_splits() {
        // (a | b) || (a | c): {a,a}, {a,c}, {b,a}, {b,c} are members.
        let e = Rbe::concat(vec![
            Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]),
            Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("c")]),
        ]);
        assert!(naive_member(&bag(&["a", "a"]), &e));
        assert!(naive_member(&bag(&["a", "c"]), &e));
        assert!(naive_member(&bag(&["b", "a"]), &e));
        assert!(naive_member(&bag(&["b", "c"]), &e));
        assert!(!naive_member(&bag(&["b", "b"]), &e));
        assert!(!naive_member(&bag(&["a"]), &e));
    }
}
