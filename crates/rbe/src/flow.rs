//! Interval-constrained assignment ("flow routing") problems.
//!
//! Both the witness check of an embedding (Definition 3.1, condition 3) and
//! the satisfaction of an RBE₀ type definition by a node's outbound
//! neighbourhood reduce to the same question: given *sources* and *sinks*
//! carrying occurrence intervals and a compatibility relation, is there a
//! total assignment `λ` of sources to compatible sinks such that for every
//! sink `u` the interval sum `⊕ { interval(v) | λ(v) = u }` is included in
//! `interval(u)`?
//!
//! * [`basic_assignment`] solves the problem in polynomial time when all
//!   intervals are *basic* (`1`, `?`, `+`, `*`), the tractable case of
//!   Theorem 3.4. The paper gives a direct augmenting-path algorithm
//!   (push-forth / pull-back graphs); this implementation reduces the problem
//!   to an integral feasible-circulation instance with lower bounds, which is
//!   solved by a small max-flow routine — the same polynomial complexity
//!   class with an easier correctness argument.
//! * [`general_assignment`] solves the problem for arbitrary intervals by
//!   backtracking search; the problem is NP-complete in that generality
//!   (Theorem 3.5).
//!
//! Hot callers (the simulation engine of `shapex-core` re-checks witnesses
//! for thousands of node pairs) should use a [`FlowScratch`]: it owns every
//! buffer both solvers need, so repeated calls perform no allocation once the
//! buffers have grown to the workload's high-water mark. The two free
//! functions above are thin wrappers that build a fresh scratch per call.

use crate::interval::Interval;

/// A sufficient statistic of the interval sum routed into a sink.
#[derive(Debug, Clone, Copy, Default)]
struct SinkLoad {
    lo_sum: u64,
    finite_hi_sum: u64,
    unbounded_sources: u32,
}

impl SinkLoad {
    fn add(&mut self, interval: Interval) {
        self.lo_sum += interval.lo();
        match interval.hi() {
            Some(h) => self.finite_hi_sum += h,
            None => self.unbounded_sources += 1,
        }
    }

    fn remove(&mut self, interval: Interval) {
        self.lo_sum -= interval.lo();
        match interval.hi() {
            Some(h) => self.finite_hi_sum -= h,
            None => self.unbounded_sources -= 1,
        }
    }

    /// Whether the load can still fit under the sink's upper bound (more
    /// sources may be added later, which only increases the sums).
    fn fits_upper(&self, sink: Interval) -> bool {
        match sink.hi() {
            None => true,
            Some(cap) => self.unbounded_sources == 0 && self.finite_hi_sum <= cap,
        }
    }

    /// Whether the final load satisfies both bounds of the sink's interval.
    fn fits(&self, sink: Interval) -> bool {
        self.fits_upper(sink) && self.lo_sum >= sink.lo()
    }
}

/// Reusable buffers for the interval-assignment solvers.
///
/// Fill [`FlowScratch::sources`] and [`FlowScratch::sinks`] (after
/// [`FlowScratch::clear`]), then call [`FlowScratch::solve`]; on success the
/// routing is available through [`FlowScratch::assignment`]. Every internal
/// buffer — the circulation network of the basic solver, the compatibility
/// lists and load tables of the backtracking solver — is retained between
/// calls, so a long-lived scratch makes repeated witness checks
/// allocation-free.
#[derive(Debug, Default)]
pub struct FlowScratch {
    /// Source intervals; filled by the caller between `clear` and `solve`.
    pub sources: Vec<Interval>,
    /// Sink intervals; filled by the caller between `clear` and `solve`.
    pub sinks: Vec<Interval>,
    assignment: Vec<usize>,
    // Backtracking-solver buffers.
    compat: Vec<Vec<usize>>,
    potential_lo: Vec<u64>,
    loads: Vec<SinkLoad>,
    order: Vec<usize>,
    // Basic-solver buffers.
    net: LowerBoundFlow,
    source_edge_ids: Vec<Vec<(usize, usize)>>,
}

impl FlowScratch {
    /// A scratch with empty buffers.
    pub fn new() -> FlowScratch {
        FlowScratch::default()
    }

    /// Empty `sources` and `sinks` for the next instance (capacity is kept).
    pub fn clear(&mut self) {
        self.sources.clear();
        self.sinks.clear();
        // Drop the previous routing so `assignment()` can never hand out a
        // prior instance's entries re-truncated to the new source count.
        self.assignment.clear();
    }

    /// The assignment found by the last successful [`FlowScratch::solve`]:
    /// `assignment()[v]` is the sink source `v` is routed to. Empty before a
    /// successful solve of the current instance.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment[..self.sources.len().min(self.assignment.len())]
    }

    /// Decide whether a valid routing of `sources` into `sinks` exists,
    /// dispatching to the polynomial solver when every interval is basic and
    /// to the backtracking solver otherwise.
    pub fn solve(&mut self, compatible: impl Fn(usize, usize) -> bool) -> bool {
        let all_basic = self
            .sources
            .iter()
            .chain(self.sinks.iter())
            .all(|i| i.is_basic());
        if all_basic {
            self.solve_basic(compatible)
        } else {
            self.solve_general(compatible)
        }
    }

    /// The polynomial feasible-circulation solver (Theorem 3.4).
    ///
    /// # Panics
    /// Panics if any interval is not basic (`1`, `?`, `+`, `*`); use
    /// [`FlowScratch::solve`] or [`FlowScratch::solve_general`] for arbitrary
    /// intervals.
    pub fn solve_basic(&mut self, compatible: impl Fn(usize, usize) -> bool) -> bool {
        for i in self.sources.iter().chain(self.sinks.iter()) {
            assert!(
                i.is_basic(),
                "basic_assignment requires basic intervals, got {i}"
            );
        }
        self.assignment.clear();
        // Trivial case: no sources. Every sink must accept the empty sum
        // [0;0].
        if self.sources.is_empty() {
            return self.sinks.iter().all(|u| u.lo() == 0);
        }
        if self.sinks.is_empty() {
            return false; // a source cannot be routed anywhere
        }

        // Build a circulation-with-lower-bounds network:
        //   s → v                 [1;1]   every source is routed exactly once
        //   v → u_strong          [0;1]   if compatible, lo(v) = 1, hi-compat.
        //   v → u_weak            [0;1]   if compatible, lo(v) = 0, hi-compat.
        //   u_strong → u          [lo(u); n]
        //   u_weak   → u          [0; n]
        //   u → t                 [0; hi(u) = 1 ? 1 : n]
        //   t → s                 [0; n]  (closes the circulation)
        // where hi-compatible forbids routing an unbounded source into a sink
        // with finite upper bound.
        let n_sources = self.sources.len();
        let n_sinks = self.sinks.len();
        let big = n_sources as i64; // capacity standing in for ∞
        let node_s = 0;
        let node_t = 1;
        let source_node = |v: usize| 2 + v;
        let strong_node = |u: usize| 2 + n_sources + u;
        let weak_node = |u: usize| 2 + n_sources + n_sinks + u;
        let sink_node = |u: usize| 2 + n_sources + 2 * n_sinks + u;
        let total_nodes = 2 + n_sources + 3 * n_sinks;

        self.net.reset(total_nodes);
        if self.source_edge_ids.len() < n_sources {
            self.source_edge_ids.resize_with(n_sources, Vec::new);
        }
        for edges in self.source_edge_ids.iter_mut().take(n_sources) {
            edges.clear();
        }
        for v in 0..n_sources {
            self.net.add_edge(node_s, source_node(v), 1, 1);
        }
        for (u, sink) in self.sinks.iter().enumerate() {
            self.net
                .add_edge(strong_node(u), sink_node(u), sink.lo() as i64, big);
            self.net.add_edge(weak_node(u), sink_node(u), 0, big);
            let cap = match sink.hi() {
                Some(h) => h as i64,
                None => big,
            };
            self.net.add_edge(sink_node(u), node_t, 0, cap);
        }
        for v in 0..n_sources {
            for (u, sink) in self.sinks.iter().enumerate() {
                if !compatible(v, u) {
                    continue;
                }
                // An unbounded source cannot feed a finitely bounded sink.
                if self.sources[v].hi().is_none() && sink.hi().is_some() {
                    continue;
                }
                let mid = if self.sources[v].lo() >= 1 {
                    strong_node(u)
                } else {
                    weak_node(u)
                };
                let edge = self.net.add_edge(source_node(v), mid, 0, 1);
                self.source_edge_ids[v].push((u, edge));
            }
        }
        self.net.add_edge(node_t, node_s, 0, big);

        if !self.net.feasible() {
            return false;
        }
        self.assignment.resize(n_sources, usize::MAX);
        for v in 0..n_sources {
            for &(u, edge) in &self.source_edge_ids[v] {
                if self.net.flow_with_lower(edge) > 0 {
                    self.assignment[v] = u;
                }
            }
            if self.assignment[v] == usize::MAX {
                // Should not happen for a feasible circulation; treat as
                // failure.
                self.assignment.clear();
                return false;
            }
        }
        debug_assert!(verify_assignment(
            &self.sources,
            &self.sinks,
            &self.assignment
        ));
        true
    }

    /// The backtracking solver for arbitrary intervals (Theorem 3.5).
    ///
    /// Sound and complete, but exponential in the worst case (the problem is
    /// NP-complete). Two prunings keep it practical on the workloads in this
    /// workspace: upper bounds are checked incrementally, and a sink whose
    /// lower bound can no longer be reached by the still-unassigned
    /// compatible sources cuts the branch immediately.
    pub fn solve_general(&mut self, compatible: impl Fn(usize, usize) -> bool) -> bool {
        let n_sources = self.sources.len();
        let n_sinks = self.sinks.len();
        self.assignment.clear();
        if n_sources == 0 {
            return self.sinks.iter().all(|u| u.lo() == 0);
        }
        if n_sinks == 0 {
            return false;
        }
        // Precompute the compatibility lists.
        if self.compat.len() < n_sources {
            self.compat.resize_with(n_sources, Vec::new);
        }
        for (v, sinks_of_v) in self.compat.iter_mut().take(n_sources).enumerate() {
            sinks_of_v.clear();
            sinks_of_v.extend((0..n_sinks).filter(|&u| compatible(v, u)));
        }
        // Potential lower-bound mass still available to each sink from
        // unassigned sources; once
        // `loads[u].lo_sum + potential_lo[u] < sinks[u].lo()` a branch is
        // dead.
        self.potential_lo.clear();
        self.potential_lo.resize(n_sinks, 0);
        for (v, sinks_of_v) in self.compat.iter().take(n_sources).enumerate() {
            for &u in sinks_of_v {
                self.potential_lo[u] += self.sources[v].lo();
            }
        }
        if self
            .potential_lo
            .iter()
            .zip(self.sinks.iter())
            .any(|(&potential, sink)| potential < sink.lo())
        {
            return false;
        }

        self.loads.clear();
        self.loads.resize(n_sinks, SinkLoad::default());
        self.assignment.resize(n_sources, usize::MAX);
        // Order sources by how few sinks they are compatible with (fail
        // fast).
        self.order.clear();
        self.order.extend(0..n_sources);
        let compat = &self.compat;
        self.order.sort_by_key(|&v| compat[v].len());

        let found = general_search(
            &self.sources,
            &self.sinks,
            &self.compat,
            &self.order,
            &mut self.loads,
            &mut self.potential_lo,
            &mut self.assignment,
            0,
        );
        if found {
            debug_assert!(verify_assignment(
                &self.sources,
                &self.sinks,
                &self.assignment
            ));
        } else {
            self.assignment.clear();
        }
        found
    }
}

/// The recursive backtracking step of [`FlowScratch::solve_general`].
#[allow(clippy::too_many_arguments)]
fn general_search(
    sources: &[Interval],
    sinks: &[Interval],
    compat: &[Vec<usize>],
    order: &[usize],
    loads: &mut [SinkLoad],
    potential_lo: &mut [u64],
    assignment: &mut [usize],
    pos: usize,
) -> bool {
    if pos == order.len() {
        return loads
            .iter()
            .zip(sinks.iter())
            .all(|(load, sink)| load.fits(*sink));
    }
    let v = order[pos];
    let lo_v = sources[v].lo();
    // The source is no longer "available": remove its potential from every
    // compatible sink, then add it back to the chosen one.
    for &u in &compat[v] {
        potential_lo[u] -= lo_v;
    }
    for idx in 0..compat[v].len() {
        let u = compat[v][idx];
        loads[u].add(sources[v]);
        let feasible = loads[u].fits_upper(sinks[u])
            && loads
                .iter()
                .zip(potential_lo.iter())
                .zip(sinks.iter())
                .all(|((load, &potential), sink)| load.lo_sum + potential >= sink.lo());
        if feasible {
            assignment[v] = u;
            if general_search(
                sources,
                sinks,
                compat,
                order,
                loads,
                potential_lo,
                assignment,
                pos + 1,
            ) {
                return true;
            }
            assignment[v] = usize::MAX;
        }
        loads[u].remove(sources[v]);
    }
    for &u in &compat[v] {
        potential_lo[u] += lo_v;
    }
    false
}

/// Solve the assignment problem for **basic** intervals in polynomial time.
///
/// `compatible(v, u)` tells whether source `v` may be routed to sink `u`.
/// Returns the assignment (`result[v] = u`) or `None` when no valid routing
/// exists. Allocates a fresh [`FlowScratch`] per call; hot loops should hold
/// a scratch and call [`FlowScratch::solve_basic`] directly.
///
/// # Panics
/// Panics if any interval is not basic (`1`, `?`, `+`, `*`); use
/// [`general_assignment`] for arbitrary intervals.
pub fn basic_assignment(
    sources: &[Interval],
    sinks: &[Interval],
    compatible: impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    let mut scratch = FlowScratch::new();
    scratch.sources.extend_from_slice(sources);
    scratch.sinks.extend_from_slice(sinks);
    if scratch.solve_basic(compatible) {
        Some(scratch.assignment().to_vec())
    } else {
        None
    }
}

/// Solve the assignment problem for arbitrary intervals by backtracking.
///
/// Sound and complete, but exponential in the worst case (the problem is
/// NP-complete, Theorem 3.5). Allocates a fresh [`FlowScratch`] per call; hot
/// loops should hold a scratch and call [`FlowScratch::solve_general`] (or
/// the dispatching [`FlowScratch::solve`]) directly.
pub fn general_assignment(
    sources: &[Interval],
    sinks: &[Interval],
    compatible: impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    let mut scratch = FlowScratch::new();
    scratch.sources.extend_from_slice(sources);
    scratch.sinks.extend_from_slice(sinks);
    if scratch.solve_general(compatible) {
        Some(scratch.assignment().to_vec())
    } else {
        None
    }
}

/// Verify that an assignment satisfies the interval-sum condition; exposed for
/// tests and used as a debug assertion by both solvers.
pub fn verify_assignment(sources: &[Interval], sinks: &[Interval], assignment: &[usize]) -> bool {
    if assignment.len() != sources.len() {
        return false;
    }
    let mut loads = vec![SinkLoad::default(); sinks.len()];
    for (v, &u) in assignment.iter().enumerate() {
        if u >= sinks.len() {
            return false;
        }
        loads[u].add(sources[v]);
    }
    loads
        .iter()
        .zip(sinks.iter())
        .all(|(load, sink)| load.fits(*sink))
}

/// A tiny max-flow network supporting lower bounds via the standard
/// excess-node reduction; capacities are small integers. All buffers are
/// retained across [`LowerBoundFlow::reset`] calls so a long-lived instance
/// (inside a [`FlowScratch`]) does not allocate per solve.
#[derive(Debug, Default)]
struct LowerBoundFlow {
    graph: Vec<Vec<usize>>, // adjacency: indices into `edges`
    edges: Vec<FlowEdge>,
    excess: Vec<i64>,
    lower: Vec<i64>,
    /// Public nodes of the current instance (the reduction appends two
    /// super-source/sink nodes after them).
    nodes: usize,
    // max-flow working buffers
    parent_edge: Vec<Option<usize>>,
    reached: Vec<bool>,
    queue: std::collections::VecDeque<usize>,
}

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: i64,
    flow: i64,
}

impl LowerBoundFlow {
    /// Prepare for a fresh instance with `nodes` public nodes, keeping
    /// buffer capacity.
    fn reset(&mut self, nodes: usize) {
        self.nodes = nodes;
        if self.graph.len() < nodes + 2 {
            self.graph.resize_with(nodes + 2, Vec::new);
        }
        for adjacency in self.graph.iter_mut().take(nodes + 2) {
            adjacency.clear();
        }
        self.edges.clear();
        self.excess.clear();
        self.excess.resize(nodes + 2, 0);
        self.lower.clear();
    }

    /// Add an edge with a lower bound and an upper capacity; returns the index
    /// used to read the final flow back.
    fn add_edge(&mut self, from: usize, to: usize, lower: i64, upper: i64) -> usize {
        debug_assert!(lower <= upper);
        let id = self.edges.len();
        // Store the reduced capacity (upper - lower); account the lower bound
        // as an excess transfer.
        self.graph[from].push(self.edges.len());
        self.edges.push(FlowEdge {
            to,
            cap: upper - lower,
            flow: 0,
        });
        self.graph[to].push(self.edges.len());
        self.edges.push(FlowEdge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.excess[to] += lower;
        self.excess[from] -= lower;
        self.lower.push(lower);
        self.lower.push(0);
        id
    }

    /// The total flow through a public edge, including its lower bound. Only
    /// meaningful after a successful [`LowerBoundFlow::feasible`].
    fn flow_with_lower(&self, edge: usize) -> i64 {
        self.edges[edge].flow + self.lower.get(edge).copied().unwrap_or(0)
    }

    /// Check feasibility of the circulation with lower bounds.
    fn feasible(&mut self) -> bool {
        let super_s = self.nodes;
        let super_t = self.nodes + 1;
        let mut required = 0;
        for node in 0..self.nodes {
            let excess = self.excess[node];
            if excess > 0 {
                required += excess;
                self.push_plain_edge(super_s, node, excess);
            } else if excess < 0 {
                self.push_plain_edge(node, super_t, -excess);
            }
        }
        self.max_flow(super_s, super_t) >= required
    }

    fn push_plain_edge(&mut self, from: usize, to: usize, cap: i64) {
        self.graph[from].push(self.edges.len());
        self.edges.push(FlowEdge { to, cap, flow: 0 });
        self.graph[to].push(self.edges.len());
        self.edges.push(FlowEdge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.lower.push(0);
        self.lower.push(0);
    }

    /// Edmonds–Karp max-flow; the networks here have a handful of nodes.
    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let active = self.nodes + 2;
        let mut total = 0;
        loop {
            // BFS for an augmenting path.
            self.parent_edge.clear();
            self.parent_edge.resize(active, None);
            self.reached.clear();
            self.reached.resize(active, false);
            self.queue.clear();
            self.queue.push_back(s);
            self.reached[s] = true;
            while let Some(x) = self.queue.pop_front() {
                if x == t {
                    break;
                }
                for &eid in &self.graph[x] {
                    let e = &self.edges[eid];
                    if !self.reached[e.to] && e.cap - e.flow > 0 {
                        self.reached[e.to] = true;
                        self.parent_edge[e.to] = Some(eid);
                        self.queue.push_back(e.to);
                    }
                }
            }
            if !self.reached[t] {
                break;
            }
            // Find the bottleneck.
            let mut bottleneck = i64::MAX;
            let mut node = t;
            while node != s {
                let eid = self.parent_edge[node].expect("path exists");
                let e = &self.edges[eid];
                bottleneck = bottleneck.min(e.cap - e.flow);
                node = self.edges[eid ^ 1].to;
            }
            // Augment.
            let mut node = t;
            while node != s {
                let eid = self.parent_edge[node].expect("path exists");
                self.edges[eid].flow += bottleneck;
                self.edges[eid ^ 1].flow -= bottleneck;
                node = self.edges[eid ^ 1].to;
            }
            total += bottleneck;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE: Interval = Interval::ONE;
    const OPT: Interval = Interval::OPT;
    const PLUS: Interval = Interval::PLUS;
    const STAR: Interval = Interval::STAR;

    fn check_both(
        sources: &[Interval],
        sinks: &[Interval],
        compat: &[(usize, usize)],
        expect: bool,
    ) {
        let compatible = |v: usize, u: usize| compat.contains(&(v, u));
        let basic = basic_assignment(sources, sinks, compatible);
        let general = general_assignment(sources, sinks, compatible);
        assert_eq!(basic.is_some(), expect, "basic solver disagrees");
        assert_eq!(general.is_some(), expect, "general solver disagrees");
        if let Some(a) = &basic {
            assert!(verify_assignment(sources, sinks, a));
        }
        if let Some(a) = &general {
            assert!(verify_assignment(sources, sinks, a));
        }
    }

    #[test]
    fn single_source_single_sink() {
        check_both(&[ONE], &[ONE], &[(0, 0)], true);
        check_both(&[ONE], &[STAR], &[(0, 0)], true);
        check_both(&[ONE], &[OPT], &[(0, 0)], true);
        check_both(&[STAR], &[ONE], &[(0, 0)], false);
        check_both(&[STAR], &[STAR], &[(0, 0)], true);
        check_both(&[OPT], &[ONE], &[(0, 0)], false);
        check_both(&[OPT], &[PLUS], &[(0, 0)], false);
        check_both(&[PLUS], &[PLUS], &[(0, 0)], true);
        // Incompatible pair.
        check_both(&[ONE], &[ONE], &[], false);
    }

    #[test]
    fn mandatory_sink_requires_a_source() {
        // A sink with interval 1 and no compatible source fails even though
        // every source is routed elsewhere.
        check_both(&[ONE], &[ONE, ONE], &[(0, 0)], false);
        // With an OPT second sink it succeeds.
        check_both(&[ONE], &[ONE, OPT], &[(0, 0)], true);
        // Empty source set: only "optional" sinks are satisfied.
        check_both(&[], &[OPT, STAR], &[], true);
        check_both(&[], &[ONE], &[], false);
        check_both(&[], &[PLUS], &[], false);
    }

    #[test]
    fn capacity_one_sinks_take_at_most_one_source() {
        // Two mandatory sources, a single capacity-1 sink.
        check_both(&[ONE, ONE], &[ONE], &[(0, 0), (1, 0)], false);
        // A star sink absorbs both.
        check_both(&[ONE, ONE], &[STAR], &[(0, 0), (1, 0)], true);
        // Split across two sinks.
        check_both(
            &[ONE, ONE],
            &[ONE, ONE],
            &[(0, 0), (0, 1), (1, 0), (1, 1)],
            true,
        );
        // Both sources only compatible with the same capacity-1 sink.
        check_both(&[ONE, ONE], &[ONE, ONE], &[(0, 0), (1, 0)], false);
    }

    #[test]
    fn optional_sources_do_not_satisfy_mandatory_sinks() {
        // An OPT source alone cannot satisfy a PLUS or ONE sink (lower bound).
        check_both(&[OPT], &[STAR], &[(0, 0)], true);
        check_both(&[OPT, ONE], &[PLUS], &[(0, 0), (1, 0)], true);
        check_both(&[OPT, OPT], &[PLUS], &[(0, 0), (1, 0)], false);
    }

    #[test]
    fn unbounded_sources_need_unbounded_sinks() {
        check_both(&[STAR], &[OPT], &[(0, 0)], false);
        check_both(&[STAR], &[STAR], &[(0, 0)], true);
        check_both(&[PLUS], &[ONE], &[(0, 0)], false);
        check_both(&[PLUS], &[PLUS], &[(0, 0)], true);
        check_both(&[PLUS, ONE], &[PLUS, OPT], &[(0, 0), (1, 1)], true);
    }

    #[test]
    fn assignment_respects_compatibility() {
        let sources = [ONE, ONE, ONE];
        let sinks = [STAR, ONE];
        let compat = [(0, 0), (1, 0), (2, 1)];
        let compatible = |v: usize, u: usize| compat.contains(&(v, u));
        let a = basic_assignment(&sources, &sinks, compatible).unwrap();
        assert_eq!(a[2], 1);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 0);
    }

    #[test]
    fn general_assignment_handles_arbitrary_intervals() {
        // Source [2;2] must go to a sink that tolerates exactly two.
        let sources = [Interval::exactly(2), Interval::exactly(1)];
        let sinks = [Interval::bounded(2, 3), Interval::bounded(1, 1)];
        let compatible = |_v: usize, _u: usize| true;
        let a = general_assignment(&sources, &sinks, compatible).unwrap();
        assert!(verify_assignment(&sources, &sinks, &a));
        // Sum of lower bounds exceeding every sink's capacity is infeasible.
        let bad = general_assignment(
            &[Interval::exactly(3)],
            &[Interval::bounded(1, 2)],
            |_, _| true,
        );
        assert!(bad.is_none());
    }

    #[test]
    #[should_panic(expected = "requires basic intervals")]
    fn basic_assignment_rejects_arbitrary_intervals() {
        let _ = basic_assignment(&[Interval::exactly(2)], &[STAR], |_, _| true);
    }

    #[test]
    fn scratch_reuse_across_instances() {
        let mut scratch = FlowScratch::new();
        // A basic instance...
        scratch.sources.extend_from_slice(&[ONE, ONE]);
        scratch.sinks.push(STAR);
        assert!(scratch.solve(|_, _| true));
        assert_eq!(scratch.assignment(), &[0, 0]);
        // ...then a failing basic instance with fewer sources...
        scratch.clear();
        assert!(scratch.assignment().is_empty(), "clear drops the routing");
        scratch.sources.push(STAR);
        scratch.sinks.push(ONE);
        assert!(!scratch.solve(|_, _| true));
        assert!(
            scratch.assignment().is_empty(),
            "no stale routing after a failed solve"
        );
        // ...then a general instance reusing the same buffers.
        scratch.clear();
        scratch.sources.push(Interval::exactly(2));
        scratch.sinks.push(Interval::bounded(2, 3));
        assert!(scratch.solve(|_, _| true));
        assert_eq!(scratch.assignment(), &[0]);
        // A dispatch to the general solver happens for non-basic intervals
        // even when a stale basic network is cached.
        scratch.clear();
        scratch.sources.push(Interval::exactly(3));
        scratch.sinks.push(Interval::bounded(1, 2));
        assert!(!scratch.solve(|_, _| true));
    }

    #[test]
    fn randomized_cross_check() {
        // Exhaustively compare the two solvers on all small instances over
        // basic intervals with a fixed compatibility pattern, sharing one
        // scratch across every instance to exercise buffer reuse.
        let basics = [ONE, OPT, PLUS, STAR];
        let mut scratch = FlowScratch::new();
        for &s1 in &basics {
            for &s2 in &basics {
                for &u1 in &basics {
                    for &u2 in &basics {
                        for mask in 0..16u32 {
                            let compat: Vec<(usize, usize)> = (0..4)
                                .filter(|i| mask & (1 << i) != 0)
                                .map(|i| (i / 2, i % 2))
                                .collect();
                            let compatible = |v: usize, u: usize| compat.contains(&(v, u));
                            let sources = [s1, s2];
                            let sinks = [u1, u2];
                            let b = basic_assignment(&sources, &sinks, compatible).is_some();
                            let g = general_assignment(&sources, &sinks, compatible).is_some();
                            assert_eq!(
                                b, g,
                                "solvers disagree on sources {s1},{s2} sinks {u1},{u2} mask {mask:b}"
                            );
                            scratch.clear();
                            scratch.sources.extend_from_slice(&sources);
                            scratch.sinks.extend_from_slice(&sinks);
                            assert_eq!(
                                scratch.solve_general(compatible),
                                g,
                                "scratch disagrees on sources {s1},{s2} sinks {u1},{u2} mask {mask:b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
