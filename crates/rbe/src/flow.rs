//! Interval-constrained assignment ("flow routing") problems.
//!
//! Both the witness check of an embedding (Definition 3.1, condition 3) and
//! the satisfaction of an RBE₀ type definition by a node's outbound
//! neighbourhood reduce to the same question: given *sources* and *sinks*
//! carrying occurrence intervals and a compatibility relation, is there a
//! total assignment `λ` of sources to compatible sinks such that for every
//! sink `u` the interval sum `⊕ { interval(v) | λ(v) = u }` is included in
//! `interval(u)`?
//!
//! * [`basic_assignment`] solves the problem in polynomial time when all
//!   intervals are *basic* (`1`, `?`, `+`, `*`), the tractable case of
//!   Theorem 3.4. The paper gives a direct augmenting-path algorithm
//!   (push-forth / pull-back graphs); this implementation reduces the problem
//!   to an integral feasible-circulation instance with lower bounds, which is
//!   solved by a small max-flow routine — the same polynomial complexity
//!   class with an easier correctness argument.
//! * [`general_assignment`] solves the problem for arbitrary intervals by
//!   backtracking search; the problem is NP-complete in that generality
//!   (Theorem 3.5).

use crate::interval::Interval;

/// A sufficient statistic of the interval sum routed into a sink.
#[derive(Debug, Clone, Copy, Default)]
struct SinkLoad {
    lo_sum: u64,
    finite_hi_sum: u64,
    unbounded_sources: u32,
}

impl SinkLoad {
    fn add(&mut self, interval: Interval) {
        self.lo_sum += interval.lo();
        match interval.hi() {
            Some(h) => self.finite_hi_sum += h,
            None => self.unbounded_sources += 1,
        }
    }

    fn remove(&mut self, interval: Interval) {
        self.lo_sum -= interval.lo();
        match interval.hi() {
            Some(h) => self.finite_hi_sum -= h,
            None => self.unbounded_sources -= 1,
        }
    }

    /// Whether the load can still fit under the sink's upper bound (more
    /// sources may be added later, which only increases the sums).
    fn fits_upper(&self, sink: Interval) -> bool {
        match sink.hi() {
            None => true,
            Some(cap) => self.unbounded_sources == 0 && self.finite_hi_sum <= cap,
        }
    }

    /// Whether the final load satisfies both bounds of the sink's interval.
    fn fits(&self, sink: Interval) -> bool {
        self.fits_upper(sink) && self.lo_sum >= sink.lo()
    }
}

/// Solve the assignment problem for **basic** intervals in polynomial time.
///
/// `compatible(v, u)` tells whether source `v` may be routed to sink `u`.
/// Returns the assignment (`result[v] = u`) or `None` when no valid routing
/// exists.
///
/// # Panics
/// Panics if any interval is not basic (`1`, `?`, `+`, `*`); use
/// [`general_assignment`] for arbitrary intervals.
pub fn basic_assignment(
    sources: &[Interval],
    sinks: &[Interval],
    compatible: impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    for i in sources.iter().chain(sinks.iter()) {
        assert!(
            i.is_basic(),
            "basic_assignment requires basic intervals, got {i}"
        );
    }
    // Trivial case: no sources. Every sink must accept the empty sum [0;0].
    if sources.is_empty() {
        return if sinks.iter().all(|u| u.lo() == 0) {
            Some(Vec::new())
        } else {
            None
        };
    }
    if sinks.is_empty() {
        return None; // a source cannot be routed anywhere
    }

    // Build a circulation-with-lower-bounds network:
    //   s → v                 [1;1]   every source is routed exactly once
    //   v → u_strong          [0;1]   if compatible, lo(v) = 1, hi-compatible
    //   v → u_weak            [0;1]   if compatible, lo(v) = 0, hi-compatible
    //   u_strong → u          [lo(u); n]
    //   u_weak   → u          [0; n]
    //   u → t                 [0; hi(u) = 1 ? 1 : n]
    //   t → s                 [0; n]  (closes the circulation)
    // where hi-compatible forbids routing an unbounded source into a sink with
    // finite upper bound.
    let n_sources = sources.len();
    let n_sinks = sinks.len();
    let big = n_sources as i64; // capacity standing in for ∞
    let node_s = 0;
    let node_t = 1;
    let source_node = |v: usize| 2 + v;
    let strong_node = |u: usize| 2 + n_sources + u;
    let weak_node = |u: usize| 2 + n_sources + n_sinks + u;
    let sink_node = |u: usize| 2 + n_sources + 2 * n_sinks + u;
    let total_nodes = 2 + n_sources + 3 * n_sinks;

    let mut net = LowerBoundFlow::new(total_nodes);
    let mut source_edge_ids: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_sources];
    for v in 0..n_sources {
        net.add_edge(node_s, source_node(v), 1, 1);
    }
    for (u, sink) in sinks.iter().enumerate() {
        net.add_edge(strong_node(u), sink_node(u), sink.lo() as i64, big);
        net.add_edge(weak_node(u), sink_node(u), 0, big);
        let cap = match sink.hi() {
            Some(h) => h as i64,
            None => big,
        };
        net.add_edge(sink_node(u), node_t, 0, cap);
    }
    for v in 0..n_sources {
        for (u, sink) in sinks.iter().enumerate() {
            if !compatible(v, u) {
                continue;
            }
            // An unbounded source cannot feed a finitely bounded sink.
            if sources[v].hi().is_none() && sink.hi().is_some() {
                continue;
            }
            let mid = if sources[v].lo() >= 1 {
                strong_node(u)
            } else {
                weak_node(u)
            };
            let edge = net.add_edge(source_node(v), mid, 0, 1);
            source_edge_ids[v].push((u, edge));
        }
    }
    net.add_edge(node_t, node_s, 0, big);

    let flow = net.feasible()?;
    let mut assignment = vec![usize::MAX; n_sources];
    for v in 0..n_sources {
        for &(u, edge) in &source_edge_ids[v] {
            if flow[edge] > 0 {
                assignment[v] = u;
            }
        }
        if assignment[v] == usize::MAX {
            // Should not happen for a feasible circulation; treat as failure.
            return None;
        }
    }
    debug_assert!(verify_assignment(sources, sinks, &assignment));
    Some(assignment)
}

/// Solve the assignment problem for arbitrary intervals by backtracking.
///
/// Sound and complete, but exponential in the worst case (the problem is
/// NP-complete, Theorem 3.5). Two prunings keep it practical on the workloads
/// in this workspace: upper bounds are checked incrementally, and a sink whose
/// lower bound can no longer be reached by the still-unassigned compatible
/// sources cuts the branch immediately.
pub fn general_assignment(
    sources: &[Interval],
    sinks: &[Interval],
    compatible: impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    if sources.is_empty() {
        return if sinks.iter().all(|u| u.lo() == 0) {
            Some(Vec::new())
        } else {
            None
        };
    }
    if sinks.is_empty() {
        return None;
    }
    // Precompute the compatibility lists.
    let compat: Vec<Vec<usize>> = (0..sources.len())
        .map(|v| (0..sinks.len()).filter(|&u| compatible(v, u)).collect())
        .collect();
    // Potential lower-bound mass still available to each sink from unassigned
    // sources; once `loads[u].lo_sum + potential_lo[u] < sinks[u].lo()` the
    // branch is dead.
    let mut potential_lo: Vec<u64> = vec![0; sinks.len()];
    for (v, sinks_of_v) in compat.iter().enumerate() {
        for &u in sinks_of_v {
            potential_lo[u] += sources[v].lo();
        }
    }
    if potential_lo
        .iter()
        .zip(sinks.iter())
        .any(|(&potential, sink)| potential < sink.lo())
    {
        return None;
    }

    let mut loads: Vec<SinkLoad> = vec![SinkLoad::default(); sinks.len()];
    let mut assignment = vec![usize::MAX; sources.len()];
    // Order sources by how few sinks they are compatible with (fail fast).
    let mut order: Vec<usize> = (0..sources.len()).collect();
    order.sort_by_key(|&v| compat[v].len());

    struct Search<'a> {
        sources: &'a [Interval],
        sinks: &'a [Interval],
        compat: &'a [Vec<usize>],
        order: &'a [usize],
        loads: Vec<SinkLoad>,
        potential_lo: Vec<u64>,
        assignment: Vec<usize>,
    }

    impl Search<'_> {
        fn run(&mut self, pos: usize) -> bool {
            if pos == self.order.len() {
                return self
                    .loads
                    .iter()
                    .zip(self.sinks.iter())
                    .all(|(load, sink)| load.fits(*sink));
            }
            let v = self.order[pos];
            let lo_v = self.sources[v].lo();
            // The source is no longer "available": remove its potential from
            // every compatible sink, then add it back to the chosen one.
            for &u in &self.compat[v] {
                self.potential_lo[u] -= lo_v;
            }
            for idx in 0..self.compat[v].len() {
                let u = self.compat[v][idx];
                self.loads[u].add(self.sources[v]);
                let feasible =
                    self.loads[u].fits_upper(self.sinks[u]) && self.lower_bounds_reachable();
                if feasible {
                    self.assignment[v] = u;
                    if self.run(pos + 1) {
                        return true;
                    }
                    self.assignment[v] = usize::MAX;
                }
                self.loads[u].remove(self.sources[v]);
            }
            for &u in &self.compat[v] {
                self.potential_lo[u] += lo_v;
            }
            false
        }

        fn lower_bounds_reachable(&self) -> bool {
            self.loads
                .iter()
                .zip(self.potential_lo.iter())
                .zip(self.sinks.iter())
                .all(|((load, &potential), sink)| load.lo_sum + potential >= sink.lo())
        }
    }

    let mut search = Search {
        sources,
        sinks,
        compat: &compat,
        order: &order,
        loads: std::mem::take(&mut loads),
        potential_lo: std::mem::take(&mut potential_lo),
        assignment: std::mem::take(&mut assignment),
    };
    if search.run(0) {
        debug_assert!(verify_assignment(sources, sinks, &search.assignment));
        Some(search.assignment)
    } else {
        None
    }
}

/// Verify that an assignment satisfies the interval-sum condition; exposed for
/// tests and used as a debug assertion by both solvers.
pub fn verify_assignment(sources: &[Interval], sinks: &[Interval], assignment: &[usize]) -> bool {
    if assignment.len() != sources.len() {
        return false;
    }
    let mut loads = vec![SinkLoad::default(); sinks.len()];
    for (v, &u) in assignment.iter().enumerate() {
        if u >= sinks.len() {
            return false;
        }
        loads[u].add(sources[v]);
    }
    loads
        .iter()
        .zip(sinks.iter())
        .all(|(load, sink)| load.fits(*sink))
}

/// A tiny max-flow network supporting lower bounds via the standard
/// excess-node reduction; capacities are small integers.
struct LowerBoundFlow {
    graph: Vec<Vec<usize>>, // adjacency: indices into `edges`
    edges: Vec<FlowEdge>,
    excess: Vec<i64>,
    lower: Vec<i64>,
}

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: i64,
    flow: i64,
}

impl LowerBoundFlow {
    fn new(nodes: usize) -> LowerBoundFlow {
        LowerBoundFlow {
            graph: vec![Vec::new(); nodes],
            edges: Vec::new(),
            excess: vec![0; nodes],
            lower: Vec::new(),
        }
    }

    /// Add an edge with a lower bound and an upper capacity; returns the index
    /// used to read the final flow back.
    fn add_edge(&mut self, from: usize, to: usize, lower: i64, upper: i64) -> usize {
        debug_assert!(lower <= upper);
        let id = self.edges.len();
        // Store the reduced capacity (upper - lower); account the lower bound
        // as an excess transfer.
        self.graph[from].push(self.edges.len());
        self.edges.push(FlowEdge {
            to,
            cap: upper - lower,
            flow: 0,
        });
        self.graph[to].push(self.edges.len());
        self.edges.push(FlowEdge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.excess[to] += lower;
        self.excess[from] -= lower;
        self.lower.push(lower);
        self.lower.push(0);
        id
    }

    /// Check feasibility; on success return, for every public edge id, the
    /// total flow including its lower bound.
    fn feasible(mut self) -> Option<Vec<i64>> {
        let n = self.graph.len();
        let super_s = n;
        let super_t = n + 1;
        self.graph.push(Vec::new());
        self.graph.push(Vec::new());
        self.excess.push(0);
        self.excess.push(0);
        let mut required = 0;
        for node in 0..n {
            let excess = self.excess[node];
            if excess > 0 {
                required += excess;
                self.push_plain_edge(super_s, node, excess);
            } else if excess < 0 {
                self.push_plain_edge(node, super_t, -excess);
            }
        }
        let achieved = self.max_flow(super_s, super_t);
        if achieved < required {
            return None;
        }
        let flows = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| e.flow + self.lower.get(i).copied().unwrap_or(0))
            .collect();
        Some(flows)
    }

    fn push_plain_edge(&mut self, from: usize, to: usize, cap: i64) {
        self.graph[from].push(self.edges.len());
        self.edges.push(FlowEdge { to, cap, flow: 0 });
        self.graph[to].push(self.edges.len());
        self.edges.push(FlowEdge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.lower.push(0);
        self.lower.push(0);
    }

    /// Edmonds–Karp max-flow; the networks here have a handful of nodes.
    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0;
        loop {
            // BFS for an augmenting path.
            let mut parent_edge: Vec<Option<usize>> = vec![None; self.graph.len()];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut reached = vec![false; self.graph.len()];
            reached[s] = true;
            while let Some(x) = queue.pop_front() {
                if x == t {
                    break;
                }
                for &eid in &self.graph[x] {
                    let e = &self.edges[eid];
                    if !reached[e.to] && e.cap - e.flow > 0 {
                        reached[e.to] = true;
                        parent_edge[e.to] = Some(eid);
                        queue.push_back(e.to);
                    }
                }
            }
            if !reached[t] {
                break;
            }
            // Find the bottleneck.
            let mut bottleneck = i64::MAX;
            let mut node = t;
            while node != s {
                let eid = parent_edge[node].expect("path exists");
                let e = &self.edges[eid];
                bottleneck = bottleneck.min(e.cap - e.flow);
                node = self.edges[eid ^ 1].to;
            }
            // Augment.
            let mut node = t;
            while node != s {
                let eid = parent_edge[node].expect("path exists");
                self.edges[eid].flow += bottleneck;
                self.edges[eid ^ 1].flow -= bottleneck;
                node = self.edges[eid ^ 1].to;
            }
            total += bottleneck;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE: Interval = Interval::ONE;
    const OPT: Interval = Interval::OPT;
    const PLUS: Interval = Interval::PLUS;
    const STAR: Interval = Interval::STAR;

    fn check_both(
        sources: &[Interval],
        sinks: &[Interval],
        compat: &[(usize, usize)],
        expect: bool,
    ) {
        let compatible = |v: usize, u: usize| compat.contains(&(v, u));
        let basic = basic_assignment(sources, sinks, compatible);
        let general = general_assignment(sources, sinks, compatible);
        assert_eq!(basic.is_some(), expect, "basic solver disagrees");
        assert_eq!(general.is_some(), expect, "general solver disagrees");
        if let Some(a) = &basic {
            assert!(verify_assignment(sources, sinks, a));
        }
        if let Some(a) = &general {
            assert!(verify_assignment(sources, sinks, a));
        }
    }

    #[test]
    fn single_source_single_sink() {
        check_both(&[ONE], &[ONE], &[(0, 0)], true);
        check_both(&[ONE], &[STAR], &[(0, 0)], true);
        check_both(&[ONE], &[OPT], &[(0, 0)], true);
        check_both(&[STAR], &[ONE], &[(0, 0)], false);
        check_both(&[STAR], &[STAR], &[(0, 0)], true);
        check_both(&[OPT], &[ONE], &[(0, 0)], false);
        check_both(&[OPT], &[PLUS], &[(0, 0)], false);
        check_both(&[PLUS], &[PLUS], &[(0, 0)], true);
        // Incompatible pair.
        check_both(&[ONE], &[ONE], &[], false);
    }

    #[test]
    fn mandatory_sink_requires_a_source() {
        // A sink with interval 1 and no compatible source fails even though
        // every source is routed elsewhere.
        check_both(&[ONE], &[ONE, ONE], &[(0, 0)], false);
        // With an OPT second sink it succeeds.
        check_both(&[ONE], &[ONE, OPT], &[(0, 0)], true);
        // Empty source set: only "optional" sinks are satisfied.
        check_both(&[], &[OPT, STAR], &[], true);
        check_both(&[], &[ONE], &[], false);
        check_both(&[], &[PLUS], &[], false);
    }

    #[test]
    fn capacity_one_sinks_take_at_most_one_source() {
        // Two mandatory sources, a single capacity-1 sink.
        check_both(&[ONE, ONE], &[ONE], &[(0, 0), (1, 0)], false);
        // A star sink absorbs both.
        check_both(&[ONE, ONE], &[STAR], &[(0, 0), (1, 0)], true);
        // Split across two sinks.
        check_both(
            &[ONE, ONE],
            &[ONE, ONE],
            &[(0, 0), (0, 1), (1, 0), (1, 1)],
            true,
        );
        // Both sources only compatible with the same capacity-1 sink.
        check_both(&[ONE, ONE], &[ONE, ONE], &[(0, 0), (1, 0)], false);
    }

    #[test]
    fn optional_sources_do_not_satisfy_mandatory_sinks() {
        // An OPT source alone cannot satisfy a PLUS or ONE sink (lower bound).
        check_both(&[OPT], &[STAR], &[(0, 0)], true);
        check_both(&[OPT, ONE], &[PLUS], &[(0, 0), (1, 0)], true);
        check_both(&[OPT, OPT], &[PLUS], &[(0, 0), (1, 0)], false);
    }

    #[test]
    fn unbounded_sources_need_unbounded_sinks() {
        check_both(&[STAR], &[OPT], &[(0, 0)], false);
        check_both(&[STAR], &[STAR], &[(0, 0)], true);
        check_both(&[PLUS], &[ONE], &[(0, 0)], false);
        check_both(&[PLUS], &[PLUS], &[(0, 0)], true);
        check_both(&[PLUS, ONE], &[PLUS, OPT], &[(0, 0), (1, 1)], true);
    }

    #[test]
    fn assignment_respects_compatibility() {
        let sources = [ONE, ONE, ONE];
        let sinks = [STAR, ONE];
        let compat = [(0, 0), (1, 0), (2, 1)];
        let compatible = |v: usize, u: usize| compat.contains(&(v, u));
        let a = basic_assignment(&sources, &sinks, compatible).unwrap();
        assert_eq!(a[2], 1);
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 0);
    }

    #[test]
    fn general_assignment_handles_arbitrary_intervals() {
        // Source [2;2] must go to a sink that tolerates exactly two.
        let sources = [Interval::exactly(2), Interval::exactly(1)];
        let sinks = [Interval::bounded(2, 3), Interval::bounded(1, 1)];
        let compatible = |_v: usize, _u: usize| true;
        let a = general_assignment(&sources, &sinks, compatible).unwrap();
        assert!(verify_assignment(&sources, &sinks, &a));
        // Sum of lower bounds exceeding every sink's capacity is infeasible.
        let bad = general_assignment(
            &[Interval::exactly(3)],
            &[Interval::bounded(1, 2)],
            |_, _| true,
        );
        assert!(bad.is_none());
    }

    #[test]
    #[should_panic(expected = "requires basic intervals")]
    fn basic_assignment_rejects_arbitrary_intervals() {
        let _ = basic_assignment(&[Interval::exactly(2)], &[STAR], |_, _| true);
    }

    #[test]
    fn randomized_cross_check() {
        // Exhaustively compare the two solvers on all small instances over
        // basic intervals with a fixed compatibility pattern.
        let basics = [ONE, OPT, PLUS, STAR];
        for &s1 in &basics {
            for &s2 in &basics {
                for &u1 in &basics {
                    for &u2 in &basics {
                        for mask in 0..16u32 {
                            let compat: Vec<(usize, usize)> = (0..4)
                                .filter(|i| mask & (1 << i) != 0)
                                .map(|i| (i / 2, i % 2))
                                .collect();
                            let compatible = |v: usize, u: usize| compat.contains(&(v, u));
                            let sources = [s1, s2];
                            let sinks = [u1, u2];
                            let b = basic_assignment(&sources, &sinks, compatible).is_some();
                            let g = general_assignment(&sources, &sinks, compatible).is_some();
                            assert_eq!(
                                b, g,
                                "solvers disagree on sources {s1},{s2} sinks {u1},{u2} mask {mask:b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
