//! Intervals, bags, and regular bag expressions (RBE).
//!
//! This crate implements the combinatorial substrate of *Containment of Shape
//! Expression Schemas for RDF* (Staworko & Wieczorek, PODS 2019), Section 2:
//!
//! * [`Interval`] — occurrence intervals `[n;m]` with an optionally unbounded
//!   upper end, the four *basic* intervals `1`, `?`, `+`, `*`, point-wise
//!   addition `⊕`, and inclusion.
//! * [`IntervalSet`] — finite unions of intervals, used by the polynomial
//!   membership test for single-occurrence expressions.
//! * [`Bag`] — finite multisets over an ordered symbol type, with bag union
//!   `⊎` and restriction.
//! * [`Rbe`] — the abstract syntax of regular bag expressions with disjunction
//!   `|`, unordered concatenation `||`, and interval repetition, together with
//!   the [`Rbe0`] normal form `a₁^{M₁} || … || aₙ^{Mₙ}`.
//! * [`membership`] — membership tests: linear-time for RBE₀, polynomial for
//!   single-occurrence expressions (SORBE), and a naive exponential oracle used
//!   for cross-checking. The general NP membership test via Presburger
//!   arithmetic lives in the `shapex-presburger` crate.
//!
//! Expressions are generic in the symbol type so the same machinery serves
//! plain predicate alphabets (`Σ`) and the composite alphabet `Σ × Γ` used by
//! shape expressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag;
pub mod expr;
pub mod flow;
pub mod intern;
pub mod interval;
pub mod membership;

pub use bag::Bag;
pub use expr::{Rbe, Rbe0};
pub use flow::FlowScratch;
pub use intern::{SymbolId, SymbolTable};
pub use interval::{Interval, IntervalSet};
