//! Regular bag expression syntax and the RBE₀ normal form.

use std::collections::BTreeSet;
use std::fmt;

use crate::interval::Interval;

/// A regular bag expression over symbols of type `S` (Section 2 of the paper):
///
/// ```text
/// E ::= ε | a | (E | E) | (E || E) | E^I
/// ```
///
/// Disjunction and unordered concatenation are stored n-ary for convenience;
/// binary nesting is accepted and flattened by the smart constructors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rbe<S> {
    /// The empty-bag expression `ε` with `L(ε) = {ε}`.
    Epsilon,
    /// A single symbol `a` with `L(a) = {{|a|}}`.
    Symbol(S),
    /// Disjunction `E₁ | … | Eₙ` (language union).
    Disj(Vec<Rbe<S>>),
    /// Unordered concatenation `E₁ || … || Eₙ` (bag union of languages).
    Concat(Vec<Rbe<S>>),
    /// Interval repetition `E^I`.
    Repeat(Box<Rbe<S>>, Interval),
}

impl<S> Rbe<S> {
    /// The expression `ε`.
    pub fn epsilon() -> Rbe<S> {
        Rbe::Epsilon
    }

    /// A single symbol.
    pub fn symbol(s: S) -> Rbe<S> {
        Rbe::Symbol(s)
    }

    /// Disjunction of the given expressions; flattens nested disjunctions and
    /// simplifies the unary case.
    pub fn disj(parts: Vec<Rbe<S>>) -> Rbe<S> {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Rbe::Disj(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Rbe::Epsilon,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Rbe::Disj(flat),
        }
    }

    /// Unordered concatenation of the given expressions; flattens nested
    /// concatenations, drops `ε` factors and simplifies the unary case.
    pub fn concat(parts: Vec<Rbe<S>>) -> Rbe<S> {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Rbe::Concat(inner) => flat.extend(inner),
                Rbe::Epsilon => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Rbe::Epsilon,
            1 => flat.into_iter().next().expect("len checked"),
            _ => Rbe::Concat(flat),
        }
    }

    /// Repetition `E^I`.
    pub fn repeat(inner: Rbe<S>, interval: Interval) -> Rbe<S> {
        Rbe::Repeat(Box::new(inner), interval)
    }

    /// `E?` — zero or one occurrence.
    pub fn opt(inner: Rbe<S>) -> Rbe<S> {
        Rbe::repeat(inner, Interval::OPT)
    }

    /// `E*` — any number of occurrences.
    pub fn star(inner: Rbe<S>) -> Rbe<S> {
        Rbe::repeat(inner, Interval::STAR)
    }

    /// `E+` — at least one occurrence.
    pub fn plus(inner: Rbe<S>) -> Rbe<S> {
        Rbe::repeat(inner, Interval::PLUS)
    }

    /// The number of AST nodes, used as the size measure in complexity
    /// experiments.
    pub fn size(&self) -> usize {
        match self {
            Rbe::Epsilon | Rbe::Symbol(_) => 1,
            Rbe::Disj(parts) | Rbe::Concat(parts) => 1 + parts.iter().map(Rbe::size).sum::<usize>(),
            Rbe::Repeat(inner, _) => 1 + inner.size(),
        }
    }

    /// Approximate heap footprint of the expression tree in bytes: every
    /// child vector's capacity plus every boxed repetition body, at
    /// `size_of::<Rbe<S>>()` per slot. Symbols are counted inline — a symbol
    /// type owning allocations (interned labels are `Arc` handles) is the
    /// owner's business. Feeds the cache accounting of downstream session
    /// layers; an estimate, not allocator truth.
    pub fn approx_heap_bytes(&self) -> usize {
        let node = std::mem::size_of::<Rbe<S>>();
        match self {
            Rbe::Epsilon | Rbe::Symbol(_) => 0,
            Rbe::Disj(parts) | Rbe::Concat(parts) => {
                parts.capacity() * node + parts.iter().map(Rbe::approx_heap_bytes).sum::<usize>()
            }
            Rbe::Repeat(inner, _) => node + inner.approx_heap_bytes(),
        }
    }

    /// Whether the expression syntactically contains a disjunction.
    pub fn has_disjunction(&self) -> bool {
        match self {
            Rbe::Epsilon | Rbe::Symbol(_) => false,
            Rbe::Disj(_) => true,
            Rbe::Concat(parts) => parts.iter().any(Rbe::has_disjunction),
            Rbe::Repeat(inner, _) => inner.has_disjunction(),
        }
    }

    /// Map the symbols of the expression, preserving its structure.
    pub fn map<T, F: Fn(&S) -> T + Copy>(&self, f: F) -> Rbe<T> {
        match self {
            Rbe::Epsilon => Rbe::Epsilon,
            Rbe::Symbol(s) => Rbe::Symbol(f(s)),
            Rbe::Disj(parts) => Rbe::Disj(parts.iter().map(|p| p.map(f)).collect()),
            Rbe::Concat(parts) => Rbe::Concat(parts.iter().map(|p| p.map(f)).collect()),
            Rbe::Repeat(inner, i) => Rbe::Repeat(Box::new(inner.map(f)), *i),
        }
    }
}

impl<S: Ord + Clone> Rbe<S> {
    /// The set of symbols occurring in the expression (its alphabet).
    pub fn alphabet(&self) -> BTreeSet<S> {
        let mut out = BTreeSet::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet(&self, out: &mut BTreeSet<S>) {
        match self {
            Rbe::Epsilon => {}
            Rbe::Symbol(s) => {
                out.insert(s.clone());
            }
            Rbe::Disj(parts) | Rbe::Concat(parts) => {
                for p in parts {
                    p.collect_alphabet(out);
                }
            }
            Rbe::Repeat(inner, _) => inner.collect_alphabet(out),
        }
    }

    /// The number of *occurrences* of symbols (counting repetitions), used by
    /// the single-occurrence check.
    pub fn symbol_occurrences(&self) -> usize {
        match self {
            Rbe::Epsilon => 0,
            Rbe::Symbol(_) => 1,
            Rbe::Disj(parts) | Rbe::Concat(parts) => {
                parts.iter().map(Rbe::symbol_occurrences).sum()
            }
            Rbe::Repeat(inner, _) => inner.symbol_occurrences(),
        }
    }

    /// Whether every symbol occurs at most once in the expression
    /// (single-occurrence regular bag expressions, SORBE).
    pub fn is_single_occurrence(&self) -> bool {
        self.symbol_occurrences() == self.alphabet().len()
    }

    /// Try to view the expression as an RBE₀, i.e. an unordered concatenation
    /// `a₁^{I₁} || … || aₙ^{Iₙ}` of (possibly repeated) atomic symbols.
    ///
    /// Returns `None` if the expression uses disjunction or repetition over a
    /// non-atomic sub-expression. The paper's RBE₀ additionally requires the
    /// intervals to be *basic*; use [`Rbe0::uses_only_basic_intervals`] to
    /// check that separately.
    pub fn to_rbe0(&self) -> Option<Rbe0<S>> {
        let mut atoms = Vec::new();
        if self.collect_rbe0(&mut atoms) {
            Some(Rbe0 { atoms })
        } else {
            None
        }
    }

    fn collect_rbe0(&self, atoms: &mut Vec<(S, Interval)>) -> bool {
        match self {
            Rbe::Epsilon => true,
            Rbe::Symbol(s) => {
                atoms.push((s.clone(), Interval::ONE));
                true
            }
            Rbe::Repeat(inner, i) => match inner.as_ref() {
                Rbe::Symbol(s) => {
                    atoms.push((s.clone(), *i));
                    true
                }
                _ => false,
            },
            Rbe::Concat(parts) => parts.iter().all(|p| p.collect_rbe0(atoms)),
            Rbe::Disj(_) => false,
        }
    }

    /// Whether the expression belongs to the paper's class RBE₀:
    /// `a₁^{M₁} || … || aₙ^{Mₙ}` with every `Mᵢ` a basic interval.
    pub fn is_rbe0(&self) -> bool {
        self.to_rbe0()
            .map(|r| r.uses_only_basic_intervals())
            .unwrap_or(false)
    }
}

impl<S: fmt::Display> fmt::Display for Rbe<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rbe::Epsilon => write!(f, "ε"),
            Rbe::Symbol(s) => write!(f, "{s}"),
            Rbe::Disj(parts) => {
                let body: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", body.join(" | "))
            }
            Rbe::Concat(parts) => {
                let body: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", body.join(" || "))
            }
            Rbe::Repeat(inner, i) => {
                if i.is_basic() && *i == Interval::ONE {
                    write!(f, "{inner}")
                } else {
                    write!(f, "{inner}{i}")
                }
            }
        }
    }
}

/// The RBE₀ normal form: an unordered concatenation of interval-repeated
/// atomic symbols `a₁^{I₁} || … || aₙ^{Iₙ}`.
///
/// Symbols may repeat across atoms (the paper's example `a || a⁺ || b*` is
/// RBE₀); membership only depends on the interval sum per symbol because
/// point-wise interval addition is exact for convex intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rbe0<S> {
    atoms: Vec<(S, Interval)>,
}

impl<S> Rbe0<S> {
    /// An RBE₀ with no atoms, denoting `{ε}`.
    pub fn empty() -> Rbe0<S> {
        Rbe0 { atoms: Vec::new() }
    }

    /// Build from explicit atoms.
    pub fn from_atoms(atoms: Vec<(S, Interval)>) -> Rbe0<S> {
        Rbe0 { atoms }
    }

    /// The atoms in declaration order.
    pub fn atoms(&self) -> &[(S, Interval)] {
        &self.atoms
    }

    /// Append an atom `symbol^interval`.
    pub fn push(&mut self, symbol: S, interval: Interval) {
        self.atoms.push((symbol, interval));
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether there are no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether every atom uses a basic interval (`1`, `?`, `+`, `*`), the
    /// requirement of the paper's RBE₀ class.
    pub fn uses_only_basic_intervals(&self) -> bool {
        self.atoms.iter().all(|(_, i)| i.is_basic())
    }
}

impl<S: Ord + Clone> Rbe0<S> {
    /// The admissible occurrence interval for `symbol`: the `⊕`-sum of the
    /// intervals of all atoms carrying that symbol (`[0;0]` if none do).
    pub fn allowed(&self, symbol: &S) -> Interval {
        self.atoms
            .iter()
            .filter(|(s, _)| s == symbol)
            .fold(Interval::ZERO, |acc, (_, i)| acc.add(i))
    }

    /// The distinct symbols mentioned by the atoms.
    pub fn alphabet(&self) -> BTreeSet<S> {
        self.atoms.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Convert back to a general [`Rbe`].
    pub fn to_rbe(&self) -> Rbe<S> {
        Rbe::concat(
            self.atoms
                .iter()
                .map(|(s, i)| {
                    if *i == Interval::ONE {
                        Rbe::symbol(s.clone())
                    } else {
                        Rbe::repeat(Rbe::symbol(s.clone()), *i)
                    }
                })
                .collect(),
        )
    }
}

impl<S: fmt::Display> fmt::Display for Rbe0<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self
            .atoms
            .iter()
            .map(|(s, i)| {
                if *i == Interval::ONE {
                    s.to_string()
                } else {
                    format!("{s}{i}")
                }
            })
            .collect();
        write!(f, "{}", parts.join(" || "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Rbe<&'static str> {
        // a || b? || c*
        Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::opt(Rbe::symbol("b")),
            Rbe::star(Rbe::symbol("c")),
        ])
    }

    #[test]
    fn constructors_flatten() {
        let nested = Rbe::concat(vec![
            Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("b")]),
            Rbe::symbol("c"),
            Rbe::epsilon(),
        ]);
        match nested {
            Rbe::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened concat, got {other:?}"),
        }
        let unary = Rbe::disj(vec![Rbe::symbol("a")]);
        assert_eq!(unary, Rbe::symbol("a"));
        assert_eq!(Rbe::<&str>::concat(vec![]), Rbe::Epsilon);
    }

    #[test]
    fn alphabet_and_size() {
        let e = abc();
        let alpha = e.alphabet();
        assert_eq!(alpha.len(), 3);
        assert!(alpha.contains("a") && alpha.contains("b") && alpha.contains("c"));
        assert_eq!(e.size(), 6);
        assert!(!e.has_disjunction());
        assert!(Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]).has_disjunction());
    }

    #[test]
    fn single_occurrence_detection() {
        assert!(abc().is_single_occurrence());
        let twice = Rbe::concat(vec![Rbe::symbol("a"), Rbe::plus(Rbe::symbol("a"))]);
        assert!(!twice.is_single_occurrence());
    }

    #[test]
    fn rbe0_detection_and_allowed_intervals() {
        let e = abc();
        assert!(e.is_rbe0());
        let r = e.to_rbe0().unwrap();
        assert_eq!(r.allowed(&"a"), Interval::ONE);
        assert_eq!(r.allowed(&"b"), Interval::OPT);
        assert_eq!(r.allowed(&"c"), Interval::STAR);
        assert_eq!(r.allowed(&"d"), Interval::ZERO);

        // a || a+ || b* is RBE0 even though `a` repeats.
        let repeated = Rbe::concat(vec![
            Rbe::symbol("a"),
            Rbe::plus(Rbe::symbol("a")),
            Rbe::star(Rbe::symbol("b")),
        ]);
        assert!(repeated.is_rbe0());
        assert_eq!(
            repeated.to_rbe0().unwrap().allowed(&"a"),
            Interval::at_least(2)
        );

        // Disjunction is not RBE0.
        let disj = Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]);
        assert!(!disj.is_rbe0());
        // Repetition of a composite expression is not RBE0.
        let comp = Rbe::star(Rbe::concat(vec![Rbe::symbol("a"), Rbe::symbol("b")]));
        assert!(!comp.is_rbe0());
        // Non-basic intervals make it fall outside the strict class.
        let wide = Rbe::repeat(Rbe::symbol("a"), Interval::bounded(2, 3));
        assert!(wide.to_rbe0().is_some());
        assert!(!wide.is_rbe0());
    }

    #[test]
    fn map_preserves_structure() {
        let e = abc();
        let mapped = e.map(|s| s.to_uppercase());
        assert_eq!(mapped.alphabet().len(), 3);
        assert!(mapped.alphabet().contains("A"));
        assert_eq!(mapped.size(), e.size());
    }

    #[test]
    fn roundtrip_rbe0_to_rbe() {
        let e = abc();
        let r = e.to_rbe0().unwrap();
        let back = r.to_rbe();
        assert!(back.is_rbe0());
        assert_eq!(back.to_rbe0().unwrap().atoms().len(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rbe::<&str>::epsilon().to_string(), "ε");
        let e = Rbe::concat(vec![Rbe::symbol("a"), Rbe::opt(Rbe::symbol("b"))]);
        assert_eq!(e.to_string(), "(a || b?)");
        let d = Rbe::disj(vec![Rbe::symbol("a"), Rbe::symbol("b")]);
        assert_eq!(d.to_string(), "(a | b)");
    }
}
