//! Occurrence intervals `[n;m]` and finite unions thereof.
//!
//! Intervals follow Section 2 of the paper: a pair `[n;m]` with `n ≤ m ≤ ∞`
//! denotes the set `{i | n ≤ i ≤ m}`. The four *basic* intervals are written
//! `1 = [1;1]`, `? = [0;1]`, `+ = [1;∞]` and `* = [0;∞]`; `0 = [0;0]` is used
//! as an auxiliary constant.

use std::fmt;

/// An occurrence interval `[min; max]` over the natural numbers, where the
/// upper bound may be unbounded (`∞`).
///
/// Invariant: if the upper bound is finite then `min <= max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    min: u64,
    /// `None` represents `∞`.
    max: Option<u64>,
}

/// The four basic intervals of popular schema languages (`M` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Basic {
    /// `1 = [1;1]`.
    One,
    /// `? = [0;1]`.
    Opt,
    /// `+ = [1;∞]`.
    Plus,
    /// `* = [0;∞]`.
    Star,
}

impl Basic {
    /// The interval denoted by this basic symbol.
    pub fn interval(self) -> Interval {
        match self {
            Basic::One => Interval::ONE,
            Basic::Opt => Interval::OPT,
            Basic::Plus => Interval::PLUS,
            Basic::Star => Interval::STAR,
        }
    }

    /// All four basic intervals, useful for exhaustive generators.
    pub const ALL: [Basic; 4] = [Basic::One, Basic::Opt, Basic::Plus, Basic::Star];
}

impl fmt::Display for Basic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basic::One => write!(f, "1"),
            Basic::Opt => write!(f, "?"),
            Basic::Plus => write!(f, "+"),
            Basic::Star => write!(f, "*"),
        }
    }
}

impl Interval {
    /// `[0;0]`, the neutral element of `⊕`.
    pub const ZERO: Interval = Interval {
        min: 0,
        max: Some(0),
    };
    /// `1 = [1;1]`.
    pub const ONE: Interval = Interval {
        min: 1,
        max: Some(1),
    };
    /// `? = [0;1]`.
    pub const OPT: Interval = Interval {
        min: 0,
        max: Some(1),
    };
    /// `+ = [1;∞]`.
    pub const PLUS: Interval = Interval { min: 1, max: None };
    /// `* = [0;∞]`.
    pub const STAR: Interval = Interval { min: 0, max: None };

    /// A bounded interval `[min; max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn bounded(min: u64, max: u64) -> Interval {
        assert!(min <= max, "invalid interval [{min};{max}]");
        Interval {
            min,
            max: Some(max),
        }
    }

    /// The unbounded interval `[min; ∞]`.
    pub fn at_least(min: u64) -> Interval {
        Interval { min, max: None }
    }

    /// The singleton interval `[n; n]`.
    pub fn exactly(n: u64) -> Interval {
        Interval {
            min: n,
            max: Some(n),
        }
    }

    /// An interval from an optional upper bound (`None` meaning `∞`).
    ///
    /// # Panics
    /// Panics if a finite `max` is smaller than `min`.
    pub fn new(min: u64, max: Option<u64>) -> Interval {
        match max {
            Some(m) => Interval::bounded(min, m),
            None => Interval::at_least(min),
        }
    }

    /// The lower bound `min(I)` of the paper.
    pub fn lo(&self) -> u64 {
        self.min
    }

    /// The upper bound `max(I)` of the paper, `None` meaning `∞`.
    pub fn hi(&self) -> Option<u64> {
        self.max
    }

    /// Whether the interval is bounded above.
    pub fn is_finite(&self) -> bool {
        self.max.is_some()
    }

    /// Whether `n ∈ [min; max]`.
    pub fn contains(&self, n: u64) -> bool {
        n >= self.min && self.max.map_or(true, |m| n <= m)
    }

    /// Interval inclusion: `self ⊆ other` iff `other.min ≤ self.min` and
    /// `self.max ≤ other.max`.
    pub fn is_subset(&self, other: &Interval) -> bool {
        other.min <= self.min
            && match (self.max, other.max) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            }
    }

    /// Point-wise addition `⊕`: `[n1;m1] ⊕ [n2;m2] = [n1+n2; m1+m2]`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            min: self.min + other.min,
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    /// The `n`-fold point-wise sum `I ⊕ … ⊕ I` (`n` times); `[0;0]` for `n = 0`.
    pub fn scale(&self, n: u64) -> Interval {
        if n == 0 {
            Interval::ZERO
        } else {
            Interval {
                min: self.min * n,
                max: self.max.map(|m| m * n),
            }
        }
    }

    /// Intersection of two intervals, `None` if disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let min = self.min.max(other.min);
        let max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match max {
            Some(m) if m < min => None,
            _ => Some(Interval { min, max }),
        }
    }

    /// Whether the intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.intersect(other).is_some()
    }

    /// Classify the interval as one of the four basic intervals, if it is one.
    pub fn basic(&self) -> Option<Basic> {
        match (self.min, self.max) {
            (1, Some(1)) => Some(Basic::One),
            (0, Some(1)) => Some(Basic::Opt),
            (1, None) => Some(Basic::Plus),
            (0, None) => Some(Basic::Star),
            _ => None,
        }
    }

    /// Whether the interval is one of `1`, `?`, `+`, `*`.
    pub fn is_basic(&self) -> bool {
        self.basic().is_some()
    }

    /// Whether the interval is a singleton `[k;k]` (used by compressed graphs).
    pub fn singleton(&self) -> Option<u64> {
        match self.max {
            Some(m) if m == self.min => Some(self.min),
            _ => None,
        }
    }

    /// Parse the textual forms used by the schema syntax: `1`, `?`, `+`, `*`,
    /// `[n;m]`, `[n;*]`, or a plain number `k` meaning `[k;k]`.
    pub fn parse(text: &str) -> Result<Interval, String> {
        let t = text.trim();
        match t {
            "1" => return Ok(Interval::ONE),
            "?" => return Ok(Interval::OPT),
            "+" => return Ok(Interval::PLUS),
            "*" => return Ok(Interval::STAR),
            _ => {}
        }
        if let Ok(k) = t.parse::<u64>() {
            return Ok(Interval::exactly(k));
        }
        let inner = t
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("cannot parse interval `{t}`"))?;
        let (lo, hi) = inner
            .split_once(';')
            .or_else(|| inner.split_once(','))
            .ok_or_else(|| format!("interval `{t}` must look like [n;m]"))?;
        let min: u64 = lo
            .trim()
            .parse()
            .map_err(|_| format!("bad lower bound in `{t}`"))?;
        let hi = hi.trim();
        if hi == "*" || hi == "inf" || hi == "∞" {
            return Ok(Interval::at_least(min));
        }
        let max: u64 = hi
            .parse()
            .map_err(|_| format!("bad upper bound in `{t}`"))?;
        if min > max {
            return Err(format!("empty interval `{t}`"));
        }
        Ok(Interval::bounded(min, max))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(b) = self.basic() {
            return write!(f, "{b}");
        }
        match self.max {
            Some(m) if m == self.min => write!(f, "[{};{}]", self.min, m),
            Some(m) => write!(f, "[{};{}]", self.min, m),
            None => write!(f, "[{};*]", self.min),
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ONE
    }
}

impl From<Basic> for Interval {
    fn from(b: Basic) -> Self {
        b.interval()
    }
}

/// A finite union of intervals, kept sorted and with overlapping or adjacent
/// members merged.
///
/// Interval sets arise in the polynomial membership test for single-occurrence
/// expressions, where the set of admissible iteration counts of a
/// sub-expression may fail to be convex (e.g. `{0} ∪ [3;∞]`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet {
            intervals: Vec::new(),
        }
    }

    /// The set containing every natural number.
    pub fn all() -> IntervalSet {
        IntervalSet::from(Interval::STAR)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The member intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Whether `n` belongs to the set.
    pub fn contains(&self, n: u64) -> bool {
        self.intervals.iter().any(|i| i.contains(n))
    }

    /// Insert an interval, merging where possible.
    pub fn insert(&mut self, interval: Interval) {
        self.intervals.push(interval);
        self.normalize();
    }

    /// The smallest member of the set, if any.
    pub fn minimum(&self) -> Option<u64> {
        self.intervals.first().map(|i| i.lo())
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut intervals = self.intervals.clone();
        intervals.extend(other.intervals.iter().copied());
        let mut out = IntervalSet { intervals };
        out.normalize();
        out
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if let Some(c) = a.intersect(b) {
                    out.push(c);
                }
            }
        }
        let mut set = IntervalSet { intervals: out };
        set.normalize();
        set
    }

    /// Point-wise sum of sets: `{a + b | a ∈ self, b ∈ other}`.
    ///
    /// The result of adding two intervals is again an interval, so the result
    /// is the union of the pairwise sums.
    pub fn add(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                out.push(a.add(b));
            }
        }
        let mut set = IntervalSet { intervals: out };
        set.normalize();
        set
    }

    fn normalize(&mut self) {
        self.intervals.sort();
        let mut merged: Vec<Interval> = Vec::with_capacity(self.intervals.len());
        for iv in self.intervals.drain(..) {
            match merged.last_mut() {
                Some(last) => {
                    // Merge when overlapping or adjacent (last.max + 1 >= iv.min).
                    let touches = match last.hi() {
                        None => true,
                        Some(m) => m.saturating_add(1) >= iv.lo(),
                    };
                    if touches {
                        let new_max = match (last.hi(), iv.hi()) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            _ => None,
                        };
                        *last = Interval::new(last.lo(), new_max);
                    } else {
                        merged.push(iv);
                    }
                }
                None => merged.push(iv),
            }
        }
        self.intervals = merged;
    }
}

impl From<Interval> for IntervalSet {
    fn from(interval: Interval) -> Self {
        IntervalSet {
            intervals: vec![interval],
        }
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self.intervals.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_intervals_roundtrip() {
        for b in Basic::ALL {
            let i = b.interval();
            assert_eq!(i.basic(), Some(b));
            assert!(i.is_basic());
            assert_eq!(Interval::parse(&i.to_string()).unwrap(), i);
        }
        assert!(!Interval::ZERO.is_basic());
        assert!(!Interval::bounded(2, 3).is_basic());
    }

    #[test]
    fn contains_and_subset() {
        assert!(Interval::STAR.contains(0));
        assert!(Interval::STAR.contains(1_000_000));
        assert!(Interval::PLUS.contains(1));
        assert!(!Interval::PLUS.contains(0));
        assert!(Interval::OPT.contains(0));
        assert!(!Interval::OPT.contains(2));

        assert!(Interval::ONE.is_subset(&Interval::PLUS));
        assert!(Interval::ONE.is_subset(&Interval::OPT));
        assert!(Interval::ONE.is_subset(&Interval::STAR));
        assert!(Interval::OPT.is_subset(&Interval::STAR));
        assert!(Interval::PLUS.is_subset(&Interval::STAR));
        assert!(!Interval::STAR.is_subset(&Interval::PLUS));
        assert!(!Interval::OPT.is_subset(&Interval::ONE));
        assert!(Interval::bounded(2, 3).is_subset(&Interval::bounded(1, 4)));
        assert!(!Interval::bounded(2, 5).is_subset(&Interval::bounded(1, 4)));
    }

    #[test]
    fn addition_is_pointwise() {
        let a = Interval::bounded(1, 2);
        let b = Interval::bounded(3, 4);
        assert_eq!(a.add(&b), Interval::bounded(4, 6));
        assert_eq!(a.add(&Interval::ZERO), a);
        assert_eq!(Interval::PLUS.add(&Interval::ONE), Interval::at_least(2));
        assert_eq!(Interval::STAR.add(&Interval::STAR), Interval::STAR);
    }

    #[test]
    fn scaling() {
        assert_eq!(Interval::PLUS.scale(0), Interval::ZERO);
        assert_eq!(Interval::ONE.scale(3), Interval::exactly(3));
        assert_eq!(Interval::bounded(1, 2).scale(2), Interval::bounded(2, 4));
        assert_eq!(Interval::STAR.scale(5), Interval::STAR);
    }

    #[test]
    fn intersection() {
        assert_eq!(
            Interval::bounded(1, 5).intersect(&Interval::bounded(3, 9)),
            Some(Interval::bounded(3, 5))
        );
        assert_eq!(
            Interval::bounded(1, 2).intersect(&Interval::bounded(4, 5)),
            None
        );
        assert_eq!(
            Interval::PLUS.intersect(&Interval::OPT),
            Some(Interval::ONE)
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Interval::parse("[3;1]").is_err());
        assert!(Interval::parse("banana").is_err());
        assert_eq!(Interval::parse("[2;*]").unwrap(), Interval::at_least(2));
        assert_eq!(Interval::parse("[2;7]").unwrap(), Interval::bounded(2, 7));
        assert_eq!(Interval::parse("4").unwrap(), Interval::exactly(4));
    }

    #[test]
    fn interval_set_merging() {
        let mut s = IntervalSet::empty();
        assert!(s.is_empty());
        s.insert(Interval::bounded(5, 7));
        s.insert(Interval::bounded(0, 1));
        s.insert(Interval::bounded(2, 3));
        // [0;1] and [2;3] are adjacent and merge; [5;7] stays separate.
        assert_eq!(s.intervals().len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.contains(6));
        assert_eq!(s.minimum(), Some(0));
    }

    #[test]
    fn interval_set_ops() {
        let a = IntervalSet::from(Interval::bounded(0, 2));
        let b = IntervalSet::from(Interval::bounded(5, 6));
        let u = a.union(&b);
        assert!(u.contains(1) && u.contains(5) && !u.contains(3));
        let sum = a.add(&b);
        assert!(sum.contains(5) && sum.contains(8) && !sum.contains(4) && !sum.contains(9));
        let inter = u.intersect(&IntervalSet::from(Interval::bounded(2, 5)));
        assert!(inter.contains(2) && inter.contains(5) && !inter.contains(3));
    }
}
