//! Finite bags (multisets) over an ordered symbol type.

use std::collections::BTreeMap;
use std::fmt;

/// A bag over symbols of type `S`: a finite map from symbols to positive
/// occurrence counts (symbols with count zero are not stored).
///
/// The paper writes bags as `{| a, a, b |}`; [`Bag::from_symbols`] and the
/// `FromIterator` impl accept exactly that kind of listing.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Bag<S: Ord> {
    counts: BTreeMap<S, u64>,
}

impl<S: Ord> Bag<S> {
    /// The empty bag `ε`.
    pub fn new() -> Bag<S> {
        Bag {
            counts: BTreeMap::new(),
        }
    }

    /// Whether the bag is the empty bag.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The number of distinct symbols with a positive count.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The total number of occurrences across all symbols.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The number of occurrences of `symbol` (zero if absent).
    pub fn count(&self, symbol: &S) -> u64 {
        self.counts.get(symbol).copied().unwrap_or(0)
    }

    /// Add `n` occurrences of `symbol`.
    pub fn add(&mut self, symbol: S, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(symbol).or_insert(0) += n;
    }

    /// Add a single occurrence of `symbol`.
    pub fn push(&mut self, symbol: S) {
        self.add(symbol, 1);
    }

    /// Iterate over `(symbol, count)` pairs with positive counts, in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (&S, u64)> {
        self.counts.iter().map(|(s, &c)| (s, c))
    }

    /// Iterate over the distinct symbols.
    pub fn symbols(&self) -> impl Iterator<Item = &S> {
        self.counts.keys()
    }

    /// Bag union `⊎`: counts are added point-wise.
    pub fn union(&self, other: &Bag<S>) -> Bag<S>
    where
        S: Clone,
    {
        let mut out = self.clone();
        for (s, c) in other.iter() {
            out.add(s.clone(), c);
        }
        out
    }

    /// The sub-bag of symbols satisfying `keep`.
    pub fn restrict<F: Fn(&S) -> bool>(&self, keep: F) -> Bag<S>
    where
        S: Clone,
    {
        Bag {
            counts: self
                .counts
                .iter()
                .filter(|(s, _)| keep(s))
                .map(|(s, c)| (s.clone(), *c))
                .collect(),
        }
    }

    /// Apply a function to every symbol, merging counts of symbols that map to
    /// the same image.
    pub fn map<T: Ord, F: Fn(&S) -> T>(&self, f: F) -> Bag<T> {
        let mut out = Bag::new();
        for (s, c) in self.iter() {
            out.add(f(s), c);
        }
        out
    }

    /// Build a bag from explicit `(symbol, count)` pairs.
    pub fn from_counts<I: IntoIterator<Item = (S, u64)>>(pairs: I) -> Bag<S> {
        let mut out = Bag::new();
        for (s, c) in pairs {
            out.add(s, c);
        }
        out
    }

    /// Build a bag from a listing of symbols (with repetitions), the paper's
    /// `{| a, a, c |}` notation.
    pub fn from_symbols<I: IntoIterator<Item = S>>(symbols: I) -> Bag<S> {
        let mut out = Bag::new();
        for s in symbols {
            out.push(s);
        }
        out
    }

    /// Whether `self(a) <= other(a)` for every symbol `a` (sub-bag relation).
    pub fn is_subbag(&self, other: &Bag<S>) -> bool {
        self.iter().all(|(s, c)| other.count(s) >= c)
    }
}

impl<S: Ord> FromIterator<S> for Bag<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Bag::from_symbols(iter)
    }
}

impl<S: Ord + fmt::Display> fmt::Display for Bag<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{|")?;
        let mut first = true;
        for (s, c) in self.iter() {
            for _ in 0..c {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
                first = false;
            }
        }
        write!(f, "|}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let w: Bag<&str> = Bag::from_symbols(["a", "a", "a", "c", "c"]);
        assert_eq!(w.count(&"a"), 3);
        assert_eq!(w.count(&"b"), 0);
        assert_eq!(w.count(&"c"), 2);
        assert_eq!(w.total(), 5);
        assert_eq!(w.distinct(), 2);
        assert!(!w.is_empty());
        assert!(Bag::<&str>::new().is_empty());
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut w: Bag<&str> = Bag::new();
        w.add("a", 0);
        assert!(w.is_empty());
        assert_eq!(w, Bag::new());
    }

    #[test]
    fn union_adds_counts() {
        let w1 = Bag::from_symbols(["a", "b"]);
        let w2 = Bag::from_symbols(["a", "c"]);
        let u = w1.union(&w2);
        assert_eq!(u.count(&"a"), 2);
        assert_eq!(u.count(&"b"), 1);
        assert_eq!(u.count(&"c"), 1);
        assert_eq!(u.total(), 4);
    }

    #[test]
    fn restrict_and_map() {
        let w = Bag::from_counts([("a", 2), ("b", 1), ("c", 4)]);
        let r = w.restrict(|s| *s != "b");
        assert_eq!(r.count(&"b"), 0);
        assert_eq!(r.total(), 6);
        // Map "a" and "b" to the same image; counts merge.
        let m = w.map(|s| if *s == "c" { "other" } else { "ab" });
        assert_eq!(m.count(&"ab"), 3);
        assert_eq!(m.count(&"other"), 4);
    }

    #[test]
    fn subbag_relation() {
        let small = Bag::from_counts([("a", 1), ("b", 2)]);
        let big = Bag::from_counts([("a", 1), ("b", 3), ("c", 1)]);
        assert!(small.is_subbag(&big));
        assert!(!big.is_subbag(&small));
        assert!(Bag::<&str>::new().is_subbag(&small));
    }

    #[test]
    fn display_lists_occurrences() {
        let w = Bag::from_symbols(["b", "a", "a"]);
        assert_eq!(w.to_string(), "{|a, a, b|}");
    }
}
