//! A line-oriented text format for graphs.
//!
//! Each non-empty, non-comment line describes one edge:
//!
//! ```text
//! # bug tracker fragment
//! bug1 -descr-> lit1
//! bug1 -related[*]-> bug2
//! emp1 -email[?]-> lit2
//! hub  -spoke[3]-> rim
//! ```
//!
//! The occurrence interval defaults to `1` and otherwise uses the same syntax
//! as [`Interval::parse`]: `?`, `+`, `*`, `k`, `[n;m]`, `[n;*]`. Node names
//! may contain any characters except whitespace and `-`; the `-` restriction
//! is enforced with an error, because a name containing `-` is ambiguous
//! against the `-label->` arrow syntax (graphs ingested from RDF, whose IRIs
//! routinely contain `-`, should use the N-Triples reader instead of this
//! format).

use shapex_rbe::Interval;

use crate::model::Graph;

/// Parse a graph from the text format. Nodes are created in order of first
/// mention; isolated nodes can be declared on a line of their own containing
/// just the node name.
pub fn parse_graph(text: &str) -> Result<Graph, String> {
    let mut graph = Graph::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !line.contains("->") {
            // A bare node declaration.
            if line.split_whitespace().count() != 1 {
                return Err(format!("line {}: expected `src -label-> dst`", lineno + 1));
            }
            check_node_name(line, lineno)?;
            graph.node(line);
            continue;
        }
        let (lhs, rhs) = line
            .split_once("->")
            .ok_or_else(|| format!("line {}: missing `->`", lineno + 1))?;
        let rhs = rhs.trim();
        if rhs.is_empty() {
            return Err(format!("line {}: missing target node", lineno + 1));
        }
        // lhs is `source -label` or `source -label[interval]`.
        let lhs = lhs.trim();
        let dash = lhs
            .find(" -")
            .ok_or_else(|| format!("line {}: expected `src -label-> dst`", lineno + 1))?;
        let source = lhs[..dash].trim();
        let mut label_part = lhs[dash + 2..].trim();
        if let Some(stripped) = label_part.strip_suffix('-') {
            label_part = stripped.trim();
        }
        if source.is_empty() || label_part.is_empty() {
            return Err(format!("line {}: empty source or label", lineno + 1));
        }
        check_node_name(source, lineno)?;
        check_node_name(rhs, lineno)?;
        let (label, interval) = match label_part.split_once('[') {
            Some((name, rest)) => {
                let interval_text = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated interval", lineno + 1))?;
                let interval = Interval::parse(interval_text)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                (name.trim(), interval)
            }
            None => {
                // The whole label may itself be `?`, `+`, `*` — treat those as
                // label text, not intervals; intervals require brackets except
                // when attached directly like `label*`.
                match label_part
                    .char_indices()
                    .last()
                    .filter(|(_, c)| matches!(c, '?' | '*' | '+'))
                {
                    Some((idx, c)) if idx > 0 => {
                        let interval = Interval::parse(&c.to_string()).expect("basic interval");
                        (label_part[..idx].trim(), interval)
                    }
                    _ => (label_part, Interval::ONE),
                }
            }
        };
        graph.edge_by_name(source, label, interval, rhs);
    }
    Ok(graph)
}

/// Reject node names containing `-`: such a name cannot be told apart from a
/// `-label->` arrow, so accepting it would silently mis-split some lines at
/// the first arrow instead of where the author intended.
fn check_node_name(name: &str, lineno: usize) -> Result<(), String> {
    if name.contains('-') {
        return Err(format!(
            "line {}: node name `{name}` contains `-`, which is reserved for the \
             `-label->` arrow syntax; rename the node (or ingest RDF data via the \
             N-Triples reader, which has no such restriction)",
            lineno + 1
        ));
    }
    Ok(())
}

/// Serialize a graph in the text format accepted by [`parse_graph`].
pub fn write_graph(graph: &Graph) -> String {
    let mut out = String::new();
    let mut mentioned = vec![false; graph.node_count()];
    for e in graph.edges() {
        mentioned[graph.source(e).index()] = true;
        mentioned[graph.target(e).index()] = true;
        let occur = graph.occur(e);
        if occur == Interval::ONE {
            out.push_str(&format!(
                "{} -{}-> {}\n",
                graph.node_name(graph.source(e)),
                graph.label(e),
                graph.node_name(graph.target(e))
            ));
        } else {
            out.push_str(&format!(
                "{} -{}[{}]-> {}\n",
                graph.node_name(graph.source(e)),
                graph.label(e),
                occur,
                graph.node_name(graph.target(e))
            ));
        }
    }
    for n in graph.nodes() {
        if !mentioned[n.index()] {
            out.push_str(&format!("{}\n", graph.node_name(n)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphKind;

    #[test]
    fn parse_simple_edges() {
        let g = parse_graph(
            "# a comment\n\
             bug1 -descr-> lit1\n\
             bug1 -reportedBy-> user1\n\
             \n\
             user1 -name-> lit2\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.kind(), GraphKind::Simple);
        let bug = g.find_node("bug1").unwrap();
        assert_eq!(g.out_degree(bug), 2);
    }

    #[test]
    fn parse_intervals() {
        let g = parse_graph(
            "t0 -a[*]-> t1\n\
             t1 -b[?]-> t2\n\
             t1 -c[3]-> t3\n\
             t2 -d[[2;5]]-> t3\n\
             t0 -e*-> t2\n",
        )
        .unwrap();
        assert_eq!(g.edge_count(), 5);
        let t0 = g.find_node("t0").unwrap();
        let star = g.out(t0)[0];
        assert_eq!(g.occur(star), Interval::STAR);
        assert_eq!(g.label(star).as_str(), "a");
        let shorthand = g.out(t0)[1];
        assert_eq!(g.occur(shorthand), Interval::STAR);
        assert_eq!(g.label(shorthand).as_str(), "e");
        let t1 = g.find_node("t1").unwrap();
        assert_eq!(g.occur(g.out(t1)[0]), Interval::OPT);
        assert_eq!(g.occur(g.out(t1)[1]), Interval::exactly(3));
        let t2 = g.find_node("t2").unwrap();
        assert_eq!(g.occur(g.out(t2)[0]), Interval::bounded(2, 5));
    }

    #[test]
    fn parse_isolated_nodes() {
        let g = parse_graph("lonely\nother -p-> lonely\nempty_island\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(g.find_node("empty_island").is_some());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_graph("a b c").is_err());
        assert!(parse_graph("a -p->").is_err());
        assert!(parse_graph("a -p[3-> b").is_err());
        assert!(parse_graph("a -p[nope]-> b").is_err());
    }

    #[test]
    fn node_names_with_dashes_are_rejected_clearly() {
        // A bare declaration whose name embeds an arrow would silently parse
        // as an edge; it must error instead.
        for doc in ["my-node\n", "a -p-> x-y\n", "pre-fix -p-> b\n"] {
            let err = parse_graph(doc).unwrap_err();
            assert!(err.contains("contains `-`"), "{doc:?} gave: {err}");
            assert!(err.contains("line 1"), "{doc:?} gave: {err}");
        }
        // Labels may still contain `-`; only node names are restricted.
        let g = parse_graph("a -dashed-label-> b\n").unwrap();
        let a = g.find_node("a").unwrap();
        assert_eq!(g.label(g.out(a)[0]).as_str(), "dashed-label");
    }

    #[test]
    fn roundtrip() {
        let text = "t0 -a[*]-> t1\nt1 -b-> t2\nt1 -c[?]-> t0\nisolated\n";
        let g = parse_graph(text).unwrap();
        let written = write_graph(&g);
        let reparsed = parse_graph(&written).unwrap();
        assert_eq!(reparsed.node_count(), g.node_count());
        assert_eq!(reparsed.edge_count(), g.edge_count());
        for (e1, e2) in g.edges().zip(reparsed.edges()) {
            assert_eq!(g.label(e1), reparsed.label(e2));
            assert_eq!(g.occur(e1), reparsed.occur(e2));
            assert_eq!(
                g.node_name(g.source(e1)),
                reparsed.node_name(reparsed.source(e2))
            );
        }
    }
}
