//! The graph data structure and its subclasses.

use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::sync::OnceLock;

use shapex_rbe::{Bag, Interval};

/// An edge label (predicate name from the fixed alphabet `Σ`).
///
/// Labels are reference-counted strings: cloning is cheap and equality is by
/// content, so labels created independently by a graph and a schema still
/// compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Arc<str>);

impl Label {
    /// Create a label from a string.
    pub fn new(name: impl AsRef<str>) -> Label {
        Label(Arc::from(name.as_ref()))
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether two labels share one backing allocation (i.e. were interned
    /// together). Content equality is plain `==`; this only observes
    /// sharing, e.g. in tests of the interning paths.
    pub fn ptr_eq(&self, other: &Label) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(s)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A dense identifier for an interned label, valid for the graph that
/// created it.
///
/// Every [`Graph`] interns the labels of its edges on construction, so label
/// comparisons inside hot loops (simulation, validation) are integer compares
/// instead of string equality. Ids are assigned in order of first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The position of the label in the graph's label table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An optional interner that deduplicates the backing storage of labels.
///
/// Not required for correctness — labels compare by content — but convenient
/// when building large graphs with a small predicate alphabet.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    known: BTreeMap<String, Label>,
}

impl LabelTable {
    /// An empty table.
    pub fn new() -> LabelTable {
        LabelTable::default()
    }

    /// Intern a label, reusing the existing allocation if present.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(existing) = self.known.get(name) {
            return existing.clone();
        }
        let label = Label::new(name);
        self.known.insert(name.to_owned(), label.clone());
        label
    }

    /// Register an already-allocated label, reusing the table's existing
    /// allocation when one is present and adopting `label`'s otherwise
    /// (unlike [`LabelTable::intern`], which would allocate afresh).
    pub fn adopt(&mut self, label: &Label) -> Label {
        if let Some(existing) = self.known.get(label.as_str()) {
            return existing.clone();
        }
        self.known.insert(label.as_str().to_owned(), label.clone());
        label.clone()
    }

    /// The number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Iterate over the interned `(name, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Label)> {
        self.known.iter()
    }
}

/// A concurrent label interner whose reads are lock-free.
///
/// A long-lived containment session shares one label table across every
/// registered schema and every worker thread (matrix rows, validation
/// fan-outs), so the interner is engineered for the read-mostly case: the
/// predicate alphabet is small and stable after warm-up, and nearly every
/// call re-interns a label that is already present. Labels live in a
/// fixed-capacity open-addressed table of [`OnceLock`] slots, each written at
/// most once, so a lookup probes slots without taking any lock. Writers race
/// through [`OnceLock::get_or_init`]; the loser of a race simply adopts the
/// winner's allocation and keeps probing. Alphabets larger than the slot
/// capacity spill into a mutex-protected overflow [`LabelTable`], trading the
/// (rare) tail of the alphabet for a lock instead of failing.
///
/// Unlike [`LabelTable`], every method takes `&self`, so a
/// `SharedLabelTable` can sit behind an `Arc` (or a `&self` engine) and be
/// hit from many threads at once. Interning is idempotent across threads:
/// all callers asking for the same name get clones of one allocation, no
/// matter how the races resolve.
#[derive(Debug)]
pub struct SharedLabelTable {
    /// Open-addressed probe table; a slot is written at most once.
    slots: Box<[OnceLock<Label>]>,
    /// Spill-over for alphabets larger than `slots` (rare; locked).
    overflow: Mutex<LabelTable>,
    /// Distinct labels interned across `slots` and `overflow`.
    len: AtomicUsize,
}

impl Default for SharedLabelTable {
    fn default() -> Self {
        SharedLabelTable::new()
    }
}

impl SharedLabelTable {
    /// Slot count of [`SharedLabelTable::new`]; holds every realistic
    /// predicate alphabet without touching the overflow lock.
    const DEFAULT_CAPACITY: usize = 1024;

    /// An empty table with the default lock-free capacity.
    pub fn new() -> SharedLabelTable {
        SharedLabelTable::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty table with at least `capacity` lock-free slots (rounded up
    /// to a power of two; labels beyond the capacity fall back to a locked
    /// overflow map rather than failing).
    pub fn with_capacity(capacity: usize) -> SharedLabelTable {
        let slots = capacity.next_power_of_two().max(8);
        SharedLabelTable {
            slots: (0..slots).map(|_| OnceLock::new()).collect(),
            overflow: Mutex::new(LabelTable::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Intern a label by name, reusing the existing allocation if present.
    pub fn intern(&self, name: &str) -> Label {
        self.intern_with(name, &|| Label::new(name))
    }

    /// Register an already-allocated label, reusing the table's existing
    /// allocation when one is present and adopting `label`'s otherwise
    /// (the `&self` counterpart of [`LabelTable::adopt`]).
    pub fn adopt(&self, label: &Label) -> Label {
        self.intern_with(label.as_str(), &|| label.clone())
    }

    /// The shared probe-or-claim loop: find `name` in the probe chain, or
    /// claim the first empty slot with `make()`. Linear probing never
    /// removes entries, so an empty slot proves the name is absent from the
    /// chain; claiming it through `get_or_init` is race-free (a loser of the
    /// race observes the winner's label and either returns it or probes on).
    fn intern_with(&self, name: &str, make: &dyn Fn() -> Label) -> Label {
        let mask = self.slots.len() - 1;
        let mut index = fnv1a(name) as usize & mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[index];
            let stored = slot.get_or_init(|| {
                self.len.fetch_add(1, Ordering::Relaxed);
                make()
            });
            if stored.as_str() == name {
                return stored.clone();
            }
            index = (index + 1) & mask;
        }
        // Every slot holds some other label: spill into the locked overflow.
        // The overflow map is append-only interning state: if a panicking
        // thread poisoned the lock, taking over the guard observes either a
        // completed insert or none at all — recover rather than wedge.
        let mut overflow = self
            .overflow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = overflow.len();
        let label = overflow.adopt(&make());
        if overflow.len() > before {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        label
    }

    /// The number of distinct labels interned (racy under concurrent
    /// writers, exact once they quiesce).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over the label text — cheap, dependency-free, and good enough to
/// spread a predicate alphabet across the probe table.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A node identifier, valid for the graph that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The position of the node in the graph's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge identifier, valid for the graph that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The position of the edge in the graph's edge arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    name: String,
}

#[derive(Debug, Clone)]
struct EdgeData {
    source: NodeId,
    target: NodeId,
    label: Label,
    label_id: LabelId,
    occur: Interval,
}

/// The per-label grouping of one node's adjacency, used as an overlay patch
/// on top of the flat CSR after incremental mutations. `groups` ranges index
/// into the patch's own `edges`.
#[derive(Debug, Clone, Default)]
struct NodeGroups {
    edges: Vec<EdgeId>,
    groups: Vec<(LabelId, u32, u32)>,
}

/// Out- and in-edges of every node grouped by interned label id. The base
/// layout is a flat CSR built in one pass: `edges` holds edge ids sorted by
/// `(node, label id)`, `groups` holds one `(label, start, end)` range per
/// non-empty `(node, label)` pair, and `node_groups` holds one
/// `(start, end)` range into `groups` per node. Mutations after the build do
/// not discard the CSR: the affected nodes get per-node [`NodeGroups`]
/// patches in `overlay`, which shadow the base for those nodes (and cover
/// nodes added after the build, which have no base row at all). When the
/// overlay would grow past a fraction of the graph the whole cache is
/// dropped and rebuilt flat on next access.
#[derive(Debug, Clone, Default)]
struct GroupedEdges {
    edges: Vec<EdgeId>,
    groups: Vec<(LabelId, u32, u32)>,
    node_groups: Vec<(u32, u32)>,
    overlay: HashMap<u32, NodeGroups>,
}

impl GroupedEdges {
    fn build(
        node_count: usize,
        adjacency: &[Vec<EdgeId>],
        label_of: impl Fn(EdgeId) -> LabelId,
    ) -> GroupedEdges {
        let mut edges: Vec<EdgeId> = Vec::with_capacity(adjacency.iter().map(Vec::len).sum());
        let mut groups: Vec<(LabelId, u32, u32)> = Vec::new();
        let mut node_groups: Vec<(u32, u32)> = Vec::with_capacity(node_count);
        let mut scratch: Vec<EdgeId> = Vec::new();
        for node_edges in adjacency.iter() {
            scratch.clear();
            scratch.extend_from_slice(node_edges);
            scratch.sort_by_key(|&e| (label_of(e), e));
            let group_start = groups.len() as u32;
            let mut i = 0;
            while i < scratch.len() {
                let label = label_of(scratch[i]);
                let start = edges.len() as u32;
                while i < scratch.len() && label_of(scratch[i]) == label {
                    edges.push(scratch[i]);
                    i += 1;
                }
                groups.push((label, start, edges.len() as u32));
            }
            node_groups.push((group_start, groups.len() as u32));
        }
        GroupedEdges {
            edges,
            groups,
            node_groups,
            overlay: HashMap::new(),
        }
    }

    /// The `(groups, edges)` backing pair for one node: its overlay patch if
    /// present, its base CSR row if it existed at build time, or empty.
    fn parts(&self, node: NodeId) -> (&[(LabelId, u32, u32)], &[EdgeId]) {
        if let Some(patch) = self.overlay.get(&node.0) {
            (&patch.groups, &patch.edges)
        } else if node.index() < self.node_groups.len() {
            let (gs, ge) = self.node_groups[node.index()];
            (&self.groups[gs as usize..ge as usize], &self.edges)
        } else {
            (&[], &[])
        }
    }

    fn by_label(&self, node: NodeId, label: LabelId) -> &[EdgeId] {
        let (groups, edges) = self.parts(node);
        match groups.binary_search_by_key(&label, |&(l, _, _)| l) {
            Ok(i) => {
                let (_, s, e) = groups[i];
                &edges[s as usize..e as usize]
            }
            Err(_) => &[],
        }
    }

    fn node_groups(&self, node: NodeId) -> impl Iterator<Item = (LabelId, &[EdgeId])> + '_ {
        let (groups, edges) = self.parts(node);
        groups
            .iter()
            .map(move |&(label, s, e)| (label, &edges[s as usize..e as usize]))
    }

    /// Rebuild one node's grouping from its current adjacency list into the
    /// overlay, shadowing the (now stale) base row.
    fn patch(&mut self, node: NodeId, adjacency: &[EdgeId], edge_data: &[EdgeData]) {
        let label_of = |e: EdgeId| edge_data[e.index()].label_id;
        let patch = self.overlay.entry(node.0).or_default();
        patch.edges.clear();
        patch.groups.clear();
        patch.edges.extend_from_slice(adjacency);
        patch.edges.sort_by_key(|&e| (label_of(e), e));
        let mut i = 0;
        while i < patch.edges.len() {
            let label = label_of(patch.edges[i]);
            let start = i as u32;
            while i < patch.edges.len() && label_of(patch.edges[i]) == label {
                i += 1;
            }
            patch.groups.push((label, start, i as u32));
        }
    }
}

#[derive(Debug, Clone, Default)]
struct GroupedAdjacency {
    out: GroupedEdges,
    ins: GroupedEdges,
}

/// Classification of a graph into the paper's subclasses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// All intervals are `1` and no duplicate `(source, label, target)` edges.
    Simple,
    /// All intervals are basic (`1`, `?`, `+`, `*`) but the graph is not simple.
    Shape,
    /// All intervals are singletons `[k;k]` with no duplicate
    /// `(source, label, target)` edges, but the graph is not simple.
    Compressed,
    /// None of the above: arbitrary intervals.
    General,
}

/// Error returned by [`Graph::unpack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnpackError {
    /// The graph is not a compressed graph.
    NotCompressed,
    /// The graph has a directed cycle; the unpacking of a cyclic compressed
    /// graph is not supported by this implementation.
    Cyclic,
    /// The unpacking would exceed the given node limit (it can be exponential
    /// in the size of the compressed graph, Proposition 6.1).
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnpackError::NotCompressed => write!(f, "graph is not a compressed graph"),
            UnpackError::Cyclic => write!(f, "cannot unpack a cyclic compressed graph"),
            UnpackError::TooLarge { limit } => {
                write!(f, "unpacking exceeds the node limit of {limit}")
            }
        }
    }
}

impl std::error::Error for UnpackError {}

/// A directed multigraph with labelled edges carrying occurrence intervals
/// (Definition 2.1 of the paper).
///
/// Labels are interned on construction: every edge carries a dense
/// [`LabelId`] next to its [`Label`], and the graph maintains reverse
/// adjacency plus lazily built per-label groupings of both edge directions,
/// the layout the simulation engine in `shapex-core` consumes.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    out: Vec<Vec<EdgeId>>,
    ins: Vec<Vec<EdgeId>>,
    by_name: BTreeMap<String, NodeId>,
    label_ids: BTreeMap<Label, LabelId>,
    label_names: Vec<Label>,
    grouped: OnceLock<GroupedAdjacency>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// An empty graph whose node and edge arenas are allocated up front.
    ///
    /// Bulk constructions that know their final size (the candidate unfolder
    /// in `shapex-core` builds one graph per deduplicated tree, with the node
    /// count known from the tree's cached size) pay one exact allocation per
    /// arena instead of a geometric growth sequence.
    pub fn with_capacity(nodes: usize, edges: usize) -> Graph {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            ins: Vec::with_capacity(nodes),
            ..Graph::default()
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edge identifiers.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Add a node with a fresh automatically generated name.
    pub fn add_node(&mut self) -> NodeId {
        let name = format!("n{}", self.nodes.len());
        self.add_named_node(name)
    }

    /// Add a node with an explicit name.
    ///
    /// # Panics
    /// Panics if a node with the same name already exists.
    pub fn add_named_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "node `{name}` already exists"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(NodeData { name });
        self.out.push(Vec::new());
        self.ins.push(Vec::new());
        // The grouped adjacency cache survives: nodes beyond its build-time
        // row count read as empty until an edge touches them.
        id
    }

    /// Look up a node by name, creating it if missing.
    pub fn node(&mut self, name: &str) -> NodeId {
        match self.by_name.get(name) {
            Some(id) => *id,
            None => self.add_named_node(name),
        }
    }

    /// Look up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The display name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Add an edge with an explicit occurrence interval. The label is
    /// interned: the stored [`Label`] shares its allocation with every other
    /// edge carrying the same predicate, and the edge receives a dense
    /// [`LabelId`].
    pub fn add_edge_with(
        &mut self,
        source: NodeId,
        label: impl Into<Label>,
        occur: Interval,
        target: NodeId,
    ) -> EdgeId {
        let (label, label_id) = self.intern_label(label.into());
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData {
            source,
            target,
            label,
            label_id,
            occur,
        });
        self.out[source.index()].push(id);
        self.ins[target.index()].push(id);
        if self.grouped.get().is_some() {
            let touched_out = BTreeSet::from([source]);
            let touched_in = BTreeSet::from([target]);
            self.refresh_grouped(&touched_out, &touched_in);
        }
        id
    }

    /// Remove an edge. The edge arena stays dense: the *last* edge is swapped
    /// into the freed slot, so that edge's id is remapped to `edge` while all
    /// other edge ids stay valid. Adjacency (forward, reverse, and grouped)
    /// is maintained incrementally. Returns the removed edge's
    /// `(source, target)`.
    pub fn remove_edge(&mut self, edge: EdgeId) -> (NodeId, NodeId) {
        let mut touched_out = BTreeSet::new();
        let mut touched_in = BTreeSet::new();
        let ends = self.detach_edge(edge, &mut touched_out, &mut touched_in);
        self.refresh_grouped(&touched_out, &touched_in);
        ends
    }

    /// Unlink `edge` from both adjacency sides and swap-remove it from the
    /// arena, recording every node whose out/in list changed (including the
    /// endpoints of the edge that got remapped to fill the hole).
    fn detach_edge(
        &mut self,
        edge: EdgeId,
        touched_out: &mut BTreeSet<NodeId>,
        touched_in: &mut BTreeSet<NodeId>,
    ) -> (NodeId, NodeId) {
        let (source, target) = {
            let data = &self.edges[edge.index()];
            (data.source, data.target)
        };
        self.out[source.index()].retain(|&e| e != edge);
        self.ins[target.index()].retain(|&e| e != edge);
        let last = EdgeId(self.edges.len() as u32 - 1);
        self.edges.swap_remove(edge.index());
        touched_out.insert(source);
        touched_in.insert(target);
        if edge != last {
            let (moved_source, moved_target) = {
                let data = &self.edges[edge.index()];
                (data.source, data.target)
            };
            for slot in self.out[moved_source.index()].iter_mut() {
                if *slot == last {
                    *slot = edge;
                }
            }
            for slot in self.ins[moved_target.index()].iter_mut() {
                if *slot == last {
                    *slot = edge;
                }
            }
            touched_out.insert(moved_source);
            touched_in.insert(moved_target);
        }
        (source, target)
    }

    /// Incrementally repair the grouped adjacency cache (if built) after the
    /// out-lists of `touched_out` / in-lists of `touched_in` changed. When
    /// the accumulated overlay would dominate the base CSR the cache is
    /// dropped instead, and the next reader rebuilds it flat.
    fn refresh_grouped(&mut self, touched_out: &BTreeSet<NodeId>, touched_in: &BTreeSet<NodeId>) {
        let Some(grouped) = self.grouped.get() else {
            return;
        };
        let budget = self.nodes.len() / 4 + 64;
        let projected = grouped.out.overlay.len()
            + grouped.ins.overlay.len()
            + touched_out.len()
            + touched_in.len();
        if projected > budget {
            self.grouped.take();
            return;
        }
        let grouped = self.grouped.get_mut().expect("grouped cache present");
        for &n in touched_out {
            grouped.out.patch(n, &self.out[n.index()], &self.edges);
        }
        for &n in touched_in {
            grouped.ins.patch(n, &self.ins[n.index()], &self.edges);
        }
    }

    /// Apply a batch of triple-level changes, maintaining forward, reverse,
    /// and grouped adjacency incrementally, and report the *dirty* node set:
    /// every node whose outbound neighbourhood changed (sources of added and
    /// removed edges) plus every newly created node. The dirty set is what
    /// an incremental validator must re-examine; it is sorted and
    /// duplicate-free.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> DeltaReport {
        let mut report = DeltaReport::default();
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        let mut touched_out: BTreeSet<NodeId> = BTreeSet::new();
        let mut touched_in: BTreeSet<NodeId> = BTreeSet::new();
        for op in &delta.ops {
            if op.add {
                let source = self.delta_node(&op.source, &mut report, &mut dirty);
                let target = self.delta_node(&op.target, &mut report, &mut dirty);
                let (label, label_id) = self.intern_label(op.label.clone());
                let id = EdgeId(self.edges.len() as u32);
                self.edges.push(EdgeData {
                    source,
                    target,
                    label,
                    label_id,
                    occur: Interval::ONE,
                });
                self.out[source.index()].push(id);
                self.ins[target.index()].push(id);
                report.added_edges += 1;
                dirty.insert(source);
                touched_out.insert(source);
                touched_in.insert(target);
            } else {
                let found = self.find_node(&op.source).and_then(|s| {
                    let t = self.find_node(&op.target)?;
                    let label_id = self.find_label(op.label.as_str())?;
                    self.out[s.index()].iter().copied().find(|&e| {
                        let data = &self.edges[e.index()];
                        data.label_id == label_id && data.target == t
                    })
                });
                match found {
                    Some(edge) => {
                        let (source, _) = self.detach_edge(edge, &mut touched_out, &mut touched_in);
                        report.removed_edges += 1;
                        dirty.insert(source);
                    }
                    None => report.missing_removals += 1,
                }
            }
        }
        if !touched_out.is_empty() || !touched_in.is_empty() {
            self.refresh_grouped(&touched_out, &touched_in);
        }
        report.dirty = dirty.into_iter().collect();
        report
    }

    fn delta_node(
        &mut self,
        name: &str,
        report: &mut DeltaReport,
        dirty: &mut BTreeSet<NodeId>,
    ) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.add_named_node(name);
        report.added_nodes += 1;
        dirty.insert(id);
        id
    }

    fn intern_label(&mut self, label: Label) -> (Label, LabelId) {
        if let Some((existing, &id)) = self.label_ids.get_key_value(&label) {
            return (existing.clone(), id);
        }
        let id = LabelId(self.label_names.len() as u32);
        self.label_ids.insert(label.clone(), id);
        self.label_names.push(label.clone());
        (label, id)
    }

    /// Add a plain edge with interval `1` (the only kind allowed in simple
    /// graphs).
    pub fn add_edge(&mut self, source: NodeId, label: impl Into<Label>, target: NodeId) -> EdgeId {
        self.add_edge_with(source, label, Interval::ONE, target)
    }

    /// Convenience: add an interval edge between nodes addressed by name
    /// (creating the nodes if necessary).
    pub fn edge_by_name(
        &mut self,
        source: &str,
        label: impl Into<Label>,
        occur: Interval,
        target: &str,
    ) -> EdgeId {
        let s = self.node(source);
        let t = self.node(target);
        self.add_edge_with(s, label, occur, t)
    }

    /// The origin node of an edge.
    pub fn source(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].source
    }

    /// The end point node of an edge.
    pub fn target(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.index()].target
    }

    /// The predicate label of an edge.
    pub fn label(&self, edge: EdgeId) -> &Label {
        &self.edges[edge.index()].label
    }

    /// The interned label id of an edge.
    pub fn label_id(&self, edge: EdgeId) -> LabelId {
        self.edges[edge.index()].label_id
    }

    /// The label behind an interned id.
    pub fn label_of(&self, id: LabelId) -> &Label {
        &self.label_names[id.index()]
    }

    /// Look up the interned id of a label by name.
    pub fn find_label(&self, name: &str) -> Option<LabelId> {
        self.label_ids.get(name).copied()
    }

    /// Number of distinct labels used by the graph's edges.
    pub fn label_count(&self) -> usize {
        self.label_names.len()
    }

    /// Iterate over all interned label ids, in order of first use.
    pub fn label_ids(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.label_names.len() as u32).map(LabelId)
    }

    /// The occurrence interval of an edge.
    pub fn occur(&self, edge: EdgeId) -> Interval {
        self.edges[edge.index()].occur
    }

    /// The outgoing edges of a node (`out_G(n)` in the paper).
    pub fn out(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// The out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// The incoming edges of a node (reverse adjacency).
    pub fn ins(&self, node: NodeId) -> &[EdgeId] {
        &self.ins[node.index()]
    }

    /// The in-degree of a node.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.ins[node.index()].len()
    }

    fn grouped(&self) -> &GroupedAdjacency {
        self.grouped.get_or_init(|| GroupedAdjacency {
            out: GroupedEdges::build(self.nodes.len(), &self.out, |e| self.label_id(e)),
            ins: GroupedEdges::build(self.nodes.len(), &self.ins, |e| self.label_id(e)),
        })
    }

    /// The outgoing edges of a node carrying a given label, contiguous in the
    /// grouped adjacency cache.
    pub fn out_by_label(&self, node: NodeId, label: LabelId) -> &[EdgeId] {
        self.grouped().out.by_label(node, label)
    }

    /// The outgoing edges of a node grouped by label id (ascending).
    pub fn out_groups(&self, node: NodeId) -> impl Iterator<Item = (LabelId, &[EdgeId])> + '_ {
        self.grouped().out.node_groups(node)
    }

    /// The incoming edges of a node carrying a given label, contiguous in the
    /// grouped adjacency cache.
    pub fn in_by_label(&self, node: NodeId, label: LabelId) -> &[EdgeId] {
        self.grouped().ins.by_label(node, label)
    }

    /// The incoming edges of a node grouped by label id (ascending).
    pub fn in_groups(&self, node: NodeId) -> impl Iterator<Item = (LabelId, &[EdgeId])> + '_ {
        self.grouped().ins.node_groups(node)
    }

    /// The outbound neighbourhood of a node as a bag over `(label, target)`
    /// pairs, counting each edge with the multiplicity given by its singleton
    /// interval (or `1` for non-singleton intervals).
    pub fn out_bag(&self, node: NodeId) -> Bag<(Label, NodeId)> {
        let mut bag = Bag::new();
        for &e in self.out(node) {
            let mult = self.occur(e).singleton().unwrap_or(1);
            bag.add((self.label(e).clone(), self.target(e)), mult);
        }
        bag
    }

    /// The distinct labels used by the graph, in sorted order.
    pub fn labels(&self) -> Vec<Label> {
        self.label_ids.keys().cloned().collect()
    }

    /// Approximate heap footprint of the graph in bytes: arena capacities
    /// times element sizes, node-name strings, the name/label indexes (at a
    /// flat per-entry estimate for the tree overhead), and the grouped
    /// adjacency if it has been built. Interned [`Label`]s are counted as
    /// their `Arc` handle only — the string allocation belongs to whichever
    /// table interned it. This feeds the cache accounting of the containment
    /// engine; it is a conservative estimate, not allocator truth (lazily
    /// built structures are counted once they exist).
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        // Amortised B-tree node overhead per map entry (key/value inline).
        const MAP_ENTRY: usize = 32;
        let mut bytes = self.nodes.capacity() * size_of::<NodeData>()
            + self.edges.capacity() * size_of::<EdgeData>()
            + self.out.capacity() * size_of::<Vec<EdgeId>>()
            + self.ins.capacity() * size_of::<Vec<EdgeId>>();
        bytes += self
            .out
            .iter()
            .chain(self.ins.iter())
            .map(|v| v.capacity() * size_of::<EdgeId>())
            .sum::<usize>();
        bytes += self.nodes.iter().map(|n| n.name.capacity()).sum::<usize>();
        bytes += self
            .by_name
            .keys()
            .map(|name| name.capacity() + size_of::<NodeId>() + MAP_ENTRY)
            .sum::<usize>();
        bytes += self.label_ids.len() * (size_of::<Label>() + size_of::<LabelId>() + MAP_ENTRY);
        bytes += self.label_names.capacity() * size_of::<Label>();
        if let Some(grouped) = self.grouped.get() {
            for side in [&grouped.out, &grouped.ins] {
                bytes += side.edges.capacity() * size_of::<EdgeId>()
                    + side.groups.capacity() * size_of::<(LabelId, u32, u32)>()
                    + side.node_groups.capacity() * size_of::<(u32, u32)>();
                bytes += side
                    .overlay
                    .values()
                    .map(|patch| {
                        MAP_ENTRY
                            + patch.edges.capacity() * size_of::<EdgeId>()
                            + patch.groups.capacity() * size_of::<(LabelId, u32, u32)>()
                    })
                    .sum::<usize>();
            }
        }
        bytes
    }

    /// Whether the graph is a *simple graph* (class `G₀`): every edge has
    /// interval `1` and no two edges share source, label, and target.
    pub fn is_simple(&self) -> bool {
        if !self.edges.iter().all(|e| e.occur == Interval::ONE) {
            return false;
        }
        self.no_parallel_duplicates()
    }

    /// Whether the graph is a *shape graph* (class `ShEx₀`): every edge uses a
    /// basic interval.
    pub fn is_shape_graph(&self) -> bool {
        self.edges.iter().all(|e| e.occur.is_basic())
    }

    /// Whether the graph is a *compressed graph*: every edge uses a singleton
    /// interval `[k;k]` and no two edges share source, label, and target.
    pub fn is_compressed(&self) -> bool {
        self.edges.iter().all(|e| e.occur.singleton().is_some()) && self.no_parallel_duplicates()
    }

    fn no_parallel_duplicates(&self) -> bool {
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if !seen.insert((e.source, e.label_id, e.target)) {
                return false;
            }
        }
        true
    }

    /// Classify the graph.
    pub fn kind(&self) -> GraphKind {
        if self.is_simple() {
            GraphKind::Simple
        } else if self.is_shape_graph() {
            GraphKind::Shape
        } else if self.is_compressed() {
            GraphKind::Compressed
        } else {
            GraphKind::General
        }
    }

    /// Nodes in a topological order, or `None` if the graph has a directed
    /// cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.target.index()] += 1;
        }
        let mut queue: Vec<NodeId> = self.nodes().filter(|v| indegree[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &e in self.out(v) {
                let t = self.target(e);
                indegree[t.index()] -= 1;
                if indegree[t.index()] == 0 {
                    queue.push(t);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Unpack a compressed graph into a simple graph (Proposition 6.1).
    ///
    /// Every node is copied enough times that each copy receives at most one
    /// incoming edge while keeping the same outbound neighbourhood. The result
    /// can be exponentially larger than the input, so a `node_limit` caps the
    /// expansion. Only acyclic compressed graphs are supported.
    pub fn unpack(&self, node_limit: usize) -> Result<Graph, UnpackError> {
        if !self.is_compressed() {
            return Err(UnpackError::NotCompressed);
        }
        let order = self.topological_order().ok_or(UnpackError::Cyclic)?;

        // Copies needed per node: one per incoming (unpacked) edge, at least 1.
        let mut copies: Vec<u64> = vec![0; self.node_count()];
        for &v in &order {
            let own = copies[v.index()].max(1);
            copies[v.index()] = own;
            for &e in self.out(v) {
                let mult = self.occur(e).singleton().expect("compressed graph");
                let t = self.target(e);
                copies[t.index()] += own * mult;
            }
        }
        let total: u64 = self.nodes().map(|v| copies[v.index()].max(1)).sum();
        if total as usize > node_limit {
            return Err(UnpackError::TooLarge { limit: node_limit });
        }

        let mut out = Graph::new();
        // Allocate all copies.
        let mut copy_ids: Vec<Vec<NodeId>> = Vec::with_capacity(self.node_count());
        for v in self.nodes() {
            let mut ids = Vec::new();
            for i in 0..copies[v.index()].max(1) {
                ids.push(out.add_named_node(format!("{}#{}", self.node_name(v), i)));
            }
            copy_ids.push(ids);
        }
        // Wire the outbound neighbourhood of every copy, consuming target
        // copies so that each receives at most one incoming edge.
        let mut next_free: Vec<usize> = vec![0; self.node_count()];
        for &v in order.iter() {
            for copy_index in 0..copies[v.index()].max(1) {
                let source_copy = copy_ids[v.index()][copy_index as usize];
                for &e in self.out(v) {
                    let mult = self.occur(e).singleton().expect("compressed graph");
                    let t = self.target(e);
                    for _ in 0..mult {
                        let slot = next_free[t.index()];
                        next_free[t.index()] += 1;
                        let target_copy = copy_ids[t.index()][slot];
                        out.add_edge(source_copy, self.label(e).clone(), target_copy);
                    }
                }
            }
        }
        debug_assert!(out.is_simple());
        Ok(out)
    }
}

/// One queued change in a [`GraphDelta`].
#[derive(Debug, Clone)]
struct DeltaOp {
    add: bool,
    source: String,
    label: Label,
    target: String,
}

/// A batch of triple-level changes to apply atomically to a [`Graph`] via
/// [`Graph::apply_delta`].
///
/// Changes are addressed by node *name* and label text, so a delta can be
/// built straight from a stream of parsed triples without knowing the
/// graph's ids — missing nodes are created on application. Added edges carry
/// interval `1` (deltas target simple graphs, the class validation is
/// defined on); removals match one `(source, label, target)` edge and are
/// counted as misses when no such edge exists. Labels are interned inside
/// the delta, so a 100k-triple batch over a small predicate alphabet
/// allocates each label once.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
    labels: LabelTable,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Queue the addition of a `source -label-> target` edge with interval
    /// `1`, creating the endpoint nodes if they do not exist yet.
    pub fn add_edge(&mut self, source: impl Into<String>, label: &str, target: impl Into<String>) {
        let label = self.labels.intern(label);
        self.ops.push(DeltaOp {
            add: true,
            source: source.into(),
            label,
            target: target.into(),
        });
    }

    /// Queue the removal of one `(source, label, target)` edge.
    pub fn remove_edge(
        &mut self,
        source: impl Into<String>,
        label: &str,
        target: impl Into<String>,
    ) {
        let label = self.labels.intern(label);
        self.ops.push(DeltaOp {
            add: false,
            source: source.into(),
            label,
            target: target.into(),
        });
    }

    /// Queue an RDF triple as an edge addition — the glue between the
    /// N-Triples stream and the graph.
    pub fn add_triple(&mut self, subject: &str, predicate: &str, object: &str) {
        self.add_edge(subject, predicate, object);
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop all queued operations, keeping the label interner warm.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

/// What [`Graph::apply_delta`] did, including the dirty node set an
/// incremental validator needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Nodes whose outbound neighbourhood changed, plus newly created nodes;
    /// sorted and duplicate-free.
    pub dirty: Vec<NodeId>,
    /// Nodes created by the delta.
    pub added_nodes: usize,
    /// Edges added.
    pub added_edges: usize,
    /// Edges removed.
    pub removed_edges: usize,
    /// Removal requests that matched no edge (applied as no-ops).
    pub missing_removals: usize,
}

/// A reusable scratch for constructing many graphs in a row.
///
/// The builder owns the buffers that are *not* part of the produced graph —
/// currently the node-name rendering buffer — so a loop that materialises one
/// graph per candidate (the unfolding search of `shapex-core`) renders every
/// name into one reused allocation and starts each graph with exact-capacity
/// arenas via [`GraphBuilder::start`]. The produced [`Graph`] is fully owned
/// by the caller; the builder can immediately start the next one.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    name: String,
}

impl GraphBuilder {
    /// A builder with an empty scratch.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Begin a graph with exact-capacity node and edge arenas.
    pub fn start(&self, nodes: usize, edges: usize) -> Graph {
        Graph::with_capacity(nodes, edges)
    }

    /// Add a named node, rendering the name through the builder's reused
    /// buffer (the graph still stores an owned, exactly sized copy).
    ///
    /// # Panics
    /// Panics if a node with the same name already exists (see
    /// [`Graph::add_named_node`]).
    pub fn named_node(&mut self, graph: &mut Graph, name: fmt::Arguments<'_>) -> NodeId {
        use fmt::Write as _;
        self.name.clear();
        let _ = self.name.write_fmt(name);
        graph.add_named_node(self.name.as_str())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph with {} nodes, {} edges:",
            self.node_count(),
            self.edge_count()
        )?;
        for e in self.edges() {
            let occur = self.occur(e);
            if occur == Interval::ONE {
                writeln!(
                    f,
                    "  {} -{}-> {}",
                    self.node_name(self.source(e)),
                    self.label(e),
                    self.node_name(self.target(e))
                )?;
            } else {
                writeln!(
                    f,
                    "  {} -{}[{}]-> {}",
                    self.node_name(self.source(e)),
                    self.label(e),
                    occur,
                    self.node_name(self.target(e))
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        g.add_edge(a, "p", b);
        g.add_edge(b, "q", c);
        g.add_edge(c, "r", a);
        g
    }

    #[test]
    fn node_and_edge_accessors() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        assert_eq!(g.node("a"), a, "node() reuses existing names");
        let e = g.add_edge_with(a, "p", Interval::STAR, b);
        assert_eq!(g.source(e), a);
        assert_eq!(g.target(e), b);
        assert_eq!(g.label(e).as_str(), "p");
        assert_eq!(g.occur(e), Interval::STAR);
        assert_eq!(g.out(a), &[e]);
        assert_eq!(g.out_degree(b), 0);
        assert_eq!(g.node_name(a), "a");
        assert_eq!(g.find_node("b"), Some(b));
        assert_eq!(g.find_node("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_names_panic() {
        let mut g = Graph::new();
        g.add_named_node("x");
        g.add_named_node("x");
    }

    #[test]
    fn kind_classification() {
        let mut simple = triangle();
        assert_eq!(simple.kind(), GraphKind::Simple);
        assert!(simple.is_simple() && simple.is_shape_graph() && simple.is_compressed());

        // Adding a `*` edge turns it into a (non-simple) shape graph.
        let a = simple.node("a");
        let b = simple.node("b");
        simple.add_edge_with(a, "s", Interval::STAR, b);
        assert_eq!(simple.kind(), GraphKind::Shape);

        // A graph with a singleton interval [3;3] is compressed.
        let mut compressed = Graph::new();
        let x = compressed.node("x");
        let y = compressed.node("y");
        compressed.add_edge_with(x, "p", Interval::exactly(3), y);
        assert_eq!(compressed.kind(), GraphKind::Compressed);

        // Arbitrary intervals are the general case.
        let mut general = Graph::new();
        let x = general.node("x");
        let y = general.node("y");
        general.add_edge_with(x, "p", Interval::bounded(2, 5), y);
        assert_eq!(general.kind(), GraphKind::General);

        // Duplicate (source, label, target) edges are not simple.
        let mut dup = Graph::new();
        let x = dup.node("x");
        let y = dup.node("y");
        dup.add_edge(x, "p", y);
        dup.add_edge(x, "p", y);
        assert!(!dup.is_simple());
        assert_eq!(dup.kind(), GraphKind::Shape);
    }

    #[test]
    fn out_bag_counts_multiplicities() {
        let mut g = Graph::new();
        let x = g.node("x");
        let y = g.node("y");
        let z = g.node("z");
        g.add_edge_with(x, "p", Interval::exactly(3), y);
        g.add_edge(x, "p", z);
        let bag = g.out_bag(x);
        assert_eq!(bag.count(&(Label::new("p"), y)), 3);
        assert_eq!(bag.count(&(Label::new("p"), z)), 1);
        assert_eq!(bag.total(), 4);
    }

    #[test]
    fn topological_order_detects_cycles() {
        let g = triangle();
        assert!(g.topological_order().is_none());
        let mut dag = Graph::new();
        let a = dag.node("a");
        let b = dag.node("b");
        let c = dag.node("c");
        dag.add_edge(a, "p", b);
        dag.add_edge(a, "p", c);
        dag.add_edge(b, "q", c);
        let order = dag.topological_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos = |n: NodeId| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(b) < pos(c));
    }

    #[test]
    fn unpacking_a_chain_of_multiplicities() {
        // root -a[2]-> mid -b[3]-> leaf: the unpacking has 1 + 2 + 6 nodes.
        let mut g = Graph::new();
        let root = g.node("root");
        let mid = g.node("mid");
        let leaf = g.node("leaf");
        g.add_edge_with(root, "a", Interval::exactly(2), mid);
        g.add_edge_with(mid, "b", Interval::exactly(3), leaf);
        let unpacked = g.unpack(100).unwrap();
        assert!(unpacked.is_simple());
        assert_eq!(unpacked.node_count(), 1 + 2 + 6);
        assert_eq!(unpacked.edge_count(), 2 + 6);
        // Every unpacked node has at most one incoming edge.
        let mut incoming = vec![0usize; unpacked.node_count()];
        for e in unpacked.edges() {
            incoming[unpacked.target(e).index()] += 1;
        }
        assert!(incoming.iter().all(|&c| c <= 1));
    }

    #[test]
    fn unpacking_errors() {
        let cyclic = triangle();
        // A simple cyclic graph is compressed (all intervals are [1;1]) but
        // cyclic unpacking is rejected.
        assert_eq!(cyclic.unpack(10).unwrap_err(), UnpackError::Cyclic);

        let mut general = Graph::new();
        let x = general.node("x");
        let y = general.node("y");
        general.add_edge_with(x, "p", Interval::STAR, y);
        assert_eq!(general.unpack(10).unwrap_err(), UnpackError::NotCompressed);

        let mut big = Graph::new();
        let a = big.node("a");
        let b = big.node("b");
        big.add_edge_with(a, "p", Interval::exactly(1000), b);
        assert_eq!(
            big.unpack(10).unwrap_err(),
            UnpackError::TooLarge { limit: 10 }
        );
    }

    #[test]
    fn label_table_interns() {
        let mut table = LabelTable::new();
        let a1 = table.intern("a");
        let a2 = table.intern("a");
        let b = table.intern("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(table.len(), 2);
        // Labels created outside the table still compare equal by content.
        assert_eq!(a1, Label::new("a"));
    }

    #[test]
    fn shared_label_table_interns_and_adopts() {
        let table = SharedLabelTable::new();
        let a1 = table.intern("a");
        let a2 = table.intern("a");
        assert!(a1.ptr_eq(&a2), "same name, one allocation");
        let b = Label::new("b");
        let adopted = table.adopt(&b);
        assert!(adopted.ptr_eq(&b), "first adoption keeps the caller's arc");
        assert!(table.intern("b").ptr_eq(&b), "later interns reuse it");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn shared_label_table_spills_into_overflow() {
        // Capacity 8: the ninth distinct label must take the overflow path
        // and still intern correctly.
        let table = SharedLabelTable::with_capacity(8);
        let labels: Vec<Label> = (0..12).map(|i| table.intern(&format!("l{i}"))).collect();
        assert_eq!(table.len(), 12);
        for (i, label) in labels.iter().enumerate() {
            let again = table.intern(&format!("l{i}"));
            assert!(again.ptr_eq(label), "l{i} must reuse its allocation");
        }
        assert_eq!(table.len(), 12, "re-interning adds nothing");
    }

    #[test]
    fn shared_label_table_is_consistent_across_threads() {
        let table = SharedLabelTable::with_capacity(8);
        let names: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for name in &names {
                        let _ = table.intern(name);
                    }
                });
            }
        });
        assert_eq!(table.len(), names.len());
        for name in &names {
            // Two fresh interns agree with each other — whoever won the
            // original race, there is exactly one allocation per name now.
            assert!(table.intern(name).ptr_eq(&table.intern(name)));
        }
    }

    #[test]
    fn labels_are_interned_with_dense_ids() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let e1 = g.add_edge(a, "p", b);
        let e2 = g.add_edge(b, "q", a);
        let e3 = g.add_edge(b, "p", b);
        assert_eq!(g.label_count(), 2);
        assert_eq!(g.label_id(e1), g.label_id(e3));
        assert_ne!(g.label_id(e1), g.label_id(e2));
        assert_eq!(g.find_label("p"), Some(g.label_id(e1)));
        assert_eq!(g.find_label("zzz"), None);
        assert_eq!(g.label_of(g.label_id(e2)).as_str(), "q");
        // The stored labels share one allocation per distinct predicate.
        assert!(Arc::ptr_eq(&g.label(e1).0, &g.label(e3).0));
        assert_eq!(g.label_ids().count(), 2);
    }

    #[test]
    fn reverse_and_grouped_adjacency() {
        let mut g = Graph::new();
        let hub = g.node("hub");
        let x = g.node("x");
        let y = g.node("y");
        let e1 = g.add_edge(hub, "p", x);
        let e2 = g.add_edge(hub, "q", y);
        let e3 = g.add_edge(hub, "p", y);
        let e4 = g.add_edge(x, "p", y);
        assert_eq!(g.ins(y), &[e2, e3, e4]);
        assert_eq!(g.in_degree(x), 1);
        assert_eq!(g.in_degree(hub), 0);
        let p = g.find_label("p").unwrap();
        let q = g.find_label("q").unwrap();
        assert_eq!(g.out_by_label(hub, p), &[e1, e3]);
        assert_eq!(g.out_by_label(hub, q), &[e2]);
        assert_eq!(g.in_by_label(y, p), &[e3, e4]);
        assert_eq!(g.in_by_label(y, q), &[e2]);
        assert!(g.out_by_label(y, p).is_empty());
        let groups: Vec<(LabelId, usize)> =
            g.out_groups(hub).map(|(l, es)| (l, es.len())).collect();
        assert_eq!(groups, vec![(p, 2), (q, 1)]);
        // The cache is invalidated by mutation.
        let e5 = g.add_edge(y, "p", x);
        assert_eq!(g.in_by_label(x, p), &[e1, e5]);
        assert_eq!(g.in_groups(x).count(), 1);
    }

    #[test]
    fn builder_reuses_its_name_buffer_across_graphs() {
        let mut builder = GraphBuilder::new();
        for round in 0..3 {
            let mut g = builder.start(2, 1);
            let a = builder.named_node(&mut g, format_args!("a_{round}"));
            let b = builder.named_node(&mut g, format_args!("b_{round}"));
            g.add_edge(a, "p", b);
            assert_eq!(g.node_name(a), format!("a_{round}"));
            assert_eq!(g.find_node(&format!("b_{round}")), Some(b));
            assert_eq!(g.edge_count(), 1);
        }
        // with_capacity graphs behave exactly like fresh ones.
        let g = Graph::with_capacity(4, 4);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn display_contains_edges() {
        let g = triangle();
        let text = g.to_string();
        assert!(text.contains("a -p-> b"));
        assert!(text.contains("3 nodes"));
    }

    /// The grouped adjacency of `g` must match a from-scratch rebuild of the
    /// same edge set, for every node and label, in both directions.
    fn assert_grouped_consistent(g: &Graph) {
        let mut fresh = Graph::new();
        for v in g.nodes() {
            fresh.add_named_node(g.node_name(v));
        }
        for e in g.edges() {
            fresh.add_edge_with(g.source(e), g.label(e).clone(), g.occur(e), g.target(e));
        }
        for v in g.nodes() {
            let ours: Vec<(String, BTreeSet<u32>)> = g
                .out_groups(v)
                .map(|(l, es)| {
                    (
                        g.label_of(l).as_str().to_string(),
                        es.iter().map(|e| e.0).collect(),
                    )
                })
                .collect();
            let theirs: Vec<(String, BTreeSet<u32>)> = fresh
                .out_groups(v)
                .map(|(l, es)| {
                    (
                        fresh.label_of(l).as_str().to_string(),
                        es.iter().map(|e| e.0).collect(),
                    )
                })
                .collect();
            assert_eq!(ours, theirs, "out groups of {} diverged", g.node_name(v));
            let in_ours: BTreeSet<u32> = g.ins(v).iter().map(|e| e.0).collect();
            let in_theirs: BTreeSet<u32> = fresh.ins(v).iter().map(|e| e.0).collect();
            assert_eq!(in_ours, in_theirs, "ins of {} diverged", g.node_name(v));
            for l in g.label_ids() {
                let by: BTreeSet<u32> = g.in_by_label(v, l).iter().map(|e| e.0).collect();
                let by_fresh: BTreeSet<u32> = fresh
                    .find_label(g.label_of(l).as_str())
                    .map(|fl| fresh.in_by_label(v, fl).iter().map(|e| e.0).collect())
                    .unwrap_or_default();
                assert_eq!(by, by_fresh, "in_by_label of {} diverged", g.node_name(v));
            }
        }
    }

    #[test]
    fn apply_delta_adds_and_removes_with_dirty_report() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        g.add_edge(a, "p", b);
        // Force the grouped cache so the delta exercises incremental repair.
        let p = g.find_label("p").unwrap();
        assert_eq!(g.out_by_label(a, p).len(), 1);

        let mut delta = GraphDelta::new();
        delta.add_edge("a", "p", "c");
        delta.add_edge("c", "q", "b");
        delta.remove_edge("a", "p", "b");
        delta.remove_edge("a", "zzz", "b"); // no such edge
        assert_eq!(delta.len(), 4);
        let report = g.apply_delta(&delta);

        assert_eq!(report.added_nodes, 1);
        assert_eq!(report.added_edges, 2);
        assert_eq!(report.removed_edges, 1);
        assert_eq!(report.missing_removals, 1);
        let c = g.find_node("c").unwrap();
        assert_eq!(report.dirty, vec![a, c], "sources of changes + new nodes");

        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.target(g.out(a)[0]), c);
        assert_eq!(g.in_degree(b), 1);
        assert_grouped_consistent(&g);
    }

    #[test]
    fn remove_edge_remaps_the_last_edge_id() {
        let mut g = Graph::new();
        let a = g.node("a");
        let b = g.node("b");
        let c = g.node("c");
        let e0 = g.add_edge(a, "p", b);
        let _e1 = g.add_edge(b, "q", c);
        let e2 = g.add_edge(c, "r", a);
        // Build grouped before removal to exercise the moved-edge repair.
        let r = g.find_label("r").unwrap();
        assert_eq!(g.out_by_label(c, r), &[e2]);

        assert_eq!(g.remove_edge(e0), (a, b));
        assert_eq!(g.edge_count(), 2);
        // e2 (the last edge) now lives at id e0.
        assert_eq!(g.source(e0), c);
        assert_eq!(g.label(e0).as_str(), "r");
        assert_eq!(g.out(c), &[e0]);
        assert_eq!(g.ins(a), &[e0]);
        assert_eq!(g.out_by_label(c, r), &[e0]);
        assert!(g.out_by_label(a, g.find_label("p").unwrap()).is_empty());
        assert_grouped_consistent(&g);
    }

    #[test]
    fn grouped_overlay_collapses_to_a_full_rebuild_when_large() {
        let mut g = Graph::new();
        for i in 0..16 {
            g.node(&format!("n{i}"));
        }
        let n0 = g.find_node("n0").unwrap();
        let _ = g.out_groups(n0).count(); // build the cache
                                          // Touch far more nodes than the overlay budget (16/4 + 64 = 68
                                          // requires > 68 touched entries): 40 sources + 40 targets per side.
        let mut delta = GraphDelta::new();
        for i in 0..80 {
            delta.add_edge(format!("s{i}"), "p", format!("t{i}"));
        }
        let report = g.apply_delta(&delta);
        assert_eq!(report.added_edges, 80);
        assert_eq!(report.added_nodes, 160);
        assert_grouped_consistent(&g);
    }

    #[test]
    fn deltas_keep_new_nodes_visible_in_grouped_queries() {
        let mut g = Graph::new();
        let a = g.node("a");
        g.add_edge(a, "p", a);
        let p = g.find_label("p").unwrap();
        assert_eq!(g.out_by_label(a, p).len(), 1);
        // A node added after the grouped build has no base row.
        let mut delta = GraphDelta::new();
        delta.add_edge("b", "p", "a");
        g.apply_delta(&delta);
        let b = g.find_node("b").unwrap();
        assert_eq!(g.out_by_label(b, p).len(), 1);
        assert_eq!(g.in_by_label(a, p).len(), 2);
        assert_eq!(g.out_groups(b).count(), 1);
    }
}
