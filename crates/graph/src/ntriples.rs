//! Push-based streaming parser for the N-Triples serialisation of RDF.
//!
//! [`NTriplesParser`] is a chunk-feed parser: callers push arbitrary byte
//! slices through [`NTriplesParser::feed`] and receive one callback per
//! complete triple, with the three terms borrowed either from the input chunk
//! (the zero-copy fast path for escape-free terms) or from a per-line decode
//! of the escape sequences. Only the current *incomplete* line is ever
//! buffered, and that buffer is bounded — streaming a multi-gigabyte dump
//! holds at most one line of it in parser memory, no matter how the dump is
//! chunked.
//!
//! The grammar is the W3C N-Triples core: one `subject predicate object .`
//! statement per line, `#` comments, blank lines, IRIs in angle brackets,
//! `_:` blank node labels, and literals with language tags or datatypes.
//! String escapes (`\t \b \n \r \f \" \' \\ \uXXXX \UXXXXXXXX`) are decoded
//! in literals; numeric escapes are also accepted inside IRIs.
//!
//! Terms are rendered to node-name strings the rest of the crate consumes:
//! IRIs lose their angle brackets, blank nodes keep their `_:` prefix, and
//! literals keep their full quoted form (plus any `@lang` / `^^<iri>`
//! suffix) so distinct literals stay distinct graph nodes.

use std::borrow::Cow;
use std::fmt;

/// One parsed statement, borrowed from the parser for the duration of the
/// callback. `subject`/`object` are node names, `predicate` is a label name
/// (see the [module docs](self) for the rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triple<'a> {
    /// The subject term, rendered as a node name.
    pub subject: &'a str,
    /// The predicate IRI text (without angle brackets).
    pub predicate: &'a str,
    /// The object term, rendered as a node name.
    pub object: &'a str,
}

/// A parse failure, located at the 1-based input line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NTriplesError {
    /// 1-based line number of the offending statement.
    pub line: u64,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for NTriplesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NTriplesError {}

/// Default bound on the internal line buffer (and on any single line).
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// A push-based, bounded-memory N-Triples parser.
///
/// Feed input in arbitrary chunks with [`NTriplesParser::feed`]; call
/// [`NTriplesParser::finish`] once the input ends to flush a final line that
/// has no trailing newline. The parser retains only the current incomplete
/// line between feeds ([`NTriplesParser::buffered_bytes`]), capped at the
/// configured maximum — a line longer than the cap is an error, never an
/// unbounded allocation. After an error the parser state is unspecified;
/// start a fresh parser to re-ingest.
#[derive(Debug)]
pub struct NTriplesParser {
    /// The current incomplete line (input since the last newline).
    buf: Vec<u8>,
    /// 1-based number of the line currently being assembled.
    line: u64,
    /// Upper bound on `buf` and on any single line's byte length.
    max_line_bytes: usize,
    /// Total triples emitted so far.
    triples: u64,
}

impl Default for NTriplesParser {
    fn default() -> Self {
        NTriplesParser::new()
    }
}

impl NTriplesParser {
    /// A parser with the default line-buffer bound.
    pub fn new() -> NTriplesParser {
        NTriplesParser {
            buf: Vec::new(),
            line: 1,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            triples: 0,
        }
    }

    /// Override the line-buffer bound (minimum 64 bytes).
    pub fn with_max_line_bytes(mut self, max: usize) -> NTriplesParser {
        self.max_line_bytes = max.max(64);
        self
    }

    /// Bytes of input currently buffered (the incomplete trailing line).
    /// Never exceeds the configured line bound — this is the whole memory
    /// footprint the parser retains between feeds.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Total triples emitted across all feeds so far.
    pub fn triples(&self) -> u64 {
        self.triples
    }

    /// Push one chunk of input, invoking `sink` once per complete triple.
    /// Returns the number of triples emitted by this call. Comments and
    /// blank lines are skipped; a line split across chunks is assembled in
    /// the bounded internal buffer.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        mut sink: impl FnMut(Triple<'_>),
    ) -> Result<u64, NTriplesError> {
        let mut emitted = 0u64;
        while let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            let (head, rest) = chunk.split_at(nl);
            if self.buf.is_empty() {
                // Fast path: the whole line sits in the caller's chunk.
                emitted += self.parse_line(head, &mut sink)?;
            } else {
                self.reserve(head.len())?;
                self.buf.extend_from_slice(head);
                let buf = std::mem::take(&mut self.buf);
                let result = self.parse_line(&buf, &mut sink);
                self.buf = buf;
                self.buf.clear();
                emitted += result?;
            }
            self.line += 1;
            chunk = &rest[1..];
        }
        if !chunk.is_empty() {
            self.reserve(chunk.len())?;
            self.buf.extend_from_slice(chunk);
        }
        self.triples += emitted;
        Ok(emitted)
    }

    /// Flush a final line that arrived without a trailing newline. Returns
    /// the number of triples emitted (0 or 1).
    pub fn finish(&mut self, mut sink: impl FnMut(Triple<'_>)) -> Result<u64, NTriplesError> {
        if self.buf.is_empty() {
            return Ok(0);
        }
        let buf = std::mem::take(&mut self.buf);
        let result = self.parse_line(&buf, &mut sink);
        self.buf = buf;
        self.buf.clear();
        let emitted = result?;
        self.line += 1;
        self.triples += emitted;
        Ok(emitted)
    }

    fn reserve(&mut self, incoming: usize) -> Result<(), NTriplesError> {
        if self.buf.len() + incoming > self.max_line_bytes {
            return Err(self.too_long());
        }
        Ok(())
    }

    fn too_long(&self) -> NTriplesError {
        NTriplesError {
            line: self.line,
            message: format!("line exceeds the {}-byte line buffer", self.max_line_bytes),
        }
    }

    /// Parse one complete line (no newline). Emits 0 or 1 triples.
    fn parse_line(
        &mut self,
        line: &[u8],
        sink: &mut impl FnMut(Triple<'_>),
    ) -> Result<u64, NTriplesError> {
        if line.len() > self.max_line_bytes {
            return Err(self.too_long());
        }
        let text = std::str::from_utf8(line).map_err(|_| NTriplesError {
            line: self.line,
            message: "invalid UTF-8".into(),
        })?;
        let mut cursor = Cursor {
            rest: text,
            line: self.line,
        };
        cursor.skip_ws();
        if cursor.rest.is_empty() || cursor.rest.starts_with('#') {
            return Ok(0);
        }
        let subject = cursor.subject()?;
        cursor.require_ws("after the subject")?;
        let predicate = cursor.iri("predicate")?;
        cursor.require_ws("after the predicate")?;
        let object = cursor.object()?;
        cursor.skip_ws();
        if !cursor.eat('.') {
            return Err(cursor.err("expected `.` after the object"));
        }
        cursor.skip_ws();
        if !cursor.rest.is_empty() && !cursor.rest.starts_with('#') {
            return Err(cursor.err("unexpected trailing content after `.`"));
        }
        sink(Triple {
            subject: &subject,
            predicate: &predicate,
            object: &object,
        });
        Ok(1)
    }
}

/// A cursor over one line of input.
struct Cursor<'a> {
    rest: &'a str,
    line: u64,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> NTriplesError {
        NTriplesError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t', '\r']);
    }

    fn require_ws(&mut self, context: &str) -> Result<(), NTriplesError> {
        if !self.rest.starts_with([' ', '\t']) {
            return Err(self.err(format!("expected whitespace {context}")));
        }
        self.skip_ws();
        Ok(())
    }

    fn eat(&mut self, c: char) -> bool {
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                true
            }
            None => false,
        }
    }

    /// An IRI term `<...>`, rendered without the angle brackets. Numeric
    /// escapes (`\uXXXX`, `\UXXXXXXXX`) are decoded; anything else after a
    /// backslash is an error.
    fn iri(&mut self, what: &str) -> Result<Cow<'a, str>, NTriplesError> {
        if !self.eat('<') {
            return Err(self.err(format!("expected `<` to open the {what} IRI")));
        }
        let body = self.rest;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            match c {
                '>' => {
                    let raw = &body[..i];
                    self.rest = &body[i + 1..];
                    if raw.is_empty() {
                        return Err(self.err(format!("empty {what} IRI")));
                    }
                    return if escaped {
                        unescape(raw, true, self.line).map(Cow::Owned)
                    } else {
                        Ok(Cow::Borrowed(raw))
                    };
                }
                '\\' => escaped = true,
                ' ' | '\t' => return Err(self.err(format!("whitespace inside {what} IRI"))),
                _ => {}
            }
        }
        Err(self.err(format!("unterminated {what} IRI")))
    }

    /// A blank node label `_:name`, kept verbatim (prefix included) so blank
    /// nodes and IRIs can never collide as node names.
    fn bnode(&mut self) -> Result<Cow<'a, str>, NTriplesError> {
        let body = self.rest;
        debug_assert!(body.starts_with("_:"));
        let label = &body[2..];
        let end = label
            .char_indices()
            .find(|&(_, c)| !(c.is_alphanumeric() || c == '_' || c == '-' || c == '.'))
            .map(|(i, _)| i)
            .unwrap_or(label.len());
        if end == 0 {
            return Err(self.err("empty blank node label"));
        }
        let term = &body[..2 + end];
        // A trailing `.` belongs to the statement terminator, not the label.
        let term = term.strip_suffix('.').unwrap_or(term);
        self.rest = &body[term.len()..];
        Ok(Cow::Borrowed(term))
    }

    /// A literal term: `"value"` with optional `@lang` or `^^<iri>` suffix,
    /// rendered with its quotes (and suffix) kept so distinct literals map
    /// to distinct node names. Escapes in the value are decoded.
    fn literal(&mut self) -> Result<Cow<'a, str>, NTriplesError> {
        let body = self.rest;
        debug_assert!(body.starts_with('"'));
        let value = &body[1..];
        let mut escaped = false;
        let mut chars = value.char_indices();
        let close = loop {
            let Some((i, c)) = chars.next() else {
                return Err(self.err("unterminated string literal"));
            };
            match c {
                '"' => break i,
                '\\' => {
                    escaped = true;
                    // Skip the escaped character so `\"` does not close.
                    chars.next();
                }
                _ => {}
            }
        };
        let raw_value = &value[..close];
        let after = &value[close + 1..];
        // Optional suffix: @lang or ^^<iri>, copied through verbatim.
        let suffix_len = if after.starts_with('@') {
            after
                .char_indices()
                .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '-' || c == '@'))
                .map(|(i, _)| i)
                .unwrap_or(after.len())
        } else if let Some(datatype) = after.strip_prefix("^^") {
            match datatype.find('>') {
                Some(i) if datatype.starts_with('<') => 2 + i + 1,
                _ => return Err(self.err("malformed datatype suffix, expected `^^<iri>`")),
            }
        } else {
            0
        };
        let suffix = &after[..suffix_len];
        self.rest = &after[suffix_len..];
        let term_len = 1 + close + 1 + suffix_len;
        if !escaped {
            return Ok(Cow::Borrowed(&body[..term_len]));
        }
        let decoded = unescape(raw_value, false, self.line)?;
        let mut term = String::with_capacity(decoded.len() + suffix.len() + 2);
        term.push('"');
        term.push_str(&decoded);
        term.push('"');
        term.push_str(suffix);
        Ok(Cow::Owned(term))
    }

    fn subject(&mut self) -> Result<Cow<'a, str>, NTriplesError> {
        if self.rest.starts_with('<') {
            self.iri("subject")
        } else if self.rest.starts_with("_:") {
            self.bnode()
        } else {
            Err(self.err("expected an IRI or blank node subject"))
        }
    }

    fn object(&mut self) -> Result<Cow<'a, str>, NTriplesError> {
        if self.rest.starts_with('<') {
            self.iri("object")
        } else if self.rest.starts_with("_:") {
            self.bnode()
        } else if self.rest.starts_with('"') {
            self.literal()
        } else {
            Err(self.err("expected an IRI, blank node, or literal object"))
        }
    }
}

/// Decode N-Triples string escapes. `iri` restricts the set to the numeric
/// escapes, the only ones the grammar allows inside IRIs.
fn unescape(raw: &str, iri: bool, line: u64) -> Result<String, NTriplesError> {
    let fail = |message: String| NTriplesError { line, message };
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let esc = chars
            .next()
            .ok_or_else(|| fail("dangling `\\` escape".into()))?;
        let decoded = match esc {
            'u' | 'U' => {
                let want = if esc == 'u' { 4 } else { 8 };
                let mut code = 0u32;
                for _ in 0..want {
                    let d = chars
                        .next()
                        .and_then(|h| h.to_digit(16))
                        .ok_or_else(|| fail(format!("`\\{esc}` needs {want} hex digits")))?;
                    code = code * 16 + d;
                }
                char::from_u32(code)
                    .ok_or_else(|| fail(format!("`\\{esc}` encodes an invalid code point")))?
            }
            _ if iri => return Err(fail(format!("escape `\\{esc}` is not allowed in an IRI"))),
            't' => '\t',
            'b' => '\u{8}',
            'n' => '\n',
            'r' => '\r',
            'f' => '\u{c}',
            '"' => '"',
            '\'' => '\'',
            '\\' => '\\',
            _ => return Err(fail(format!("unknown escape `\\{esc}`"))),
        };
        out.push(decoded);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &[u8]) -> Result<Vec<(String, String, String)>, NTriplesError> {
        let mut parser = NTriplesParser::new();
        let mut out = Vec::new();
        let mut sink = |t: Triple<'_>| {
            out.push((
                t.subject.to_string(),
                t.predicate.to_string(),
                t.object.to_string(),
            ))
        };
        parser.feed(input, &mut sink)?;
        parser.finish(&mut sink)?;
        Ok(out)
    }

    #[test]
    fn parses_the_three_term_kinds() {
        let doc = b"# a comment\n\
            <http://e.org/s> <http://e.org/p> <http://e.org/o> .\n\
            _:b0 <http://e.org/p> \"plain\" .\n\
            \n\
            <http://e.org/s> <http://e.org/p> \"fr\"@fr . # trailing comment\n\
            <http://e.org/s> <http://e.org/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .";
        let triples = collect(doc).unwrap();
        assert_eq!(triples.len(), 4);
        assert_eq!(
            triples[0],
            (
                "http://e.org/s".to_string(),
                "http://e.org/p".to_string(),
                "http://e.org/o".to_string()
            )
        );
        assert_eq!(triples[1].0, "_:b0");
        assert_eq!(triples[1].2, "\"plain\"");
        assert_eq!(triples[2].2, "\"fr\"@fr");
        assert_eq!(
            triples[3].2,
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#int>"
        );
    }

    #[test]
    fn decodes_escapes() {
        let doc = br#"<http://e.org/s> <http://e.org/p> "a\tb\n\"q\" A\U00000042" ."#;
        let triples = collect(doc).unwrap();
        assert_eq!(triples[0].2, "\"a\tb\n\"q\" AB\"");
        // Numeric escapes in IRIs decode; others are rejected.
        let ok = collect(br#"<http://e.org/A> <http://e.org/p> _:b ."#).unwrap();
        assert_eq!(ok[0].0, "http://e.org/A");
        assert!(collect(br#"<http://e.org/\n> <http://e.org/p> _:b ."#).is_err());
    }

    #[test]
    fn chunked_feeding_matches_whole_buffer() {
        let doc: Vec<u8> = (0..50)
            .map(|i| format!("<http://e.org/n{i}> <http://e.org/p> \"v{i}\" .\n"))
            .collect::<String>()
            .into_bytes();
        let whole = collect(&doc).unwrap();
        for chunk_size in [1usize, 3, 7, 17, 1000] {
            let mut parser = NTriplesParser::new();
            let mut out = Vec::new();
            let mut sink = |t: Triple<'_>| {
                out.push((
                    t.subject.to_string(),
                    t.predicate.to_string(),
                    t.object.to_string(),
                ))
            };
            for chunk in doc.chunks(chunk_size) {
                parser.feed(chunk, &mut sink).unwrap();
                assert!(parser.buffered_bytes() <= DEFAULT_MAX_LINE_BYTES);
            }
            parser.finish(&mut sink).unwrap();
            assert_eq!(out, whole, "chunk size {chunk_size}");
            assert_eq!(parser.triples(), whole.len() as u64);
        }
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let mut doc = b"<http://e.org/s> <http://e.org/p> \"".to_vec();
        doc.extend(std::iter::repeat(b'x').take(200));
        doc.extend_from_slice(b"\" .\n");
        let mut parser = NTriplesParser::new().with_max_line_bytes(64);
        let mut hits = 0usize;
        let mut failed = false;
        for chunk in doc.chunks(10) {
            match parser.feed(chunk, |_| hits += 1) {
                Ok(_) => assert!(parser.buffered_bytes() <= 64),
                Err(e) => {
                    assert!(e.message.contains("64-byte"), "{e}");
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "the oversized line must be rejected");
        assert_eq!(hits, 0);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let doc = b"<http://e.org/s> <http://e.org/p> <http://e.org/o> .\nnot a triple\n";
        let err = collect(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        for bad in [
            &b"<http://e.org/s> <http://e.org/p> <http://e.org/o>\n"[..],
            &b"<http://e.org/s> <http://e.org/p> .\n"[..],
            &b"<unterminated <http://e.org/p> _:b .\n"[..],
            &b"<http://e.org/s> <http://e.org/p> \"open .\n"[..],
            &b"<http://e.org/s> <http://e.org/p> _:b . junk\n"[..],
            &b"<http://e.org/s> _:pred _:b .\n"[..],
        ] {
            assert!(collect(bad).is_err(), "{:?}", std::str::from_utf8(bad));
        }
    }

    #[test]
    fn final_line_without_newline_needs_finish() {
        let mut parser = NTriplesParser::new();
        let mut count = 0usize;
        parser
            .feed(b"<http://e.org/s> <http://e.org/p> _:tail .", |_| {
                count += 1
            })
            .unwrap();
        assert_eq!(count, 0, "no newline yet: the line is buffered");
        assert!(parser.buffered_bytes() > 0);
        parser.finish(|_| count += 1).unwrap();
        assert_eq!(count, 1);
        assert_eq!(parser.buffered_bytes(), 0);
        // finish on an exhausted parser is a no-op.
        parser.finish(|_| count += 1).unwrap();
        assert_eq!(count, 1);
    }
}
