//! Random graph generators used by tests and benchmarks.

use rand::prelude::*;

use shapex_rbe::interval::Basic;

use crate::model::{Graph, NodeId};

/// Parameters for random graph generation.
#[derive(Debug, Clone)]
pub struct GraphGen {
    /// Number of nodes.
    pub nodes: usize,
    /// Predicate labels to draw from.
    pub labels: Vec<String>,
    /// Expected number of outgoing edges per node.
    pub out_degree: f64,
    /// Whether at most one outgoing edge per label is allowed per node
    /// (the determinism condition of shape graphs in `DetShEx₀`).
    pub deterministic: bool,
}

impl Default for GraphGen {
    fn default() -> Self {
        GraphGen {
            nodes: 10,
            labels: vec!["a".into(), "b".into(), "c".into()],
            out_degree: 2.0,
            deterministic: false,
        }
    }
}

impl GraphGen {
    /// A generator over `nodes` nodes and `labels` distinct predicate names.
    pub fn new(nodes: usize, labels: usize) -> GraphGen {
        GraphGen {
            nodes,
            labels: (0..labels).map(|i| format!("p{i}")).collect(),
            ..GraphGen::default()
        }
    }

    /// Set the expected out-degree.
    pub fn out_degree(mut self, degree: f64) -> GraphGen {
        self.out_degree = degree;
        self
    }

    /// Require determinism (at most one outgoing edge per label per node).
    pub fn deterministic(mut self, value: bool) -> GraphGen {
        self.deterministic = value;
        self
    }

    /// Generate a random *simple* graph: every edge has interval `1` and no
    /// duplicate `(source, label, target)` triples.
    pub fn simple<R: Rng>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..self.nodes)
            .map(|i| g.add_named_node(format!("v{i}")))
            .collect();
        if ids.is_empty() {
            return g;
        }
        let edges = (self.nodes as f64 * self.out_degree).round() as usize;
        let mut seen = std::collections::BTreeSet::new();
        let mut used_labels = std::collections::BTreeSet::new();
        let mut attempts = 0;
        let mut added = 0;
        while added < edges && attempts < edges * 10 {
            attempts += 1;
            let s = ids[rng.gen_range(0..ids.len())];
            let t = ids[rng.gen_range(0..ids.len())];
            let label = &self.labels[rng.gen_range(0..self.labels.len())];
            if self.deterministic && !used_labels.insert((s, label.clone())) {
                continue;
            }
            if seen.insert((s, label.clone(), t)) {
                g.add_edge(s, label.as_str(), t);
                added += 1;
            }
        }
        g
    }

    /// Generate a random *shape graph*: edges carry random basic intervals.
    pub fn shape<R: Rng>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..self.nodes)
            .map(|i| g.add_named_node(format!("t{i}")))
            .collect();
        if ids.is_empty() {
            return g;
        }
        for &s in &ids {
            let degree = poisson_like(rng, self.out_degree);
            let mut used_labels = std::collections::BTreeSet::new();
            for _ in 0..degree {
                let label = &self.labels[rng.gen_range(0..self.labels.len())];
                if self.deterministic && !used_labels.insert(label.clone()) {
                    continue;
                }
                let t = ids[rng.gen_range(0..ids.len())];
                let basic = Basic::ALL[rng.gen_range(0..Basic::ALL.len())];
                g.add_edge_with(s, label.as_str(), basic.interval(), t);
            }
        }
        g
    }

    /// Generate a rooted random tree (a simple graph) of the given depth and
    /// branching factor; useful for workloads resembling the paper's
    /// counter-example constructions.
    pub fn tree<R: Rng>(&self, rng: &mut R, depth: usize, branching: usize) -> Graph {
        let mut g = Graph::new();
        let root = g.add_named_node("root");
        let mut frontier = vec![root];
        let mut counter = 0usize;
        for _level in 0..depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for _ in 0..branching {
                    counter += 1;
                    let child = g.add_named_node(format!("v{counter}"));
                    let label = &self.labels[rng.gen_range(0..self.labels.len())];
                    g.add_edge(parent, label.as_str(), child);
                    next.push(child);
                }
            }
            frontier = next;
        }
        g
    }
}

/// A crude integer approximation of a Poisson draw with the given mean:
/// uniform in `[0, 2·mean]`, which is all the benchmarks need.
fn poisson_like<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    rng.gen_range(0..=(2.0 * mean).round() as usize)
}

/// Generate a random *specialisation* of a shape graph `h`: a simple graph
/// that embeds into `h` by construction, obtained by unfolding `h` from every
/// node while respecting the edge intervals (`?` edges are kept with
/// probability one half, `*` edges are instantiated 0–2 times, `+` edges 1–2
/// times).
///
/// The result is useful for benchmarks that need positive embedding instances
/// of controllable size.
pub fn sample_from_shape<R: Rng>(rng: &mut R, h: &Graph, max_nodes: usize) -> Graph {
    let mut g = Graph::new();
    if h.node_count() == 0 {
        return g;
    }
    // Start with one instance node per shape node, then unfold breadth-first.
    let mut queue: Vec<(NodeId, NodeId)> = Vec::new(); // (instance, shape node)
    let mut counter = 0usize;
    let roots: Vec<NodeId> = h.nodes().collect();
    let root_shape = roots[rng.gen_range(0..roots.len())];
    let root = g.add_named_node(format!("i0_{}", h.node_name(root_shape)));
    queue.push((root, root_shape));
    while let Some((instance, shape)) = queue.pop() {
        for &e in h.out(shape) {
            let copies = match h.occur(e).basic() {
                Some(Basic::One) => 1,
                Some(Basic::Opt) => rng.gen_range(0..=1),
                Some(Basic::Plus) => rng.gen_range(1..=2),
                Some(Basic::Star) => rng.gen_range(0..=2),
                None => h.occur(e).lo().clamp(1, 2) as usize,
            };
            for _ in 0..copies {
                if g.node_count() >= max_nodes {
                    return g;
                }
                counter += 1;
                let target_shape = h.target(e);
                let child = g.add_named_node(format!("i{counter}_{}", h.node_name(target_shape)));
                g.add_edge(instance, h.label(e).clone(), child);
                queue.push((child, target_shape));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_generator_produces_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for nodes in [1, 5, 20] {
            let g = GraphGen::new(nodes, 3).out_degree(2.0).simple(&mut rng);
            assert!(g.is_simple());
            assert_eq!(g.node_count(), nodes);
        }
    }

    #[test]
    fn shape_generator_produces_shape_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = GraphGen::new(12, 4).out_degree(3.0).shape(&mut rng);
        assert!(g.is_shape_graph());
        assert_eq!(g.node_count(), 12);
    }

    #[test]
    fn deterministic_shape_graphs_have_unique_labels_per_node() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = GraphGen::new(15, 3)
            .out_degree(4.0)
            .deterministic(true)
            .shape(&mut rng);
        for n in g.nodes() {
            let mut labels = std::collections::BTreeSet::new();
            for &e in g.out(n) {
                assert!(labels.insert(g.label(e).clone()), "duplicate label at {n}");
            }
        }
    }

    #[test]
    fn tree_generator_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = GraphGen::new(0, 2).tree(&mut rng, 3, 2);
        // 1 + 2 + 4 + 8 nodes.
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_simple());
        assert!(g.topological_order().is_some());
    }

    #[test]
    fn sampling_respects_max_nodes_and_simplicity() {
        let mut rng = StdRng::seed_from_u64(21);
        let shape = GraphGen::new(6, 3).out_degree(2.0).shape(&mut rng);
        let sample = sample_from_shape(&mut rng, &shape, 64);
        assert!(sample.node_count() <= 64);
        assert!(sample.is_simple());
    }
}
