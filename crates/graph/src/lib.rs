//! The general graph model of *Containment of Shape Expression Schemas for
//! RDF* (Staworko & Wieczorek, PODS 2019), Definition 2.1.
//!
//! A [`Graph`] is a multigraph whose edges carry a predicate [`Label`] and an
//! occurrence [`Interval`](shapex_rbe::Interval). Three subclasses matter:
//!
//! * **simple graphs** (`G₀`) — every edge uses the interval `1` and no two
//!   edges share source, target, and label; these model RDF graphs;
//! * **shape graphs** (`ShEx₀`) — every edge uses a *basic* interval
//!   (`1`, `?`, `+`, `*`); these are the graphical form of `ShEx(RBE0)`
//!   schemas;
//! * **compressed graphs** — every edge uses a singleton interval `[k;k]`,
//!   a succinct encoding of simple graphs used in Section 6 of the paper.
//!
//! The crate also provides a line-oriented text format ([`text`]) and random
//! generators ([`generate`]) used by the examples, tests, and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod model;
pub mod text;

pub use model::{EdgeId, Graph, GraphKind, Label, LabelId, LabelTable, NodeId, UnpackError};
pub use text::{parse_graph, write_graph};
