//! The general graph model of *Containment of Shape Expression Schemas for
//! RDF* (Staworko & Wieczorek, PODS 2019), Definition 2.1.
//!
//! A [`Graph`] is a multigraph whose edges carry a predicate [`Label`] and an
//! occurrence [`Interval`](shapex_rbe::Interval). Three subclasses matter:
//!
//! * **simple graphs** (`G₀`) — every edge uses the interval `1` and no two
//!   edges share source, target, and label; these model RDF graphs;
//! * **shape graphs** (`ShEx₀`) — every edge uses a *basic* interval
//!   (`1`, `?`, `+`, `*`); these are the graphical form of `ShEx(RBE0)`
//!   schemas;
//! * **compressed graphs** — every edge uses a singleton interval `[k;k]`,
//!   a succinct encoding of simple graphs used in Section 6 of the paper.
//!
//! The crate also provides a line-oriented text format ([`text`]) and random
//! generators ([`generate`]) used by the examples, tests, and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod model;
pub mod ntriples;
pub mod text;

pub use model::{
    DeltaReport, EdgeId, Graph, GraphBuilder, GraphDelta, GraphKind, Label, LabelId, LabelTable,
    NodeId, SharedLabelTable, UnpackError,
};
pub use ntriples::{NTriplesError, NTriplesParser, Triple};
pub use text::{parse_graph, write_graph};

/// Parse a complete N-Triples document into a fresh simple [`Graph`]: every
/// triple becomes a `subject -predicate-> object` edge with interval `1`
/// (duplicate triples are kept, like repeated statements in a dump). The
/// streaming path — [`NTriplesParser`] feeding a [`GraphDelta`] — goes
/// through exactly the same pipeline; this is the one-shot convenience.
pub fn graph_from_ntriples(bytes: &[u8]) -> Result<Graph, NTriplesError> {
    let mut parser = NTriplesParser::new();
    let mut delta = GraphDelta::new();
    let mut sink = |t: Triple<'_>| delta.add_triple(t.subject, t.predicate, t.object);
    parser.feed(bytes, &mut sink)?;
    parser.finish(&mut sink)?;
    let mut graph = Graph::new();
    graph.apply_delta(&delta);
    Ok(graph)
}

/// Compile-time assertion that every listed type is [`Send`]` + `[`Sync`].
///
/// Expands to an unused `const` function pointer whose body only type-checks
/// when the bounds hold, so a violation is a compile error at the assertion
/// site — a tiny dependency-free `static_assertions`-style helper for
/// documenting (and enforcing) a crate's thread-safety contract next to the
/// types it covers.
///
/// ```
/// shapex_graph::assert_send_sync!(shapex_graph::Graph, shapex_graph::Label);
/// ```
#[macro_export]
macro_rules! assert_send_sync {
    ($($ty:ty),+ $(,)?) => {
        const _: fn() = || {
            fn assert_send_sync<T: Send + Sync + ?Sized>() {}
            $(assert_send_sync::<$ty>();)+
        };
    };
}

// The thread-safety contract of the graph layer: graphs, labels, and both
// interners are shared by reference across `ContainmentEngine` worker
// threads (matrix rows, validation fan-outs) and across service clients, so
// they must all be `Send + Sync`. `Label` is a content-compared `Arc<str>`;
// `Graph` only mutates through `&mut self` and its lazy adjacency cache is a
// `OnceLock`; `SharedLabelTable` is the concurrent interner engineered for
// exactly this sharing.
assert_send_sync!(
    Graph,
    GraphDelta,
    DeltaReport,
    NTriplesParser,
    Label,
    LabelId,
    LabelTable,
    SharedLabelTable,
    NodeId,
    EdgeId
);
