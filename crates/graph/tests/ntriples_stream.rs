//! Property-based and budget tests for the streaming N-Triples path: a
//! document fed in arbitrary chunks must build exactly the graph the
//! whole-buffer parse builds, and the parser's retained memory must stay
//! bounded by one line regardless of stream length.

use proptest::prelude::*;

use shapex_graph::{graph_from_ntriples, Graph, GraphDelta, NTriplesParser, Triple};

/// Render one random statement. Every branch is valid N-Triples: IRI or
/// blank-node subjects, IRI predicates, and objects that may be IRIs,
/// blank nodes, or literals with escapes and optional suffixes.
fn arb_statement() -> impl Strategy<Value = String> {
    let iri = |range: std::ops::Range<u32>, prefix: &'static str| {
        range.prop_map(move |i| format!("<{prefix}{i}>"))
    };
    let subject = prop_oneof![iri(0..6, "s"), (0u32..4).prop_map(|i| format!("_:b{i}"))];
    let literal = (
        prop_oneof![
            Just("plain".to_string()),
            Just("esc\\\"quote\\\"".to_string()),
            Just("tab\\there".to_string()),
            Just("back\\\\slash".to_string()),
            Just("uni\\u0041".to_string()),
        ],
        prop_oneof![Just(""), Just("@en"), Just("^^<t>")],
    )
        .prop_map(|(value, suffix)| format!("\"{value}\"{suffix}"));
    let object = prop_oneof![
        iri(0..6, "o"),
        (0u32..4).prop_map(|i| format!("_:b{i}")),
        literal
    ];
    (subject, iri(0..3, "p"), object).prop_map(|(s, p, o)| format!("{s} {p} {o} ."))
}

/// A random document: statements interleaved with comments and blank lines.
fn arb_document() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            arb_statement(),
            arb_statement(),
            arb_statement(),
            arb_statement(),
            Just("# a comment".to_string()),
            Just("".to_string()),
        ],
        0..12,
    )
    .prop_map(|lines| {
        let mut doc = lines.join("\n");
        doc.push('\n');
        doc
    })
}

/// The comparable content of a graph: every edge as rendered names.
fn edge_set(g: &Graph) -> Vec<(String, String, String)> {
    let mut edges: Vec<_> = g
        .edges()
        .map(|e| {
            (
                g.node_name(g.source(e)).to_string(),
                g.label(e).to_string(),
                g.node_name(g.target(e)).to_string(),
            )
        })
        .collect();
    edges.sort();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_parse_equals_whole_buffer_parse(doc in arb_document(), chunk_len in 1usize..9) {
        let whole = graph_from_ntriples(doc.as_bytes()).unwrap();
        let longest_line = doc.lines().map(str::len).max().unwrap_or(0);
        let mut parser = NTriplesParser::new();
        let mut graph = Graph::new();
        for chunk in doc.as_bytes().chunks(chunk_len) {
            let mut delta = GraphDelta::new();
            parser
                .feed(chunk, |t: Triple<'_>| {
                    delta.add_triple(t.subject, t.predicate, t.object)
                })
                .unwrap();
            graph.apply_delta(&delta);
            prop_assert!(
                parser.buffered_bytes() <= longest_line,
                "retained {} B for a document whose longest line is {} B",
                parser.buffered_bytes(),
                longest_line
            );
        }
        let mut delta = GraphDelta::new();
        parser
            .finish(|t: Triple<'_>| delta.add_triple(t.subject, t.predicate, t.object))
            .unwrap();
        graph.apply_delta(&delta);
        prop_assert_eq!(graph.node_count(), whole.node_count());
        prop_assert_eq!(edge_set(&graph), edge_set(&whole));
    }

    #[test]
    fn dirty_nodes_cover_every_added_subject(doc in arb_document()) {
        // The contract an incremental validator relies on: after applying a
        // chunk's delta, every subject of an added triple is in the dirty
        // set (its outbound neighbourhood changed).
        let mut parser = NTriplesParser::new();
        let mut graph = Graph::new();
        let mut delta = GraphDelta::new();
        let mut subjects: Vec<String> = Vec::new();
        let mut sink = |t: Triple<'_>| {
            subjects.push(t.subject.to_string());
            delta.add_triple(t.subject, t.predicate, t.object);
        };
        parser.feed(doc.as_bytes(), &mut sink).unwrap();
        parser.finish(&mut sink).unwrap();
        let report = graph.apply_delta(&delta);
        for subject in subjects {
            let id = graph.find_node(&subject).expect("subject was added");
            prop_assert!(
                report.dirty.binary_search(&id).is_ok(),
                "subject {subject} missing from the dirty set"
            );
        }
    }
}

/// The acceptance budget: a 100k-triple stream ingests with the parser
/// retaining at most one line — memory stays O(graph), never O(stream).
#[test]
fn hundred_thousand_triples_stream_within_the_line_budget() {
    const TRIPLES: usize = 100_000;
    const BATCH: usize = 1_000;
    let max_line = 256;
    let mut parser = NTriplesParser::new().with_max_line_bytes(max_line);
    let mut graph = Graph::new();
    let mut batch = String::new();
    let mut fed = 0usize;
    while fed < TRIPLES {
        batch.clear();
        for i in fed..(fed + BATCH).min(TRIPLES) {
            batch.push_str(&format!("<s{}> <p{}> <o{i}> .\n", i % 1_000, i % 5));
        }
        fed += BATCH;
        // Feed in slices that split statements arbitrarily, asserting the
        // byte budget after every single feed.
        let mut delta = GraphDelta::new();
        for chunk in batch.as_bytes().chunks(4_096) {
            parser
                .feed(chunk, |t: Triple<'_>| {
                    delta.add_triple(t.subject, t.predicate, t.object)
                })
                .unwrap();
            assert!(
                parser.buffered_bytes() <= max_line,
                "parser retained {} B (budget {max_line} B)",
                parser.buffered_bytes()
            );
        }
        graph.apply_delta(&delta);
    }
    parser.finish(|_| {}).unwrap();
    assert_eq!(parser.triples(), TRIPLES as u64);
    assert_eq!(graph.edge_count(), TRIPLES);
    assert_eq!(graph.node_count(), 1_000 + TRIPLES, "subjects + objects");
}
