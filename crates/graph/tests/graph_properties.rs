//! Property-based and scenario tests for the graph model: text round-trips,
//! classification, and unpacking of compressed graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shapex_graph::generate::{sample_from_shape, GraphGen};
use shapex_graph::{parse_graph, write_graph, Graph, GraphKind};
use shapex_rbe::Interval;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_simple_graphs_roundtrip_through_text(seed in 0u64..10_000, nodes in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = GraphGen::new(nodes, 3).out_degree(1.5).simple(&mut rng);
        let text = write_graph(&g);
        let back = parse_graph(&text).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert!(back.is_simple());
        // Every edge survives with its label and endpoints.
        for e in g.edges() {
            let src = g.node_name(g.source(e));
            let dst = g.node_name(g.target(e));
            let found = back.edges().any(|f| {
                back.node_name(back.source(f)) == src
                    && back.node_name(back.target(f)) == dst
                    && back.label(f) == g.label(e)
            });
            prop_assert!(found, "missing edge {src} -{}-> {dst}", g.label(e));
        }
    }

    #[test]
    fn shape_graph_samples_embed_structurally(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = GraphGen::new(5, 3).out_degree(2.0).shape(&mut rng);
        prop_assert!(shape.is_shape_graph());
        let sample = sample_from_shape(&mut rng, &shape, 40);
        prop_assert!(sample.is_simple());
        prop_assert!(sample.node_count() <= 40);
    }

    #[test]
    fn unpacking_preserves_edge_totals(multiplicities in proptest::collection::vec(1u64..5, 1..4)) {
        // A chain hub -p[k1]-> n1 -p[k2]-> n2 ... unpacks into a tree whose
        // edge count equals the sum over prefixes of products.
        let mut g = Graph::new();
        let mut prev = g.node("n0");
        for (i, &k) in multiplicities.iter().enumerate() {
            let next = g.node(&format!("n{}", i + 1));
            g.add_edge_with(prev, "p", Interval::exactly(k), next);
            prev = next;
        }
        prop_assert!(g.is_compressed(), "a chain of [k;k] edges is a compressed graph");
        let unpacked = g.unpack(100_000).unwrap();
        prop_assert!(unpacked.is_simple());
        let mut expected_edges = 0u64;
        let mut copies = 1u64;
        for &k in &multiplicities {
            expected_edges += copies * k;
            copies *= k;
        }
        prop_assert_eq!(unpacked.edge_count() as u64, expected_edges);
        // Each non-root node receives exactly one incoming edge.
        prop_assert_eq!(unpacked.edge_count(), unpacked.node_count() - 1);
    }
}

#[test]
fn kind_is_stable_under_isolated_nodes() {
    let mut g = parse_graph("a -p-> b\n").unwrap();
    assert_eq!(g.kind(), GraphKind::Simple);
    g.add_named_node("isolated");
    assert_eq!(g.kind(), GraphKind::Simple);
}

#[test]
fn labels_are_sorted_and_deduplicated() {
    let g = parse_graph("a -z-> b\na -m-> b\nb -z-> a\n").unwrap();
    let labels = g.labels();
    assert_eq!(labels.len(), 2);
    assert_eq!(labels[0].as_str(), "m");
    assert_eq!(labels[1].as_str(), "z");
}

#[test]
fn out_bags_reflect_parallel_labels() {
    let g = parse_graph("hub -p-> a\nhub -p-> b\nhub -q-> a\n").unwrap();
    let hub = g.find_node("hub").unwrap();
    let bag = g.out_bag(hub);
    assert_eq!(bag.total(), 3);
    assert_eq!(bag.distinct(), 3, "distinct (label, target) pairs");
}
