//! Property-based tests for the bounded Presburger solver: every `Sat` answer
//! comes with a model that satisfies the formula, and `Unsat` answers are
//! confirmed by exhaustive enumeration over the (small) bounded domain.

use proptest::prelude::*;

use shapex_presburger::formula::{Constraint, Formula, LinearExpr, Var, VarPool};
use shapex_presburger::solver::{Bounds, SolveResult, Solver, SolverOptions};

const VARS: u32 = 3;
const BOUND: u64 = 4;

fn arb_linear() -> impl Strategy<Value = LinearExpr> {
    (
        proptest::collection::vec((-3i64..=3, 0u32..VARS), 0..3),
        -6i64..=6,
    )
        .prop_map(|(terms, constant)| {
            let mut e = LinearExpr::constant(constant);
            for (c, v) in terms {
                e.add_term(Var(v), c);
            }
            e
        })
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    arb_linear().prop_flat_map(|e| {
        prop_oneof![
            Just(Formula::Atom(Constraint::Ge0(e.clone()))),
            Just(Formula::Atom(Constraint::Eq0(e))),
        ]
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

/// Exhaustively decide satisfiability over the bounded domain.
fn brute_force_sat(formula: &Formula) -> bool {
    let n = (BOUND + 1).pow(VARS);
    for code in 0..n {
        let mut assignment = Vec::with_capacity(VARS as usize);
        let mut rest = code;
        for _ in 0..VARS {
            assignment.push(rest % (BOUND + 1));
            rest /= BOUND + 1;
        }
        if formula.eval(&assignment) {
            return true;
        }
    }
    false
}

fn pool() -> VarPool {
    let mut pool = VarPool::new();
    for i in 0..VARS {
        pool.fresh_bounded(format!("x{i}"), BOUND);
    }
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_agrees_with_brute_force(formula in arb_formula()) {
        let solver = Solver::new(Bounds::uniform(BOUND));
        let expected = brute_force_sat(&formula);
        match solver.solve(&formula, &pool()) {
            SolveResult::Sat(model) => {
                prop_assert!(expected, "solver found a model for an unsatisfiable formula");
                prop_assert!(formula.eval(&model), "returned model does not satisfy the formula");
                prop_assert!(model.iter().all(|&v| v <= BOUND), "model exceeds the bounds");
            }
            SolveResult::Unsat => prop_assert!(!expected, "solver missed a model"),
            SolveResult::Unknown => {
                // The default budget should be ample for these tiny formulas.
                prop_assert!(false, "budget exhausted on a tiny formula");
            }
        }
    }

    #[test]
    fn parallel_search_is_equivalent_to_serial(formula in arb_formula()) {
        // The scoped worker pool must be an implementation detail: for every
        // thread count the verdict matches the serial search, `Sat` models
        // satisfy the formula, and on `Unsat` (where the whole branch tree is
        // explored either way) the merged counters equal the serial counters
        // exactly. The fork-cost gate is zeroed so the small random
        // disjunctions of `arb_formula` actually fork.
        let serial = Solver::new(Bounds::uniform(BOUND));
        let (serial_result, serial_stats) = serial.solve_with_stats(&formula, &pool());
        for threads in [1usize, 2, 8] {
            let parallel = Solver::new(Bounds::uniform(BOUND))
                .with_options(SolverOptions::parallel(threads).with_min_fork_cost(0));
            let (result, stats) = parallel.solve_with_stats(&formula, &pool());
            match (&serial_result, &result) {
                (SolveResult::Sat(_), SolveResult::Sat(model)) => {
                    prop_assert!(
                        formula.eval(model),
                        "worker model does not satisfy the formula (threads={threads})"
                    );
                }
                (SolveResult::Unsat, SolveResult::Unsat) => {
                    prop_assert_eq!(
                        stats, serial_stats,
                        "merged stats must be exact on Unsat (threads={})", threads
                    );
                }
                (expected, got) => prop_assert!(
                    false,
                    "verdict diverged at {threads} threads: serial {expected:?}, parallel {got:?}"
                ),
            }
        }
        // The environment-driven configuration: CI reruns this suite with
        // SOLVER_THREADS=8, which must change nothing observable either.
        let from_env = Solver::new(Bounds::uniform(BOUND))
            .with_options(SolverOptions::from_env().with_min_fork_cost(0));
        match (&serial_result, from_env.solve(&formula, &pool())) {
            (SolveResult::Sat(_), SolveResult::Sat(model)) => {
                prop_assert!(formula.eval(&model), "env-configured model must satisfy the formula");
            }
            (SolveResult::Unsat, SolveResult::Unsat) => {}
            (expected, got) => prop_assert!(
                false,
                "env-configured verdict diverged: serial {expected:?}, got {got:?}"
            ),
        }
    }

    #[test]
    fn negation_flips_models_not_satisfiability_of_tautologies(formula in arb_formula()) {
        // A formula and its negation cannot both be unsatisfiable over the
        // same bounded domain.
        let solver = Solver::new(Bounds::uniform(BOUND));
        let f_sat = solver.solve(&formula, &pool()).is_sat();
        let negated = Formula::not(formula);
        let n_sat = solver.solve(&negated, &pool()).is_sat();
        prop_assert!(f_sat || n_sat);
    }
}
