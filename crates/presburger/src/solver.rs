//! A bounded satisfiability solver for existential Presburger formulas over
//! the naturals.
//!
//! The solver interprets every variable over a finite domain `0..=bound`
//! (per-variable bounds from the [`VarPool`], otherwise a default bound from
//! [`Bounds`]). Within those domains it is sound and complete: `Sat` comes
//! with a verified model, `Unsat` means no model exists with the given
//! bounds. This mirrors how the paper uses Presburger arithmetic: every
//! application (membership, compressed-graph validation, the Section 6
//! containment formulas) comes with an explicit small-model bound
//! (Proposition 6.3 / Weispfenning 1990), so bounded solving loses no
//! generality provided the caller passes a large-enough bound.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crate::formula::{Constraint, Formula, LinearExpr, VarPool};

/// How many search nodes pass between wall-clock reads when a
/// [`CancelCheck`] carries a deadline: the flag is checked every node (one
/// relaxed load), the clock only every this-many nodes, so the polling cost
/// stays far below the per-node search work while the checkpoint interval
/// stays bounded (a few hundred nodes — microseconds).
const CANCEL_POLL_INTERVAL: u32 = 256;

/// External cancellation for long solves: a shared flag plus an optional
/// wall-clock deadline.
///
/// The solver checks the flag on every search node and, when a deadline is
/// present, reads the clock every [`CANCEL_POLL_INTERVAL`] nodes; an expired
/// deadline is latched into the flag so every parallel worker sharing the
/// check aborts promptly. A cancelled solve surfaces as
/// [`SolveResult::Unknown`] — indistinguishable here from budget
/// exhaustion; callers that need to tell the two apart inspect the flag
/// after the call returns.
#[derive(Debug, Clone, Copy)]
pub struct CancelCheck<'a> {
    flag: &'a AtomicBool,
    deadline: Option<Instant>,
}

impl<'a> CancelCheck<'a> {
    /// A check over a shared flag only (manual cancellation).
    pub fn new(flag: &'a AtomicBool) -> CancelCheck<'a> {
        CancelCheck {
            flag,
            deadline: None,
        }
    }

    /// A check over a shared flag plus a wall-clock deadline; on expiry the
    /// flag is latched so other observers abort too.
    pub fn with_deadline(flag: &'a AtomicBool, deadline: Instant) -> CancelCheck<'a> {
        CancelCheck {
            flag,
            deadline: Some(deadline),
        }
    }

    /// Whether the flag is already set (no clock read).
    pub fn flagged(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether cancellation has fired: the flag, or an expired deadline
    /// (which is latched into the flag as a side effect).
    pub fn fired(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Variable bounds used by the solver when the [`VarPool`] does not declare a
/// per-variable bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Inclusive upper bound applied to variables without a declared bound.
    pub default_bound: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { default_bound: 64 }
    }
}

impl Bounds {
    /// Bounds with the given default.
    pub fn uniform(default_bound: u64) -> Bounds {
        Bounds { default_bound }
    }
}

/// Knobs controlling how a [`Solver`] explores disjunctions.
///
/// With `threads > 1`, when the search pops a disjunction of two or more
/// branches (outside an already-forked worker) *and* the estimated cost of
/// exploring a branch from the current state — accumulated atom count times
/// the size of the unresolved assignment space, see
/// [`estimated_branch_cost`] — reaches `min_fork_cost`, the branches are
/// explored by a scoped worker pool: each
/// worker snapshots the accumulated atoms and domains (cheap — the
/// undo-trail design keeps both flat vectors), claims branches from a shared
/// atomic cursor (work-stealing), and a first-solution latch stops the
/// others early. Workers never fork again, so the pool depth is exactly one.
///
/// The cost gate replaces an earlier fixed branch-count threshold: branch
/// count says nothing about how much work hides behind each branch, so wide
/// but trivially-propagated disjunctions (tight domains, few atoms) used to
/// pay thread-spawn and snapshot overhead for microseconds of search, while
/// narrow-but-deep forks were never taken.
///
/// The estimate itself has been recalibrated once: it originally multiplied
/// the atom count by only the *widest* single domain, which priced a
/// top-level disjunction (no atoms accumulated yet, every variable
/// unresolved) at `1 × (width + 1)` — single digits for the disjunct
/// gadgets, far below any sensible `min_fork_cost`, so the exact workload
/// parallel fan-out exists for never forked at its outermost (and only
/// eligible) disjunction. The estimate now multiplies the widths of *all*
/// unresolved domains — the size of the remaining assignment space a branch
/// might explore — so top-level disjunctions over many free variables price
/// as the exponential searches they are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Worker threads for disjunct exploration; `1` keeps the search serial.
    pub threads: usize,
    /// Minimum [`estimated_branch_cost`] before a disjunction is fanned out;
    /// `0` forks every disjunction (useful in tests).
    pub min_fork_cost: u64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            threads: 1,
            min_fork_cost: 256,
        }
    }
}

impl SolverOptions {
    /// Serial exploration (the default).
    pub fn serial() -> SolverOptions {
        SolverOptions::default()
    }

    /// Parallel exploration with the given worker count.
    pub fn parallel(threads: usize) -> SolverOptions {
        SolverOptions {
            threads: threads.max(1),
            ..SolverOptions::default()
        }
    }

    /// Options from the environment: `SOLVER_THREADS` sets the worker count
    /// (unset, empty, `0` or `1` keep the search serial).
    pub fn from_env() -> SolverOptions {
        let threads = std::env::var("SOLVER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        SolverOptions::parallel(threads)
    }

    /// Override the minimum per-branch cost estimate required to fork.
    pub fn with_min_fork_cost(mut self, cost: u64) -> SolverOptions {
        self.min_fork_cost = cost;
        self
    }
}

/// The cheap per-branch cost estimate gating parallel fan-out: the number of
/// accumulated atomic constraints times the size of the unresolved
/// assignment space — the product over every domain of `(width + 1)`, so a
/// resolved variable (width 0) contributes a factor of one and `n` free
/// variables of width `w` contribute `(w + 1)ⁿ`. Propagation re-scans every
/// atom per tightening pass and the search in the worst case enumerates the
/// remaining assignment space, so the (saturating) product tracks how much
/// work a worker could claim per branch — enough to tell "microseconds"
/// from "worth a thread" without inspecting the branches themselves.
///
/// In particular a *top-level* disjunction (no atoms yet, all variables
/// free) prices at the full assignment space: the disjunct-scaling gadgets
/// at `vars = 6` estimate `7⁶ ≈ 10⁵`, comfortably past the default
/// [`SolverOptions::min_fork_cost`] of 256, where the previous
/// widest-single-domain estimate priced them at 7 and never forked.
pub fn estimated_branch_cost(atoms_len: usize, domains: &[(u64, u64)]) -> u64 {
    let space = domains.iter().fold(1u64, |acc, &(lo, hi)| {
        acc.saturating_mul(hi.saturating_sub(lo).saturating_add(1))
    });
    (atoms_len as u64).max(1).saturating_mul(space)
}

/// Counters of one [`Solver::solve_with_stats`] call.
///
/// The branch-and-bound search no longer clones its constraint set and
/// domains per disjunct branch — branching pushes onto an undo trail and
/// truncates on backtrack — so these counters are the cheap observable of
/// how much work (and how much pruning) a query actually did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Search nodes visited (same unit as the node budget).
    pub search_nodes: u64,
    /// Branches cut by interval propagation finding a contradiction.
    pub pruned_branches: u64,
}

impl SolverStats {
    /// Accumulate another counter set (used when merging worker results and
    /// when surfacing per-query stats into session-level totals).
    pub fn merge(&mut self, other: SolverStats) {
        self.search_nodes += other.search_nodes;
        self.pruned_branches += other.pruned_branches;
    }
}

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A model: values for variables `0..n`, verified against the formula.
    Sat(Vec<u64>),
    /// No model exists within the variable bounds.
    Unsat,
    /// The search budget was exhausted before an answer was found.
    Unknown,
}

impl SolveResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Whether the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// Extract the model, if any.
    pub fn model(&self) -> Option<&[u64]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// The bounded solver. Construct once and reuse across queries.
#[derive(Debug, Clone)]
pub struct Solver {
    bounds: Bounds,
    node_budget: u64,
    options: SolverOptions,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            bounds: Bounds::default(),
            node_budget: 2_000_000,
            options: SolverOptions::default(),
        }
    }
}

/// Negation normal form with negation pushed into the atoms.
#[derive(Debug, Clone)]
enum Nnf {
    Atom(Constraint),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    True,
    False,
}

/// Inclusive variable domains.
type Domains = Vec<(u64, u64)>;

/// One undo-trail record: a variable index plus the domain it had before a
/// tightening or branch assignment.
type TrailEntry = (usize, u64, u64);

/// The mutable state of one solve: the accumulated atomic constraints, the
/// current domains, and the undo trail. Branching pushes onto `atoms` and
/// `trail` and truncates both on backtrack — no per-branch clones.
struct SearchState<'a> {
    atoms: Vec<Constraint>,
    domains: Domains,
    trail: Vec<TrailEntry>,
    budget: u64,
    stats: SolverStats,
    /// Set inside a parallel worker: the shared first-solution latch. A set
    /// latch aborts the worker's search; its presence also marks "already
    /// forked", so workers never fan out a nested disjunction themselves.
    stop: Option<&'a AtomicBool>,
    /// External cancellation (caller-supplied flag and optional deadline) —
    /// deliberately a separate field from `stop`: the fork gate keys on
    /// `stop.is_none()` to mean "not yet inside a worker", so reusing the
    /// latch for external cancellation would disable parallel fan-out for
    /// every cancellable solve.
    cancel: Option<CancelCheck<'a>>,
    /// Node counter amortising the deadline clock reads of `cancel`.
    polls: u32,
}

impl SearchState<'_> {
    /// Whether this search must abort: another worker latched a model, the
    /// caller cancelled, or (checked every [`CANCEL_POLL_INTERVAL`] nodes)
    /// the caller's deadline expired.
    fn aborted(&mut self) -> bool {
        if self.stop.is_some_and(|stop| stop.load(Ordering::Relaxed)) {
            return true;
        }
        let Some(cancel) = self.cancel else {
            return false;
        };
        if cancel.flagged() {
            return true;
        }
        self.polls = self.polls.wrapping_add(1);
        self.polls % CANCEL_POLL_INTERVAL == 0 && cancel.fired()
    }
}

/// What one disjunct worker brings back to the fork point.
struct WorkerOutcome {
    model: Option<Vec<u64>>,
    exhausted: bool,
    spent: u64,
    stats: SolverStats,
}

/// Restore every domain recorded after `base`, in reverse push order.
fn undo_to(domains: &mut Domains, trail: &mut Vec<TrailEntry>, base: usize) {
    while trail.len() > base {
        let (idx, lo, hi) = trail.pop().expect("trail underflow");
        domains[idx] = (lo, hi);
    }
}

impl Solver {
    /// A solver with the given default bounds.
    pub fn new(bounds: Bounds) -> Solver {
        Solver {
            bounds,
            node_budget: 2_000_000,
            options: SolverOptions::default(),
        }
    }

    /// Override the search budget (number of search nodes).
    pub fn with_node_budget(mut self, budget: u64) -> Solver {
        self.node_budget = budget;
        self
    }

    /// Override the disjunct-exploration options.
    pub fn with_options(mut self, options: SolverOptions) -> Solver {
        self.options = options;
        self
    }

    /// The disjunct-exploration options in effect.
    pub fn options(&self) -> SolverOptions {
        self.options
    }

    /// Decide satisfiability of `formula` with variables bounded by the pool's
    /// declared bounds (falling back to the solver default).
    pub fn solve(&self, formula: &Formula, pool: &VarPool) -> SolveResult {
        self.solve_with_stats(formula, pool).0
    }

    /// [`Solver::solve`], also reporting the search counters.
    pub fn solve_with_stats(
        &self,
        formula: &Formula,
        pool: &VarPool,
    ) -> (SolveResult, SolverStats) {
        self.solve_with_stats_cancellable(formula, pool, None)
    }

    /// [`Solver::solve_with_stats`] under external cancellation: the search
    /// aborts (returning [`SolveResult::Unknown`]) within a bounded number
    /// of nodes once `cancel` fires. Verdicts reached before cancellation
    /// are identical to the uncancelled solve.
    pub fn solve_with_stats_cancellable(
        &self,
        formula: &Formula,
        pool: &VarPool,
        cancel: Option<CancelCheck<'_>>,
    ) -> (SolveResult, SolverStats) {
        let nvars = formula
            .variables()
            .iter()
            .map(|v| v.0 as usize + 1)
            .max()
            .unwrap_or(0)
            .max(pool.len());
        let mut domains: Domains = Vec::with_capacity(nvars);
        for i in 0..nvars {
            let hi = pool
                .declared_bounds()
                .get(i)
                .copied()
                .flatten()
                .unwrap_or(self.bounds.default_bound);
            domains.push((0, hi));
        }
        let nnf = to_nnf(formula, false);
        let mut state = SearchState {
            atoms: Vec::new(),
            domains,
            trail: Vec::new(),
            budget: self.node_budget,
            stats: SolverStats::default(),
            stop: None,
            cancel,
            polls: 0,
        };
        let result = match self.search(&[&nnf], &mut state) {
            Some(Some(model)) => {
                debug_assert!(formula.eval(&model), "solver produced an invalid model");
                SolveResult::Sat(model)
            }
            Some(None) => SolveResult::Unsat,
            None => SolveResult::Unknown,
        };
        (result, state.stats)
    }

    /// Convenience wrapper returning `true` only on `Sat`.
    pub fn is_sat(&self, formula: &Formula, pool: &VarPool) -> bool {
        self.solve(formula, pool).is_sat()
    }

    /// The search returns `None` when the budget is exhausted, otherwise
    /// `Some(model_or_none)`. On return, `state`'s atoms and domains are
    /// exactly as the caller left them (the frame truncates its own pushes).
    fn search(&self, pending: &[&Nnf], state: &mut SearchState<'_>) -> Option<Option<Vec<u64>>> {
        if state.budget == 0 || state.aborted() {
            return None;
        }
        state.budget -= 1;
        state.stats.search_nodes += 1;
        let atoms_base = state.atoms.len();
        let trail_base = state.trail.len();
        let result = self.search_frame(pending, state);
        state.atoms.truncate(atoms_base);
        undo_to(&mut state.domains, &mut state.trail, trail_base);
        result
    }

    fn search_frame(
        &self,
        pending: &[&Nnf],
        state: &mut SearchState<'_>,
    ) -> Option<Option<Vec<u64>>> {
        // Split pending conjuncts into atoms and disjunctions.
        let mut disjunctions: Vec<&Nnf> = Vec::new();
        let mut stack: Vec<&Nnf> = pending.to_vec();
        while let Some(f) = stack.pop() {
            match f {
                Nnf::True => {}
                Nnf::False => return Some(None),
                Nnf::Atom(c) => state.atoms.push(c.clone()),
                Nnf::And(parts) => stack.extend(parts.iter()),
                Nnf::Or(_) => disjunctions.push(f),
            }
        }

        // Propagate bounds from the atomic constraints gathered so far.
        if !propagate_in_place(&state.atoms, &mut state.domains, &mut state.trail) {
            state.stats.pruned_branches += 1;
            return Some(None);
        }

        if let Some(or) = disjunctions.pop() {
            let Nnf::Or(choices) = or else {
                unreachable!("only Or is deferred")
            };
            if self.options.threads > 1
                && state.stop.is_none()
                && choices.len() >= 2
                && estimated_branch_cost(state.atoms.len(), &state.domains)
                    >= self.options.min_fork_cost
            {
                return self.search_disjuncts_parallel(choices, &disjunctions, state);
            }
            for choice in choices {
                let mut next: Vec<&Nnf> = Vec::with_capacity(disjunctions.len() + 1);
                next.push(choice);
                next.extend(disjunctions.iter().copied());
                match self.search(&next, state) {
                    Some(Some(model)) => return Some(Some(model)),
                    Some(None) => continue,
                    None => return None,
                }
            }
            return Some(None);
        }

        // Only atomic constraints remain: branch and bound over the domains.
        self.enumerate(state)
    }

    /// Explore the branches of one disjunction on a scoped worker pool.
    ///
    /// Each worker snapshots the parent's accumulated atoms and domains (the
    /// trail starts empty — worker states are discarded, never unwound into
    /// the parent), claims branch indices from a shared cursor, and runs the
    /// ordinary serial search on each claimed branch with the first-solution
    /// latch installed. Merging keeps the counters exact: every node a worker
    /// visits lands in the parent's [`SolverStats`], and the parent budget is
    /// charged for the total work. On `Unsat` every branch subtree is
    /// explored in full exactly as the serial search would, so the merged
    /// counters equal the serial run's; on early exit the counters reflect
    /// the work actually performed. If the collective spend overruns the
    /// budget the fork reports `Unknown`, like a serial run that ran dry.
    fn search_disjuncts_parallel(
        &self,
        choices: &[Nnf],
        deferred: &[&Nnf],
        state: &mut SearchState<'_>,
    ) -> Option<Option<Vec<u64>>> {
        let latch = AtomicBool::new(false);
        let cursor = AtomicUsize::new(0);
        let workers = self.options.threads.min(choices.len());
        let budget_at_fork = state.budget;
        let cancel = state.cancel;
        let base_atoms = &state.atoms;
        let base_domains = &state.domains;
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = SearchState {
                            atoms: base_atoms.clone(),
                            domains: base_domains.clone(),
                            trail: Vec::new(),
                            budget: budget_at_fork,
                            stats: SolverStats::default(),
                            stop: Some(&latch),
                            cancel,
                            polls: 0,
                        };
                        let mut model = None;
                        let mut exhausted = false;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= choices.len() || latch.load(Ordering::Relaxed) {
                                break;
                            }
                            let mut pending: Vec<&Nnf> = Vec::with_capacity(deferred.len() + 1);
                            pending.push(&choices[i]);
                            pending.extend(deferred.iter().copied());
                            match self.search(&pending, &mut local) {
                                Some(Some(found)) => {
                                    latch.store(true, Ordering::Relaxed);
                                    model = Some(found);
                                    break;
                                }
                                Some(None) => continue,
                                None => {
                                    // Budget ran dry — unless the abort came
                                    // from the latch, in which case another
                                    // worker's model supersedes this branch.
                                    exhausted = !latch.load(Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        WorkerOutcome {
                            model,
                            exhausted,
                            spent: budget_at_fork - local.budget,
                            stats: local.stats,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("solver worker panicked"))
                .collect()
        });

        let mut model = None;
        let mut exhausted = false;
        let mut total_spent: u64 = 0;
        for outcome in outcomes {
            state.stats.merge(outcome.stats);
            total_spent += outcome.spent;
            exhausted |= outcome.exhausted;
            if model.is_none() {
                model = outcome.model;
            }
        }
        state.budget = budget_at_fork.saturating_sub(total_spent);
        if let Some(found) = model {
            return Some(Some(found));
        }
        if exhausted || total_spent > budget_at_fork {
            return None;
        }
        Some(None)
    }

    fn enumerate(&self, state: &mut SearchState<'_>) -> Option<Option<Vec<u64>>> {
        if state.budget == 0 || state.aborted() {
            return None;
        }
        state.budget -= 1;
        state.stats.search_nodes += 1;
        let trail_base = state.trail.len();
        let result = self.enumerate_frame(state);
        undo_to(&mut state.domains, &mut state.trail, trail_base);
        result
    }

    fn enumerate_frame(&self, state: &mut SearchState<'_>) -> Option<Option<Vec<u64>>> {
        if !propagate_in_place(&state.atoms, &mut state.domains, &mut state.trail) {
            state.stats.pruned_branches += 1;
            return Some(None);
        }

        // Pick an unfixed variable that actually occurs in some constraint.
        let mut pick: Option<(usize, u64)> = None;
        for c in &state.atoms {
            let expr = constraint_expr(c);
            for (v, _) in expr.terms() {
                let idx = v.0 as usize;
                let (lo, hi) = state.domains[idx];
                if lo < hi {
                    let width = hi - lo;
                    if pick.map_or(true, |(_, w)| width < w) {
                        pick = Some((idx, width));
                    }
                }
            }
        }

        match pick {
            None => {
                // All constrained variables are fixed; read off a model.
                let model: Vec<u64> = state.domains.iter().map(|(lo, _)| *lo).collect();
                if state.atoms.iter().all(|c| c.holds(&model)) {
                    Some(Some(model))
                } else {
                    Some(None)
                }
            }
            Some((idx, _)) => {
                let (lo, hi) = state.domains[idx];
                let mid = lo + (hi - lo) / 2;
                for (new_lo, new_hi) in [(lo, mid), (mid + 1, hi)] {
                    // Branch by trail-recorded assignment instead of cloning
                    // the domain vector.
                    state
                        .trail
                        .push((idx, state.domains[idx].0, state.domains[idx].1));
                    state.domains[idx] = (new_lo, new_hi);
                    let result = self.enumerate(state);
                    let (i, lo0, hi0) = state.trail.pop().expect("own branch entry");
                    state.domains[i] = (lo0, hi0);
                    match result {
                        Some(Some(model)) => return Some(Some(model)),
                        Some(None) => continue,
                        None => return None,
                    }
                }
                Some(None)
            }
        }
    }
}

fn constraint_expr(c: &Constraint) -> &LinearExpr {
    match c {
        Constraint::Ge0(e) | Constraint::Eq0(e) => e,
    }
}

/// Convert to negation normal form, pushing negation into the atoms:
/// `¬(e ≥ 0) ⇔ -e - 1 ≥ 0` and `¬(e = 0) ⇔ (e - 1 ≥ 0) ∨ (-e - 1 ≥ 0)`.
fn to_nnf(f: &Formula, negated: bool) -> Nnf {
    match (f, negated) {
        (Formula::True, false) | (Formula::False, true) => Nnf::True,
        (Formula::True, true) | (Formula::False, false) => Nnf::False,
        (Formula::Not(inner), _) => to_nnf(inner, !negated),
        (Formula::And(parts), false) | (Formula::Or(parts), true) => {
            Nnf::And(parts.iter().map(|p| to_nnf(p, negated)).collect())
        }
        (Formula::And(parts), true) | (Formula::Or(parts), false) => {
            Nnf::Or(parts.iter().map(|p| to_nnf(p, negated)).collect())
        }
        (Formula::Atom(c), false) => Nnf::Atom(c.clone()),
        (Formula::Atom(Constraint::Ge0(e)), true) => {
            // ¬(e ≥ 0) over the integers: e ≤ -1.
            Nnf::Atom(Constraint::Ge0(
                e.clone().neg().add(&LinearExpr::constant(-1)),
            ))
        }
        (Formula::Atom(Constraint::Eq0(e)), true) => Nnf::Or(vec![
            Nnf::Atom(Constraint::Ge0(e.clone().add(&LinearExpr::constant(-1)))),
            Nnf::Atom(Constraint::Ge0(
                e.clone().neg().add(&LinearExpr::constant(-1)),
            )),
        ]),
    }
}

/// Interval (bounds-consistency) propagation for a conjunction of
/// constraints, tightening `domains` in place. Every change is recorded on
/// `trail` so the caller can backtrack by [`undo_to`]; no expression is ever
/// cloned (an equality is processed as `e ≥ 0` and, sign-flipped on the fly,
/// `-e ≥ 0`). Returns `false` if some constraint cannot be met — the caller
/// must still undo the partial tightenings.
fn propagate_in_place(
    atoms: &[Constraint],
    domains: &mut Domains,
    trail: &mut Vec<TrailEntry>,
) -> bool {
    let passes = 4 * (domains.len() + 1);
    for _ in 0..passes {
        let mut changed = false;
        for c in atoms {
            let (tightened, contradiction) = match c {
                Constraint::Ge0(e) => tighten(e, false, domains, trail),
                Constraint::Eq0(e) => {
                    let (t1, dead) = tighten(e, false, domains, trail);
                    if dead {
                        (t1, true)
                    } else {
                        let (t2, dead) = tighten(e, true, domains, trail);
                        (t1 || t2, dead)
                    }
                }
            };
            if contradiction {
                return false;
            }
            changed |= tightened;
        }
        if !changed {
            break;
        }
    }
    true
}

/// One bounds-consistency pass of `e ≥ 0` (or `-e ≥ 0` when `negate`):
/// the exact arithmetic of the historical `propagate`, with the sign applied
/// on the fly instead of materialising a negated expression. Returns
/// `(changed, contradiction)`.
fn tighten(
    expr: &LinearExpr,
    negate: bool,
    domains: &mut Domains,
    trail: &mut Vec<TrailEntry>,
) -> (bool, bool) {
    let sign: i128 = if negate { -1 } else { 1 };
    // Maximum achievable value of the expression over the domains.
    let mut max_total: i128 = sign * expr.constant_part() as i128;
    for (v, c) in expr.terms() {
        let c = sign * c as i128;
        let (lo, hi) = domains[v.0 as usize];
        max_total += if c > 0 {
            c * hi as i128
        } else {
            c * lo as i128
        };
    }
    if max_total < 0 {
        return (false, true);
    }
    // Tighten each variable given the others at their extremes.
    let mut changed = false;
    for (v, c) in expr.terms() {
        let c = sign * c as i128;
        let idx = v.0 as usize;
        let (lo, hi) = domains[idx];
        let contribution = if c > 0 {
            c * hi as i128
        } else {
            c * lo as i128
        };
        let rest = max_total - contribution;
        // Need c·x ≥ -rest.
        if c > 0 {
            let needed = -rest; // c·x ≥ needed
            if needed > 0 {
                let new_lo = (needed + c - 1) / c;
                if new_lo > hi as i128 {
                    return (changed, true);
                }
                if new_lo > lo as i128 {
                    trail.push((idx, lo, hi));
                    domains[idx].0 = new_lo as u64;
                    changed = true;
                }
            }
        } else {
            // c < 0: x ≤ rest / (-c).
            let cap = rest / (-c);
            if cap < lo as i128 {
                return (changed, true);
            }
            if cap < hi as i128 {
                trail.push((idx, lo, hi));
                domains[idx].1 = cap as u64;
                changed = true;
            }
        }
    }
    (changed, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Formula, LinearExpr, VarPool};

    fn solver() -> Solver {
        Solver::new(Bounds::uniform(32))
    }

    #[test]
    fn simple_equation() {
        // x + y = 5 ∧ x ≥ 3 ∧ y ≥ 1
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let f = Formula::and(vec![
            Formula::eq(
                LinearExpr::var(x).add(&LinearExpr::var(y)),
                LinearExpr::constant(5),
            ),
            Formula::ge(x, 3),
            Formula::ge(y, 1),
        ]);
        let result = solver().solve(&f, &pool);
        let model = result.model().expect("should be satisfiable");
        assert_eq!(model[x.0 as usize] + model[y.0 as usize], 5);
        assert!(model[x.0 as usize] >= 3);
    }

    #[test]
    fn unsatisfiable_system() {
        // x ≥ 3 ∧ x ≤ 1
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let f = Formula::and(vec![Formula::ge(x, 3), Formula::le(x, 1)]);
        assert_eq!(solver().solve(&f, &pool), SolveResult::Unsat);
    }

    #[test]
    fn disjunction_branching() {
        // (x = 2 ∨ x = 7) ∧ x ≥ 5
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let f = Formula::and(vec![
            Formula::or(vec![Formula::eq(x, 2), Formula::eq(x, 7)]),
            Formula::ge(x, 5),
        ]);
        let model = solver().solve(&f, &pool);
        assert_eq!(model.model().unwrap()[0], 7);
    }

    #[test]
    fn negation_of_equality() {
        // ¬(x = 0) ∧ x ≤ 1  ⇒ x = 1
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let f = Formula::and(vec![Formula::not(Formula::eq(x, 0)), Formula::le(x, 1)]);
        let model = solver().solve(&f, &pool);
        assert_eq!(model.model().unwrap()[0], 1);
    }

    #[test]
    fn respects_declared_bounds() {
        // x ≥ 10 with a declared bound of 5 is unsatisfiable.
        let mut pool = VarPool::new();
        let x = pool.fresh_bounded("x", 5);
        let f = Formula::ge(x, 10);
        assert_eq!(solver().solve(&f, &pool), SolveResult::Unsat);
        // Raising the bound makes it satisfiable.
        pool.set_bound(x, 12);
        assert!(solver().solve(&f, &pool).is_sat());
    }

    #[test]
    fn three_variable_combination() {
        // 2x + 3y - z = 7 ∧ z ≥ 2 ∧ y ≥ 1
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let z = pool.fresh_named("z");
        let lhs = LinearExpr::term(x, 2)
            .add(&LinearExpr::term(y, 3))
            .add(&LinearExpr::term(z, -1));
        let f = Formula::and(vec![
            Formula::eq(lhs, LinearExpr::constant(7)),
            Formula::ge(z, 2),
            Formula::ge(y, 1),
        ]);
        let result = solver().solve(&f, &pool);
        let m = result.model().expect("satisfiable");
        assert_eq!(
            2 * m[x.0 as usize] as i64 + 3 * m[y.0 as usize] as i64 - m[z.0 as usize] as i64,
            7
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..12).map(|i| pool.fresh_named(format!("x{i}"))).collect();
        // A loose system with a large search space and a tiny budget.
        let sum = vars.iter().fold(LinearExpr::constant(0), |acc, v| {
            acc.add(&LinearExpr::var(*v))
        });
        let f = Formula::eq(sum, LinearExpr::constant(200));
        let tight = Solver::new(Bounds::uniform(1_000)).with_node_budget(3);
        assert_eq!(tight.solve(&f, &pool), SolveResult::Unknown);
        // With the default budget the system is easily satisfiable.
        assert!(Solver::new(Bounds::uniform(1_000))
            .solve(&f, &pool)
            .is_sat());
    }

    #[test]
    fn stats_count_pruned_branches() {
        // Every disjunct contradicts x ≥ 5 by propagation alone, so each
        // branch is pruned and the query is Unsat.
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let f = Formula::and(vec![
            Formula::or(vec![
                Formula::eq(x, 0),
                Formula::eq(x, 1),
                Formula::eq(x, 2),
            ]),
            Formula::ge(x, 5),
        ]);
        let (result, stats) = solver().solve_with_stats(&f, &pool);
        assert_eq!(result, SolveResult::Unsat);
        assert!(
            stats.pruned_branches >= 3,
            "each contradictory disjunct must count as pruned, got {stats:?}"
        );
        assert!(stats.search_nodes >= stats.pruned_branches);
        // A satisfiable query still reports its node count.
        let (sat, sat_stats) = solver().solve_with_stats(&Formula::ge(x, 3), &pool);
        assert!(sat.is_sat());
        assert!(sat_stats.search_nodes >= 1);
    }

    #[test]
    fn backtracking_restores_domains_across_disjuncts() {
        // The first disjunct forces x high and then fails on y; the second
        // must see x's original domain again (a stale tightening from the
        // failed branch would make it unsatisfiable too).
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let f = Formula::and(vec![
            Formula::or(vec![
                // x ≥ 20 ∧ y ≥ 40 (dead: y is capped below)
                Formula::and(vec![Formula::ge(x, 20), Formula::ge(y, 40)]),
                // x ≤ 3 (alive only if x's domain was restored)
                Formula::le(x, 3),
            ]),
            Formula::le(y, 10),
        ]);
        let result = solver().solve(&f, &pool);
        let model = result.model().expect("second disjunct is satisfiable");
        assert!(model[x.0 as usize] <= 3);
    }

    fn wide_unsat_disjunction(pool: &mut VarPool) -> Formula {
        // Every disjunct pins x + y to a value below 40, contradicting the
        // conjoined floor, so all branches must be explored and refuted.
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let sum = LinearExpr::var(x).add(&LinearExpr::var(y));
        let branches: Vec<Formula> = (0..12)
            .map(|k| Formula::eq(sum.clone(), LinearExpr::constant(k)))
            .collect();
        Formula::and(vec![
            Formula::or(branches),
            Formula::ge(sum, LinearExpr::constant(40)),
        ])
    }

    #[test]
    fn parallel_search_matches_serial_verdicts_and_exact_stats_on_unsat() {
        let mut pool = VarPool::new();
        let f = wide_unsat_disjunction(&mut pool);
        let serial = solver();
        let parallel = solver().with_options(SolverOptions::parallel(4).with_min_fork_cost(0));
        let (sr, ss) = serial.solve_with_stats(&f, &pool);
        let (pr, ps) = parallel.solve_with_stats(&f, &pool);
        assert_eq!(sr, SolveResult::Unsat);
        assert_eq!(pr, sr);
        // On Unsat the whole branch tree is explored either way, so the
        // merged worker counters must equal the serial counters exactly.
        assert_eq!(ps, ss, "merged stats must be exact on Unsat");
    }

    #[test]
    fn parallel_search_finds_models_behind_wide_disjunctions() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let branches: Vec<Formula> = (0..16).map(|k| Formula::eq(x, k)).collect();
        let f = Formula::and(vec![Formula::or(branches), Formula::ge(x, 13)]);
        for threads in [2usize, 8] {
            let parallel =
                solver().with_options(SolverOptions::parallel(threads).with_min_fork_cost(0));
            let result = parallel.solve(&f, &pool);
            let model = result.model().expect("satisfiable");
            assert!(model[0] >= 13, "latched model must satisfy the formula");
        }
    }

    #[test]
    fn solver_options_from_env_shape() {
        let opts = SolverOptions::parallel(0);
        assert_eq!(opts.threads, 1, "zero threads degrades to serial");
        let opts = SolverOptions::parallel(8).with_min_fork_cost(3);
        assert_eq!((opts.threads, opts.min_fork_cost), (8, 3));
    }

    #[test]
    fn fork_cost_estimate_scales_with_atoms_and_assignment_space() {
        assert_eq!(estimated_branch_cost(0, &[]), 1, "empty state costs ~1");
        assert_eq!(estimated_branch_cost(4, &[(0, 0), (0, 9)]), 4 * 10);
        // Resolved variables contribute a factor of one.
        assert_eq!(estimated_branch_cost(1, &[(5, 5), (0, 99)]), 100);
        // Free variables multiply: the unresolved assignment space, not just
        // the single widest domain, prices a top-level disjunction.
        assert_eq!(estimated_branch_cost(0, &[(0, 6); 6]), 7u64.pow(6));
        assert_eq!(estimated_branch_cost(2, &[(0, 9), (0, 9)]), 2 * 100);
        // The product saturates instead of wrapping.
        assert_eq!(
            estimated_branch_cost(1, &[(0, u64::MAX - 1), (0, u64::MAX - 1)]),
            u64::MAX
        );
    }

    #[test]
    fn cheap_disjunctions_stay_serial_but_verdicts_agree() {
        // Tiny domains: the branch cost sits below the default gate, so a
        // parallel-configured solver takes the serial path — and must agree
        // with a fork-everything configuration on both verdicts and stats.
        let mut pool = VarPool::new();
        let x = pool.fresh_bounded("x", 3);
        let branches: Vec<Formula> = (0..8).map(|k| Formula::eq(x, k)).collect();
        let f = Formula::and(vec![Formula::or(branches), Formula::ge(x, 2)]);
        let gated = solver().with_options(SolverOptions::parallel(4));
        let forked = solver().with_options(SolverOptions::parallel(4).with_min_fork_cost(0));
        let serial = solver();
        let (gr, gs) = gated.solve_with_stats(&f, &pool);
        let (fr, _) = forked.solve_with_stats(&f, &pool);
        let (sr, ss) = serial.solve_with_stats(&f, &pool);
        assert!(matches!(gr, SolveResult::Sat(_)));
        assert_eq!(gr.model().is_some(), fr.model().is_some());
        assert_eq!(gr.model().is_some(), sr.model().is_some());
        // Below the gate the search is bit-for-bit the serial one.
        assert_eq!(gs, ss);
    }

    #[test]
    fn pre_fired_cancel_flag_aborts_immediately_as_unknown() {
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..12).map(|i| pool.fresh_named(format!("x{i}"))).collect();
        let sum = vars.iter().fold(LinearExpr::constant(0), |acc, v| {
            acc.add(&LinearExpr::var(*v))
        });
        let f = Formula::eq(sum, LinearExpr::constant(200));
        let flag = AtomicBool::new(true);
        let wide = Solver::new(Bounds::uniform(1_000));
        let (result, stats) =
            wide.solve_with_stats_cancellable(&f, &pool, Some(CancelCheck::new(&flag)));
        assert_eq!(result, SolveResult::Unknown);
        assert_eq!(stats.search_nodes, 0, "no node may be expanded: {stats:?}");
    }

    #[test]
    fn unfired_cancel_flag_changes_nothing() {
        let mut pool = VarPool::new();
        let f = wide_unsat_disjunction(&mut pool);
        let flag = AtomicBool::new(false);
        let plain = solver().solve_with_stats(&f, &pool);
        let cancellable =
            solver().solve_with_stats_cancellable(&f, &pool, Some(CancelCheck::new(&flag)));
        assert_eq!(plain, cancellable, "a dormant flag must be invisible");
        assert!(!flag.load(Ordering::Relaxed));
    }

    #[test]
    fn expired_deadline_latches_the_flag_and_aborts() {
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..12).map(|i| pool.fresh_named(format!("x{i}"))).collect();
        let sum = vars.iter().fold(LinearExpr::constant(0), |acc, v| {
            acc.add(&LinearExpr::var(*v))
        });
        // Unsatisfiable and huge: without cancellation this burns the whole
        // node budget before answering.
        let f = Formula::and(vec![
            Formula::eq(sum.clone(), LinearExpr::constant(200)),
            Formula::eq(sum, LinearExpr::constant(201)),
        ]);
        let flag = AtomicBool::new(false);
        let check = CancelCheck::with_deadline(&flag, Instant::now());
        let wide = Solver::new(Bounds::uniform(100_000));
        let started = Instant::now();
        let (result, _) = wide.solve_with_stats_cancellable(&f, &pool, Some(check));
        // Propagation may refute the conjunction outright; either way the
        // call returns promptly and an expired deadline is latched.
        assert!(matches!(result, SolveResult::Unknown | SolveResult::Unsat));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "cancellation must bound the solve"
        );
    }

    #[test]
    fn parallel_workers_observe_the_cancel_flag() {
        let mut pool = VarPool::new();
        let f = wide_unsat_disjunction(&mut pool);
        let flag = AtomicBool::new(true);
        let parallel = solver().with_options(SolverOptions::parallel(4).with_min_fork_cost(0));
        let (result, _) =
            parallel.solve_with_stats_cancellable(&f, &pool, Some(CancelCheck::new(&flag)));
        assert_eq!(
            result,
            SolveResult::Unknown,
            "a fired flag must abort even the forked search"
        );
    }

    #[test]
    fn models_are_verified_against_the_formula() {
        let mut pool = VarPool::new();
        let x = pool.fresh_named("x");
        let y = pool.fresh_named("y");
        let f = Formula::and(vec![
            Formula::or(vec![Formula::eq(x, 3), Formula::ge(y, 9)]),
            Formula::le(
                LinearExpr::var(x).add(&LinearExpr::var(y)),
                LinearExpr::constant(10),
            ),
            Formula::not(Formula::eq(y, 0)),
        ]);
        match solver().solve(&f, &pool) {
            SolveResult::Sat(model) => assert!(f.eval(&model)),
            other => panic!("expected Sat, got {other:?}"),
        }
    }
}
