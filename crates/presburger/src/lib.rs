//! Existential Presburger arithmetic over the naturals, plus the translation
//! of regular bag expressions into Presburger formulas used in Section 6 of
//! *Containment of Shape Expression Schemas for RDF* (Staworko & Wieczorek,
//! PODS 2019).
//!
//! The crate provides:
//!
//! * [`formula`] — linear terms, atomic constraints, and quantifier-free
//!   formulas over natural-number variables allocated from a [`VarPool`].
//! * [`solver`] — a bounded satisfiability solver for existential formulas:
//!   negation normal form, branching over disjunctions, interval propagation
//!   over variable domains and final branch-and-bound enumeration. All callers
//!   in this workspace have natural variable bounds (bag totals, multiplicity
//!   caps derived from the paper's small-model bounds), which are supplied via
//!   [`solver::Bounds`].
//! * [`translate`] — the construction of `ψ_E(x̄, n)` from the paper: a formula
//!   that holds exactly when the bag described by `x̄` belongs to `L(E)ⁿ`, and
//!   the derived NP membership test [`translate::rbe_member`] for arbitrary
//!   regular bag expressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod solver;
pub mod translate;

pub use formula::{Constraint, Formula, LinearExpr, Var, VarPool};
pub use solver::{Bounds, CancelCheck, SolveResult, Solver, SolverOptions, SolverStats};
pub use translate::{psi, rbe_member};
